//! Workspace façade for integration tests and examples.
//!
//! This crate only re-exports [`smoqe`]; the real API lives there. Having a
//! root package lets the workspace keep cross-crate integration tests in
//! `tests/` and runnable examples in `examples/`, per the repository layout
//! described in README.md.

pub use smoqe::*;
