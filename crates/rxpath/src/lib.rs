//! # smoqe-rxpath — Regular XPath
//!
//! Regular XPath is the query language of SMOQE (paper §1): XPath's
//! downward fragment extended with general Kleene closure `(p)*`, which
//! makes the language **closed under rewriting over (recursively defined)
//! XML views** — the property the whole system rests on.
//!
//! This crate provides:
//! * the [`Path`] / [`Qualifier`] AST with smart constructors and
//!   size/nullability/closure analyses ([`ast`]);
//! * a lexer and recursive-descent parser for the concrete syntax
//!   ([`parse_path`], [`parse_qualifier`]), plus a pretty printer that
//!   emits parseable text (`Path::display`);
//! * [`NodeSet`], query answers in document order;
//! * the naive reference evaluator ([`evaluate`]), which doubles as the
//!   correctness oracle and the "Xalan-like" comparison baseline;
//! * random query generation for property tests ([`random`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod nodeset;
pub mod parser;
pub mod random;

pub use ast::{Path, Qualifier};
pub use error::ParseError;
pub use eval::{evaluate, evaluate_from, holds};
pub use nodeset::NodeSet;
pub use parser::{parse_path, parse_qualifier};
