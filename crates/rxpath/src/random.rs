//! Random query generation for property-based testing.
//!
//! The integration suite checks that every evaluator in the workspace
//! agrees on randomly generated (document, query) pairs, and that rewriting
//! over views preserves semantics. This module produces structurally random
//! but well-formed Regular XPath over a given label alphabet.

use crate::ast::{Path, Qualifier};
use rand::Rng;
use smoqe_xml::Label;

/// Knobs for random query generation.
#[derive(Clone, Debug)]
pub struct QueryGenConfig {
    /// Labels steps may use (typically the DTD's element types).
    pub labels: Vec<Label>,
    /// Text values comparisons may use (should overlap the document's
    /// generator pools so that comparisons sometimes hold).
    pub text_values: Vec<String>,
    /// Maximum AST nesting depth.
    pub max_depth: usize,
    /// Whether `not(...)` may appear.
    pub allow_negation: bool,
    /// Probability of attaching a qualifier to a step.
    pub qualifier_p: f64,
}

impl QueryGenConfig {
    /// A reasonable default over the given alphabet.
    pub fn new(labels: Vec<Label>, text_values: Vec<String>) -> Self {
        QueryGenConfig {
            labels,
            text_values,
            max_depth: 5,
            allow_negation: true,
            qualifier_p: 0.4,
        }
    }
}

/// Generates a random path.
pub fn random_path<R: Rng>(rng: &mut R, cfg: &QueryGenConfig) -> Path {
    gen_path(rng, cfg, cfg.max_depth)
}

/// Generates a random qualifier.
pub fn random_qualifier<R: Rng>(rng: &mut R, cfg: &QueryGenConfig) -> Qualifier {
    gen_qual(rng, cfg, cfg.max_depth)
}

fn random_label<R: Rng>(rng: &mut R, cfg: &QueryGenConfig) -> Path {
    if cfg.labels.is_empty() {
        Path::Wildcard
    } else {
        Path::Label(cfg.labels[rng.random_range(0..cfg.labels.len())])
    }
}

fn gen_path<R: Rng>(rng: &mut R, cfg: &QueryGenConfig, depth: usize) -> Path {
    if depth == 0 {
        return random_label(rng, cfg);
    }
    let base = match rng.random_range(0..100) {
        0..=34 => random_label(rng, cfg),
        35..=44 => Path::Wildcard,
        45..=69 => {
            let n = rng.random_range(2..=3);
            Path::seq((0..n).map(|_| gen_path(rng, cfg, depth - 1)))
        }
        70..=79 => Path::union([gen_path(rng, cfg, depth - 1), gen_path(rng, cfg, depth - 1)]),
        80..=89 => Path::star(gen_path(rng, cfg, depth - 1)),
        _ => Path::qualified(gen_path(rng, cfg, depth - 1), gen_qual(rng, cfg, depth - 1)),
    };
    if rng.random_bool(cfg.qualifier_p) && depth > 1 {
        Path::qualified(base, gen_qual(rng, cfg, depth - 1))
    } else {
        base
    }
}

fn gen_qual<R: Rng>(rng: &mut R, cfg: &QueryGenConfig, depth: usize) -> Qualifier {
    if depth == 0 {
        return Qualifier::Exists(random_label(rng, cfg));
    }
    match rng.random_range(0..100) {
        0..=39 => Qualifier::Exists(gen_path(rng, cfg, depth - 1)),
        40..=59 => {
            let value = if cfg.text_values.is_empty() {
                "v".to_string()
            } else {
                cfg.text_values[rng.random_range(0..cfg.text_values.len())].clone()
            };
            // Sometimes compare the context node's own text.
            let path = if rng.random_bool(0.2) {
                Path::Empty
            } else {
                gen_path(rng, cfg, depth - 1)
            };
            Qualifier::TextEq(path, value)
        }
        60..=74 => Qualifier::and(gen_qual(rng, cfg, depth - 1), gen_qual(rng, cfg, depth - 1)),
        75..=89 => Qualifier::or(gen_qual(rng, cfg, depth - 1), gen_qual(rng, cfg, depth - 1)),
        _ => {
            if cfg.allow_negation {
                Qualifier::not(gen_qual(rng, cfg, depth - 1))
            } else {
                Qualifier::Exists(gen_path(rng, cfg, depth - 1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smoqe_xml::Vocabulary;

    fn config(vocab: &Vocabulary) -> QueryGenConfig {
        QueryGenConfig::new(
            vec![vocab.intern("a"), vocab.intern("b"), vocab.intern("c")],
            vec!["x".into(), "y".into()],
        )
    }

    #[test]
    fn generated_paths_print_and_reparse() {
        let vocab = Vocabulary::new();
        let cfg = config(&vocab);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let p = random_path(&mut rng, &cfg);
            let printed = p.display(&vocab).to_string();
            let reparsed = parse_path(&printed, &vocab)
                .unwrap_or_else(|e| panic!("unparseable output `{printed}`: {e}"));
            assert_eq!(
                reparsed.display(&vocab).to_string(),
                printed,
                "print/parse not stable"
            );
        }
    }

    #[test]
    fn depth_is_bounded() {
        let vocab = Vocabulary::new();
        let mut cfg = config(&vocab);
        cfg.max_depth = 3;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = random_path(&mut rng, &cfg);
            // Size grows at most exponentially in depth; 3 levels with
            // fanout <= 3 keeps it small.
            assert!(p.size() < 200);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let vocab = Vocabulary::new();
        let cfg = config(&vocab);
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..10)
                .map(|_| random_path(&mut rng, &cfg).display(&vocab).to_string())
                .collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..10)
                .map(|_| random_path(&mut rng, &cfg).display(&vocab).to_string())
                .collect()
        };
        assert_eq!(a, b);
    }
}
