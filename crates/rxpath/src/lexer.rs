//! Tokenizer for the concrete Regular XPath syntax.
//!
//! Reserved words: `and`, `or`, `not(`, `text()`, `true()`. Everything else
//! matching `[A-Za-z_][A-Za-z0-9_.-]*` is an element name.

use crate::error::ParseError;
use std::fmt;

/// A lexical token with its byte offset in the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Kind of token.
    pub kind: TokenKind,
    /// Byte offset where the token starts (for error messages).
    pub offset: usize,
}

/// Token kinds of the Regular XPath surface syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An element name.
    Name(String),
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `*` (wildcard step or Kleene star, disambiguated by the parser).
    Star,
    /// `|`
    Pipe,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// A quoted string literal (quotes stripped).
    Literal(String),
    /// `and`
    And,
    /// `or`
    Or,
    /// `not` (always followed by `(` in valid input).
    Not,
    /// `text()`
    TextFn,
    /// `true()`
    TrueFn,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Name(n) => write!(f, "name '{n}'"),
            TokenKind::Slash => write!(f, "'/'"),
            TokenKind::DoubleSlash => write!(f, "'//'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Pipe => write!(f, "'|'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBracket => write!(f, "'['"),
            TokenKind::RBracket => write!(f, "']'"),
            TokenKind::Dot => write!(f, "'.'"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::Literal(l) => write!(f, "literal '{l}'"),
            TokenKind::And => write!(f, "'and'"),
            TokenKind::Or => write!(f, "'or'"),
            TokenKind::Not => write!(f, "'not'"),
            TokenKind::TextFn => write!(f, "'text()'"),
            TokenKind::TrueFn => write!(f, "'true()'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Tokenizes `input` into a vector ending with [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let b = bytes[pos];
        if b.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        let start = pos;
        let kind = match b {
            b'/' => {
                if bytes.get(pos + 1) == Some(&b'/') {
                    pos += 2;
                    TokenKind::DoubleSlash
                } else {
                    pos += 1;
                    TokenKind::Slash
                }
            }
            b'*' => {
                pos += 1;
                TokenKind::Star
            }
            b'|' => {
                pos += 1;
                TokenKind::Pipe
            }
            b'(' => {
                pos += 1;
                TokenKind::LParen
            }
            b')' => {
                pos += 1;
                TokenKind::RParen
            }
            b'[' => {
                pos += 1;
                TokenKind::LBracket
            }
            b']' => {
                pos += 1;
                TokenKind::RBracket
            }
            b'.' => {
                pos += 1;
                TokenKind::Dot
            }
            b'=' => {
                pos += 1;
                TokenKind::Eq
            }
            q @ (b'\'' | b'"') => {
                pos += 1;
                let lit_start = pos;
                while pos < bytes.len() && bytes[pos] != q {
                    pos += 1;
                }
                if pos >= bytes.len() {
                    return Err(ParseError::new("unterminated string literal", start));
                }
                let lit = String::from_utf8_lossy(&bytes[lit_start..pos]).into_owned();
                pos += 1;
                TokenKind::Literal(lit)
            }
            _ if is_name_start(b) => {
                while pos < bytes.len() && is_name_byte(bytes[pos]) {
                    pos += 1;
                }
                let name = std::str::from_utf8(&bytes[start..pos])
                    .map_err(|_| ParseError::new("invalid UTF-8 in name", start))?;
                match name {
                    "and" => TokenKind::And,
                    "or" => TokenKind::Or,
                    "not" => TokenKind::Not,
                    "text" if bytes[pos..].starts_with(b"()") => {
                        pos += 2;
                        TokenKind::TextFn
                    }
                    "true" if bytes[pos..].starts_with(b"()") => {
                        pos += 2;
                        TokenKind::TrueFn
                    }
                    _ => TokenKind::Name(name.to_string()),
                }
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character '{}'", other as char),
                    pos,
                ))
            }
        };
        out.push(Token {
            kind,
            offset: start,
        });
    }
    out.push(Token {
        kind: TokenKind::Eof,
        offset: bytes.len(),
    });
    Ok(out)
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("a/b//c"),
            vec![
                TokenKind::Name("a".into()),
                TokenKind::Slash,
                TokenKind::Name("b".into()),
                TokenKind::DoubleSlash,
                TokenKind::Name("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn keywords_and_functions() {
        assert_eq!(
            kinds("a and not(text() = 'x') or true()"),
            vec![
                TokenKind::Name("a".into()),
                TokenKind::And,
                TokenKind::Not,
                TokenKind::LParen,
                TokenKind::TextFn,
                TokenKind::Eq,
                TokenKind::Literal("x".into()),
                TokenKind::RParen,
                TokenKind::Or,
                TokenKind::TrueFn,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn text_as_plain_name_without_parens() {
        assert_eq!(
            kinds("text"),
            vec![TokenKind::Name("text".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn both_quote_styles() {
        assert_eq!(
            kinds(r#"'a' "b""#),
            vec![
                TokenKind::Literal("a".into()),
                TokenKind::Literal("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_literal_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn dashes_and_dots_in_names() {
        assert_eq!(
            kinds("foo-bar_baz.q"),
            vec![TokenKind::Name("foo-bar_baz.q".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn offsets_point_at_tokens() {
        let toks = tokenize("ab /c").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
        assert_eq!(toks[2].offset, 4);
    }
}
