//! Node sets: query answers in document order.

use smoqe_xml::NodeId;

/// A set of nodes, stored sorted by [`NodeId`] (= document order for trees
/// built through `TreeBuilder`, which is all trees in this workspace).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeSet {
    nodes: Vec<NodeId>,
}

impl NodeSet {
    /// The empty set.
    pub fn new() -> Self {
        NodeSet::default()
    }

    /// Builds a set from an arbitrary vector (sorts and dedups).
    pub fn from_vec(mut nodes: Vec<NodeId>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        NodeSet { nodes }
    }

    /// Builds a set from a vector that is already sorted and deduplicated.
    pub fn from_sorted(nodes: Vec<NodeId>) -> Self {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
        NodeSet { nodes }
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// Iterates in document order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// The nodes as a sorted slice.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Consumes the set, returning the sorted vector.
    pub fn into_vec(self) -> Vec<NodeId> {
        self.nodes
    }

    /// Union of two sets.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.nodes.len() && j < other.nodes.len() {
            use std::cmp::Ordering::*;
            match self.nodes[i].cmp(&other.nodes[j]) {
                Less => {
                    out.push(self.nodes[i]);
                    i += 1;
                }
                Greater => {
                    out.push(other.nodes[j]);
                    j += 1;
                }
                Equal => {
                    out.push(self.nodes[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.nodes[i..]);
        out.extend_from_slice(&other.nodes[j..]);
        NodeSet { nodes: out }
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        NodeSet::from_vec(iter.into_iter().collect())
    }
}

impl IntoIterator for NodeSet {
    type Item = NodeId;
    type IntoIter = std::vec::IntoIter<NodeId>;
    fn into_iter(self) -> Self::IntoIter {
        self.nodes.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn from_vec_sorts_and_dedups() {
        let s = NodeSet::from_vec(vec![n(3), n(1), n(3), n(2)]);
        assert_eq!(s.as_slice(), &[n(1), n(2), n(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_uses_order() {
        let s = NodeSet::from_vec(vec![n(5), n(10), n(1)]);
        assert!(s.contains(n(5)));
        assert!(!s.contains(n(4)));
    }

    #[test]
    fn union_merges() {
        let a = NodeSet::from_vec(vec![n(1), n(3), n(5)]);
        let b = NodeSet::from_vec(vec![n(2), n(3), n(6)]);
        assert_eq!(a.union(&b).as_slice(), &[n(1), n(2), n(3), n(5), n(6)]);
        assert_eq!(a.union(&NodeSet::new()), a);
    }

    #[test]
    fn collect_from_iterator() {
        let s: NodeSet = [n(2), n(2), n(0)].into_iter().collect();
        assert_eq!(s.as_slice(), &[n(0), n(2)]);
    }
}
