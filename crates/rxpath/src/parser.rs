//! Recursive-descent parser for Regular XPath.
//!
//! Grammar (lowest precedence first):
//!
//! ```text
//! path     := union
//! union    := seq ('|' seq)*
//! seq      := ['/' | '//'] item (('/' | '//') item)*
//! item     := primary ('*' if primary was a group | '[' qual ']')*
//! primary  := NAME | '*' | '.' | '(' union ')'
//! qual     := or
//! or       := and ('or' and)*
//! and      := base ('and' base)*
//! base     := 'not' '(' qual ')' | 'true()' | 'text()' '=' LIT
//!           | '(' qual ')'                 (if not parseable as a path)
//!           | cmp-path ['/text()'] ['=' LIT]
//! ```
//!
//! `//` desugars to `/(*)*/`. The Kleene star is only accepted after a
//! parenthesized group (`(p)*`), so `*` elsewhere is the wildcard step —
//! exactly the concrete syntax the paper's example Q0 uses.

use crate::ast::{Path, Qualifier};
use crate::error::ParseError;
use crate::lexer::{tokenize, Token, TokenKind};
use smoqe_xml::Vocabulary;

/// Parses a Regular XPath path, interning labels into `vocab`.
///
/// ```
/// use smoqe_rxpath::parse_path;
/// use smoqe_xml::Vocabulary;
/// let vocab = Vocabulary::new();
/// let q0 = parse_path(
///     "hospital/patient[(parent/patient)*/visit/treatment/test and \
///      visit/treatment[medication/text() = 'headache']]/pname",
///     &vocab,
/// ).unwrap();
/// assert!(q0.has_closure());
/// ```
pub fn parse_path(input: &str, vocab: &Vocabulary) -> Result<Path, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        vocab,
    };
    let path = p.union()?;
    p.expect_eof()?;
    Ok(path)
}

/// Parses a standalone qualifier (used by policy files, where annotations
/// are written as bare qualifiers such as `visit/treatment/medication = 'autism'`).
pub fn parse_qualifier(input: &str, vocab: &Vocabulary) -> Result<Qualifier, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        vocab,
    };
    let q = p.qualifier()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    vocab: &'a Vocabulary,
}

impl Parser<'_> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {kind}")))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("expected end of input"))
        }
    }

    fn unexpected(&self, what: &str) -> ParseError {
        ParseError::new(format!("{what}, found {}", self.peek()), self.offset())
    }

    // -- paths -------------------------------------------------------------

    fn union(&mut self) -> Result<Path, ParseError> {
        let mut parts = vec![self.seq()?];
        while self.eat(&TokenKind::Pipe) {
            parts.push(self.seq()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Path::union(parts)
        })
    }

    fn seq(&mut self) -> Result<Path, ParseError> {
        let mut parts = Vec::new();
        // Leading '/' (absolute, a no-op from the root context) or '//'.
        if self.eat(&TokenKind::DoubleSlash) {
            parts.push(Path::star(Path::Wildcard));
        } else {
            let _ = self.eat(&TokenKind::Slash);
        }
        parts.push(self.item()?);
        loop {
            if self.eat(&TokenKind::Slash) {
                parts.push(self.item()?);
            } else if self.eat(&TokenKind::DoubleSlash) {
                parts.push(Path::star(Path::Wildcard));
                parts.push(self.item()?);
            } else {
                break;
            }
        }
        Ok(Path::seq(parts))
    }

    fn item(&mut self) -> Result<Path, ParseError> {
        let (mut path, was_group) = self.primary()?;
        // Kleene star binds only to a parenthesized group.
        if was_group && self.eat(&TokenKind::Star) {
            path = Path::star(path);
        }
        while self.eat(&TokenKind::LBracket) {
            let q = self.qualifier()?;
            self.expect(TokenKind::RBracket)?;
            path = Path::qualified(path, q);
        }
        Ok(path)
    }

    fn primary(&mut self) -> Result<(Path, bool), ParseError> {
        match self.peek().clone() {
            TokenKind::Name(n) => {
                self.bump();
                Ok((Path::Label(self.vocab.intern(&n)), false))
            }
            TokenKind::Star => {
                self.bump();
                Ok((Path::Wildcard, false))
            }
            TokenKind::Dot => {
                self.bump();
                Ok((Path::Empty, false))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.union()?;
                self.expect(TokenKind::RParen)?;
                Ok((inner, true))
            }
            _ => Err(self.unexpected("expected a step")),
        }
    }

    // -- qualifiers ---------------------------------------------------------

    fn qualifier(&mut self) -> Result<Qualifier, ParseError> {
        let mut q = self.qual_and()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.qual_and()?;
            q = Qualifier::or(q, rhs);
        }
        Ok(q)
    }

    fn qual_and(&mut self) -> Result<Qualifier, ParseError> {
        let mut q = self.qual_base()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.qual_base()?;
            q = Qualifier::and(q, rhs);
        }
        Ok(q)
    }

    fn qual_base(&mut self) -> Result<Qualifier, ParseError> {
        match self.peek() {
            TokenKind::Not => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let inner = self.qualifier()?;
                self.expect(TokenKind::RParen)?;
                Ok(Qualifier::not(inner))
            }
            TokenKind::TrueFn => {
                self.bump();
                Ok(Qualifier::True)
            }
            TokenKind::TextFn => {
                self.bump();
                self.expect(TokenKind::Eq)?;
                let lit = self.literal()?;
                Ok(Qualifier::TextEq(Path::Empty, lit))
            }
            TokenKind::LParen => {
                // Ambiguous: '(path)...' vs '(qual)'. Try the path route
                // first; on failure, backtrack and parse a parenthesized
                // qualifier.
                let save = self.pos;
                match self.comparison() {
                    Ok(q) => Ok(q),
                    Err(path_err) => {
                        self.pos = save;
                        self.expect(TokenKind::LParen)?;
                        let inner = self.qualifier().map_err(|qual_err| {
                            // Report whichever got further.
                            if qual_err.offset() >= path_err.offset() {
                                qual_err
                            } else {
                                path_err.clone()
                            }
                        })?;
                        self.expect(TokenKind::RParen)?;
                        Ok(inner)
                    }
                }
            }
            _ => self.comparison(),
        }
    }

    /// `cmp-path ['/text()'] ['=' LIT]` — an existence test or a text
    /// comparison on a path.
    fn comparison(&mut self) -> Result<Qualifier, ParseError> {
        let path = self.cmp_seq()?;
        if self.eat(&TokenKind::Eq) {
            let lit = self.literal()?;
            return Ok(Qualifier::TextEq(path, lit));
        }
        Ok(Qualifier::Exists(path))
    }

    /// Like [`Parser::seq`], but stops before a trailing `/text()` (which
    /// signals a comparison) and never consumes `=`.
    fn cmp_seq(&mut self) -> Result<Path, ParseError> {
        let mut parts = Vec::new();
        if self.eat(&TokenKind::DoubleSlash) {
            parts.push(Path::star(Path::Wildcard));
        } else {
            let _ = self.eat(&TokenKind::Slash);
        }
        parts.push(self.item()?);
        loop {
            if self.eat(&TokenKind::Slash) {
                if matches!(self.peek(), TokenKind::TextFn) {
                    // `p/text() = 'c'`: text() is not a step of the path but
                    // a comparison marker; leave Eq for comparison().
                    self.bump();
                    if !matches!(self.peek(), TokenKind::Eq) {
                        return Err(self.unexpected("expected '=' after text()"));
                    }
                    break;
                }
                parts.push(self.item()?);
            } else if self.eat(&TokenKind::DoubleSlash) {
                parts.push(Path::star(Path::Wildcard));
                parts.push(self.item()?);
            } else {
                break;
            }
        }
        Ok(Path::seq(parts))
    }

    fn literal(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Literal(l) => {
                self.bump();
                Ok(l)
            }
            _ => Err(self.unexpected("expected a string literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_xml::Vocabulary;

    fn round_trip(input: &str) -> String {
        let vocab = Vocabulary::new();
        let p = parse_path(input, &vocab).unwrap();
        p.display(&vocab).to_string()
    }

    #[test]
    fn parses_simple_sequence() {
        assert_eq!(round_trip("a/b/c"), "a/b/c");
    }

    #[test]
    fn double_slash_desugars() {
        assert_eq!(round_trip("a//b"), "a/(*)*/b");
        assert_eq!(round_trip("//b"), "(*)*/b");
    }

    #[test]
    fn leading_slash_is_noop() {
        assert_eq!(round_trip("/a/b"), "a/b");
    }

    #[test]
    fn kleene_star_on_groups() {
        assert_eq!(round_trip("(a/b)*/c"), "(a/b)*/c");
        assert_eq!(round_trip("(a | b)*"), "(a | b)*");
    }

    #[test]
    fn star_after_name_is_wildcard_step() {
        // `a/*` is "any child of a", not closure.
        assert_eq!(round_trip("a/*"), "a/*");
    }

    #[test]
    fn union_precedence_below_seq() {
        assert_eq!(round_trip("a/b | c"), "a/b | c");
        assert_eq!(round_trip("(a | b)/c"), "(a | b)/c");
    }

    #[test]
    fn qualifiers_parse() {
        assert_eq!(round_trip("a[b]"), "a[b]");
        assert_eq!(round_trip("a[b and not(c)]"), "a[b and not(c)]");
        assert_eq!(round_trip("a[b or c]/d"), "a[b or c]/d");
        assert_eq!(round_trip("a[text() = 'x']"), "a[text() = 'x']");
        assert_eq!(round_trip("a[b = 'x']"), "a[b = 'x']");
        assert_eq!(round_trip("a[b/text() = 'x']"), "a[b = 'x']");
    }

    #[test]
    fn parenthesized_qualifier_backtracks() {
        assert_eq!(round_trip("a[(b or c) and d]"), "a[(b or c) and d]");
        // Parenthesized *path* also works.
        assert_eq!(round_trip("a[(b/c)*/d]"), "a[(b/c)*/d]");
    }

    #[test]
    fn paper_query_q0_parses() {
        let s = round_trip(
            "hospital/patient[(parent/patient)*/visit/treatment/test and \
             visit/treatment[medication/text() = 'headache']]/pname",
        );
        assert_eq!(
            s,
            "hospital/patient[(parent/patient)*/visit/treatment/test and \
             visit/treatment[medication = 'headache']]/pname"
        );
    }

    #[test]
    fn display_reparses_to_same_ast() {
        let vocab = Vocabulary::new();
        for q in [
            "a/b/c",
            "a//b",
            "(a/b)*/c[d and (e or not(f))]",
            "a[b = 'v' and text() = 'w']/c | d",
            "a/(b | c)/d",
            "(a | (b/c)*)*",
        ] {
            let p1 = parse_path(q, &vocab).unwrap();
            let printed = p1.display(&vocab).to_string();
            let p2 = parse_path(&printed, &vocab).unwrap();
            assert_eq!(p1, p2, "round-trip failed for {q} -> {printed}");
        }
    }

    #[test]
    fn errors_have_positions() {
        let vocab = Vocabulary::new();
        let e = parse_path("a/[b]", &vocab).unwrap_err();
        assert!(e.to_string().contains("offset 2"), "{e}");
        assert!(parse_path("a/b[", &vocab).is_err());
        assert!(parse_path("a ||", &vocab).is_err());
        assert!(parse_path("", &vocab).is_err());
        assert!(parse_path("a)b", &vocab).is_err());
    }

    #[test]
    fn standalone_qualifier_parsing() {
        let vocab = Vocabulary::new();
        let q = parse_qualifier("visit/treatment/medication = 'autism'", &vocab).unwrap();
        match q {
            Qualifier::TextEq(p, v) => {
                assert_eq!(v, "autism");
                assert_eq!(p.size(), 4); // Seq + 3 labels
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_dot_is_empty_path() {
        let vocab = Vocabulary::new();
        assert_eq!(parse_path(".", &vocab).unwrap(), Path::Empty);
    }
}
