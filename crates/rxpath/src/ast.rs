//! Abstract syntax of Regular XPath.
//!
//! Regular XPath (paper §1; Marx [9]) is "a mild extension of XPath which
//! supports general Kleene closure `(.)∗` instead of the limited recursion
//! `//`". The downward fragment the paper uses is
//!
//! ```text
//! p ::= ε | A | * | p/p | p ∪ p | (p)* | p[q]
//! q ::= p | p = 'c' | text() = 'c' | ¬q | q ∧ q | q ∨ q | true
//! ```
//!
//! where `A` ranges over element labels and `//` is syntactic sugar for
//! `/(*)*/`. Answers are sets of element nodes in document order.

use smoqe_xml::{Label, Vocabulary};
use std::fmt;

/// A Regular XPath path expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Path {
    /// `ε` (written `.`): stay at the context node.
    Empty,
    /// A child step matching elements with this label.
    Label(Label),
    /// A child step matching any element (`*`).
    Wildcard,
    /// Concatenation `p1/p2/...` (invariant: ≥ 2 items, none of them Seq).
    Seq(Vec<Path>),
    /// Union `p1 ∪ p2 ∪ ...` (invariant: ≥ 2 items, none of them Union).
    Union(Vec<Path>),
    /// General Kleene closure `(p)*`: zero or more repetitions of `p`.
    Star(Box<Path>),
    /// Qualified path `p[q]`: nodes reached via `p` where `q` holds.
    Qualified(Box<Path>, Box<Qualifier>),
}

/// A qualifier (predicate) on a path.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Qualifier {
    /// Always true (identity of `and`).
    True,
    /// `[p]`: some node is reachable via `p` from the context node.
    Exists(Path),
    /// `[p = 'c']` / `[p/text() = 'c']`: some node reachable via `p` has
    /// string value `c`. With `p = ε` this is `[text() = 'c']`: the context
    /// node itself has string value `c`.
    TextEq(Path, String),
    /// `not(q)`.
    Not(Box<Qualifier>),
    /// `q1 and q2`.
    And(Box<Qualifier>, Box<Qualifier>),
    /// `q1 or q2`.
    Or(Box<Qualifier>, Box<Qualifier>),
}

impl Path {
    /// Smart constructor for concatenation; flattens nested `Seq` and drops
    /// `ε` units.
    pub fn seq(parts: impl IntoIterator<Item = Path>) -> Path {
        let mut items = Vec::new();
        for p in parts {
            match p {
                Path::Empty => {}
                Path::Seq(inner) => items.extend(inner),
                other => items.push(other),
            }
        }
        match items.len() {
            0 => Path::Empty,
            1 => items.pop().expect("len checked"),
            _ => Path::Seq(items),
        }
    }

    /// Smart constructor for union; flattens nested `Union` and dedups.
    pub fn union(parts: impl IntoIterator<Item = Path>) -> Path {
        let mut items: Vec<Path> = Vec::new();
        for p in parts {
            match p {
                Path::Union(inner) => {
                    for i in inner {
                        if !items.contains(&i) {
                            items.push(i);
                        }
                    }
                }
                other => {
                    if !items.contains(&other) {
                        items.push(other);
                    }
                }
            }
        }
        match items.len() {
            0 => Path::Empty,
            1 => items.pop().expect("len checked"),
            _ => Path::Union(items),
        }
    }

    /// Smart constructor for closure; collapses `(ε)*` and `((p)*)*`.
    pub fn star(p: Path) -> Path {
        match p {
            Path::Empty => Path::Empty,
            s @ Path::Star(_) => s,
            other => Path::Star(Box::new(other)),
        }
    }

    /// Attaches a qualifier (`p[q]`); `[true]` is dropped.
    pub fn qualified(p: Path, q: Qualifier) -> Path {
        if q == Qualifier::True {
            p
        } else {
            Path::Qualified(Box::new(p), Box::new(q))
        }
    }

    /// `p//p'` sugar: `p/(*)*/p'`.
    pub fn descendant(p: Path, rest: Path) -> Path {
        Path::seq([p, Path::star(Path::Wildcard), rest])
    }

    /// `//p` from the context: `(*)*/p`.
    pub fn from_descendant(rest: Path) -> Path {
        Path::seq([Path::star(Path::Wildcard), rest])
    }

    /// Number of AST nodes (paths and qualifiers) — the |Q| of the paper's
    /// complexity statements and experiment E2.
    pub fn size(&self) -> usize {
        match self {
            Path::Empty | Path::Label(_) | Path::Wildcard => 1,
            Path::Seq(ps) | Path::Union(ps) => 1 + ps.iter().map(Path::size).sum::<usize>(),
            Path::Star(p) => 1 + p.size(),
            Path::Qualified(p, q) => 1 + p.size() + q.size(),
        }
    }

    /// Whether the path can match the empty word (reach the context node
    /// itself). Nullable view-specification paths are rejected by the view
    /// well-formedness check (they would make view trees infinite).
    pub fn nullable(&self) -> bool {
        match self {
            Path::Empty => true,
            Path::Label(_) | Path::Wildcard => false,
            Path::Seq(ps) => ps.iter().all(Path::nullable),
            Path::Union(ps) => ps.iter().any(Path::nullable),
            Path::Star(_) => true,
            Path::Qualified(p, _) => p.nullable(),
        }
    }

    /// Whether the path mentions a Kleene closure (including `//` sugar).
    pub fn has_closure(&self) -> bool {
        match self {
            Path::Empty | Path::Label(_) | Path::Wildcard => false,
            Path::Seq(ps) | Path::Union(ps) => ps.iter().any(Path::has_closure),
            Path::Star(_) => true,
            Path::Qualified(p, q) => p.has_closure() || q.has_closure(),
        }
    }

    /// Display adapter rendering parseable concrete syntax.
    pub fn display<'a>(&'a self, vocab: &'a Vocabulary) -> PathDisplay<'a> {
        PathDisplay { path: self, vocab }
    }
}

impl Qualifier {
    /// Smart conjunction; drops `true` units.
    pub fn and(a: Qualifier, b: Qualifier) -> Qualifier {
        match (a, b) {
            (Qualifier::True, q) | (q, Qualifier::True) => q,
            (a, b) => Qualifier::And(Box::new(a), Box::new(b)),
        }
    }

    /// Smart disjunction.
    pub fn or(a: Qualifier, b: Qualifier) -> Qualifier {
        Qualifier::Or(Box::new(a), Box::new(b))
    }

    /// Smart negation; collapses double negation.
    #[allow(clippy::should_implement_trait)] // deliberate constructor name
    pub fn not(q: Qualifier) -> Qualifier {
        match q {
            Qualifier::Not(inner) => *inner,
            other => Qualifier::Not(Box::new(other)),
        }
    }

    /// Number of AST nodes, counting embedded paths.
    pub fn size(&self) -> usize {
        match self {
            Qualifier::True => 1,
            Qualifier::Exists(p) => 1 + p.size(),
            Qualifier::TextEq(p, _) => 1 + p.size(),
            Qualifier::Not(q) => 1 + q.size(),
            Qualifier::And(a, b) | Qualifier::Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Whether any embedded path mentions a closure.
    pub fn has_closure(&self) -> bool {
        match self {
            Qualifier::True => false,
            Qualifier::Exists(p) | Qualifier::TextEq(p, _) => p.has_closure(),
            Qualifier::Not(q) => q.has_closure(),
            Qualifier::And(a, b) | Qualifier::Or(a, b) => a.has_closure() || b.has_closure(),
        }
    }

    /// Display adapter rendering parseable concrete syntax.
    pub fn display<'a>(&'a self, vocab: &'a Vocabulary) -> QualifierDisplay<'a> {
        QualifierDisplay { qual: self, vocab }
    }
}

// ---------------------------------------------------------------------------
// Display (parseable concrete syntax)
// ---------------------------------------------------------------------------

/// [`fmt::Display`] adapter for [`Path`].
pub struct PathDisplay<'a> {
    path: &'a Path,
    vocab: &'a Vocabulary,
}

/// [`fmt::Display`] adapter for [`Qualifier`].
pub struct QualifierDisplay<'a> {
    qual: &'a Qualifier,
    vocab: &'a Vocabulary,
}

fn fmt_path(p: &Path, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match p {
        Path::Empty => write!(f, "."),
        Path::Label(l) => write!(f, "{}", vocab.name(*l)),
        Path::Wildcard => write!(f, "*"),
        Path::Seq(ps) => {
            for (i, part) in ps.iter().enumerate() {
                if i > 0 {
                    write!(f, "/")?;
                }
                // Unions need parens inside a sequence.
                if matches!(part, Path::Union(_)) {
                    write!(f, "(")?;
                    fmt_path(part, vocab, f)?;
                    write!(f, ")")?;
                } else {
                    fmt_path(part, vocab, f)?;
                }
            }
            Ok(())
        }
        Path::Union(ps) => {
            for (i, part) in ps.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                fmt_path(part, vocab, f)?;
            }
            Ok(())
        }
        Path::Star(inner) => {
            write!(f, "(")?;
            fmt_path(inner, vocab, f)?;
            write!(f, ")*")
        }
        Path::Qualified(inner, q) => {
            // Sequences/unions need parens so the qualifier binds the whole.
            if matches!(**inner, Path::Seq(_) | Path::Union(_)) {
                write!(f, "(")?;
                fmt_path(inner, vocab, f)?;
                write!(f, ")")?;
            } else {
                fmt_path(inner, vocab, f)?;
            }
            write!(f, "[")?;
            fmt_qual(q, vocab, f)?;
            write!(f, "]")
        }
    }
}

/// Paths at comparison position must parse back via `cmp_seq`, which has no
/// top-level union; parenthesize unions.
fn fmt_cmp_path(p: &Path, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if matches!(p, Path::Union(_)) {
        write!(f, "(")?;
        fmt_path(p, vocab, f)?;
        write!(f, ")")
    } else {
        fmt_path(p, vocab, f)
    }
}

fn fmt_qual(q: &Qualifier, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match q {
        Qualifier::True => write!(f, "true()"),
        Qualifier::Exists(p) => fmt_cmp_path(p, vocab, f),
        Qualifier::TextEq(p, c) => {
            if *p == Path::Empty {
                write!(f, "text() = '{c}'")
            } else {
                fmt_cmp_path(p, vocab, f)?;
                write!(f, " = '{c}'")
            }
        }
        Qualifier::Not(inner) => {
            write!(f, "not(")?;
            fmt_qual(inner, vocab, f)?;
            write!(f, ")")
        }
        Qualifier::And(a, b) => {
            for (i, side) in [a, b].into_iter().enumerate() {
                if i > 0 {
                    write!(f, " and ")?;
                }
                if matches!(**side, Qualifier::Or(_, _)) {
                    write!(f, "(")?;
                    fmt_qual(side, vocab, f)?;
                    write!(f, ")")?;
                } else {
                    fmt_qual(side, vocab, f)?;
                }
            }
            Ok(())
        }
        Qualifier::Or(a, b) => {
            fmt_qual(a, vocab, f)?;
            write!(f, " or ")?;
            fmt_qual(b, vocab, f)
        }
    }
}

impl fmt::Display for PathDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_path(self.path, self.vocab, f)
    }
}

impl fmt::Display for QualifierDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_qual(self.qual, self.vocab, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(vocab: &Vocabulary) -> (Label, Label, Label) {
        (vocab.intern("a"), vocab.intern("b"), vocab.intern("c"))
    }

    #[test]
    fn seq_flattens_and_drops_epsilon() {
        let vocab = Vocabulary::new();
        let (a, b, c) = labels(&vocab);
        let p = Path::seq([
            Path::Label(a),
            Path::Empty,
            Path::seq([Path::Label(b), Path::Label(c)]),
        ]);
        assert_eq!(
            p,
            Path::Seq(vec![Path::Label(a), Path::Label(b), Path::Label(c)])
        );
    }

    #[test]
    fn union_dedups() {
        let vocab = Vocabulary::new();
        let (a, b, _) = labels(&vocab);
        let p = Path::union([Path::Label(a), Path::Label(b), Path::Label(a)]);
        assert_eq!(p, Path::Union(vec![Path::Label(a), Path::Label(b)]));
        assert_eq!(Path::union([Path::Label(a)]), Path::Label(a));
    }

    #[test]
    fn star_collapses() {
        let vocab = Vocabulary::new();
        let (a, _, _) = labels(&vocab);
        assert_eq!(Path::star(Path::Empty), Path::Empty);
        let s = Path::star(Path::Label(a));
        assert_eq!(Path::star(s.clone()), s);
    }

    #[test]
    fn nullable_analysis() {
        let vocab = Vocabulary::new();
        let (a, b, _) = labels(&vocab);
        assert!(Path::Empty.nullable());
        assert!(!Path::Label(a).nullable());
        assert!(Path::star(Path::Label(a)).nullable());
        assert!(Path::union([Path::Label(a), Path::Empty]).nullable());
        assert!(!Path::seq([Path::Label(a), Path::star(Path::Label(b))]).nullable());
    }

    #[test]
    fn size_counts_qualifiers() {
        let vocab = Vocabulary::new();
        let (a, b, _) = labels(&vocab);
        let p = Path::qualified(Path::Label(a), Qualifier::Exists(Path::Label(b)));
        assert_eq!(p.size(), 4); // Qualified + Label + Exists + Label
    }

    #[test]
    fn display_round_understandable() {
        let vocab = Vocabulary::new();
        let (a, b, c) = labels(&vocab);
        let p = Path::seq([
            Path::Label(a),
            Path::qualified(
                Path::Label(b),
                Qualifier::and(
                    Qualifier::Exists(Path::star(Path::seq([Path::Label(c), Path::Label(a)]))),
                    Qualifier::TextEq(Path::Label(c), "v".into()),
                ),
            ),
        ]);
        let s = p.display(&vocab).to_string();
        assert_eq!(s, "a/b[(c/a)* and c = 'v']");
    }

    #[test]
    fn qualified_true_is_dropped() {
        let vocab = Vocabulary::new();
        let (a, _, _) = labels(&vocab);
        assert_eq!(
            Path::qualified(Path::Label(a), Qualifier::True),
            Path::Label(a)
        );
    }

    #[test]
    fn double_negation_collapses() {
        let q = Qualifier::not(Qualifier::not(Qualifier::True));
        assert_eq!(q, Qualifier::True);
    }
}
