//! Parse errors for Regular XPath.

use std::fmt;

/// A syntax error with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    offset: usize,
}

impl ParseError {
    /// Creates a parse error.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }

    /// Byte offset in the query text where the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = ParseError::new("expected ']'", 17);
        assert_eq!(e.to_string(), "expected ']' at offset 17");
        assert_eq!(e.offset(), 17);
    }
}
