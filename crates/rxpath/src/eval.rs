//! Naive reference evaluator for Regular XPath over a DOM tree.
//!
//! This evaluator computes the semantics **directly**: child steps
//! enumerate children, unions merge node sets, `(p)*` is a reachability
//! fixpoint, and qualifiers are evaluated per candidate node. It makes no
//! use of automata or indexes, which gives it two roles in the
//! reproduction:
//!
//! 1. **Correctness oracle** — every other evaluator (HyPE in DOM and StAX
//!    mode, the two-pass baseline, with or without TAX) is tested to agree
//!    with it;
//! 2. **"Xalan-like" baseline** — per-node navigational evaluation stands
//!    in for the 2006 main-memory XPath engines the demo compares against
//!    (DESIGN.md §4).
//!
//! Queries run from a *virtual document node* above the root, so the first
//! step of `hospital/patient/...` consumes the root element, matching the
//! paper's examples.

use crate::ast::{Path, Qualifier};
use crate::nodeset::NodeSet;
use smoqe_xml::{Document, NodeId};

/// Context node encoding: `VIRTUAL` is the document node above the root.
const VIRTUAL: u32 = u32::MAX;

/// Evaluates `path` on `doc` from the virtual document root.
pub fn evaluate(doc: &Document, path: &Path) -> NodeSet {
    let out = eval_path(doc, path, &[VIRTUAL]);
    NodeSet::from_sorted(
        out.into_iter()
            .filter(|&n| n != VIRTUAL)
            .map(NodeId)
            .collect(),
    )
}

/// Evaluates `path` with the given element nodes as context set.
pub fn evaluate_from(doc: &Document, path: &Path, context: &[NodeId]) -> NodeSet {
    let ctx: Vec<u32> = {
        let mut v: Vec<u32> = context.iter().map(|n| n.0).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let out = eval_path(doc, path, &ctx);
    NodeSet::from_sorted(
        out.into_iter()
            .filter(|&n| n != VIRTUAL)
            .map(NodeId)
            .collect(),
    )
}

/// Whether `qual` holds at `node`.
pub fn holds(doc: &Document, qual: &Qualifier, node: NodeId) -> bool {
    eval_qual(doc, qual, node.0)
}

fn children_of(doc: &Document, ctx: u32) -> Vec<u32> {
    if ctx == VIRTUAL {
        vec![doc.root().0]
    } else {
        doc.child_elements(NodeId(ctx)).map(|n| n.0).collect()
    }
}

fn label_of(doc: &Document, node: u32) -> Option<smoqe_xml::Label> {
    doc.label(NodeId(node))
}

/// The value `text() = 'c'` compares: the node's direct text content.
/// The virtual document node has no text children.
fn text_value(doc: &Document, ctx: u32) -> String {
    if ctx == VIRTUAL {
        String::new()
    } else {
        doc.direct_text(NodeId(ctx))
    }
}

fn normalize(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

fn eval_path(doc: &Document, path: &Path, context: &[u32]) -> Vec<u32> {
    match path {
        Path::Empty => context.to_vec(),
        Path::Label(l) => {
            let mut out = Vec::new();
            for &c in context {
                for child in children_of(doc, c) {
                    if label_of(doc, child) == Some(*l) {
                        out.push(child);
                    }
                }
            }
            normalize(out)
        }
        Path::Wildcard => {
            let mut out = Vec::new();
            for &c in context {
                out.extend(children_of(doc, c));
            }
            normalize(out)
        }
        Path::Seq(parts) => {
            let mut cur = context.to_vec();
            for p in parts {
                if cur.is_empty() {
                    break;
                }
                cur = eval_path(doc, p, &cur);
            }
            cur
        }
        Path::Union(parts) => {
            let mut out = Vec::new();
            for p in parts {
                out.extend(eval_path(doc, p, context));
            }
            normalize(out)
        }
        Path::Star(inner) => {
            // Reachability fixpoint over `inner` steps.
            let mut result: Vec<u32> = context.to_vec();
            let mut seen: std::collections::HashSet<u32> = result.iter().copied().collect();
            let mut frontier = result.clone();
            while !frontier.is_empty() {
                let next = eval_path(doc, inner, &frontier);
                frontier = next.into_iter().filter(|n| seen.insert(*n)).collect();
                result.extend(frontier.iter().copied());
            }
            normalize(result)
        }
        Path::Qualified(inner, q) => {
            let reached = eval_path(doc, inner, context);
            reached
                .into_iter()
                .filter(|&n| eval_qual(doc, q, n))
                .collect()
        }
    }
}

fn eval_qual(doc: &Document, qual: &Qualifier, node: u32) -> bool {
    match qual {
        Qualifier::True => true,
        Qualifier::Exists(p) => !eval_path(doc, p, &[node]).is_empty(),
        Qualifier::TextEq(p, value) => {
            if *p == Path::Empty {
                text_value(doc, node) == *value
            } else {
                eval_path(doc, p, &[node])
                    .into_iter()
                    .any(|n| text_value(doc, n) == *value)
            }
        }
        Qualifier::Not(inner) => !eval_qual(doc, inner, node),
        Qualifier::And(a, b) => eval_qual(doc, a, node) && eval_qual(doc, b, node),
        Qualifier::Or(a, b) => eval_qual(doc, a, node) || eval_qual(doc, b, node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;
    use smoqe_xml::Vocabulary;

    fn setup(xml: &str) -> (Vocabulary, Document) {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(xml, &vocab).unwrap();
        (vocab, doc)
    }

    fn run(doc: &Document, vocab: &Vocabulary, q: &str) -> Vec<u32> {
        let p = parse_path(q, vocab).unwrap();
        evaluate(doc, &p).iter().map(|n| n.0).collect()
    }

    fn texts(doc: &Document, vocab: &Vocabulary, q: &str) -> Vec<String> {
        let p = parse_path(q, vocab).unwrap();
        evaluate(doc, &p)
            .iter()
            .map(|n| doc.string_value(n))
            .collect()
    }

    #[test]
    fn child_steps() {
        let (vocab, doc) = setup("<a><b>1</b><c>2</c><b>3</b></a>");
        assert_eq!(texts(&doc, &vocab, "a/b"), vec!["1", "3"]);
        assert_eq!(texts(&doc, &vocab, "a/*"), vec!["1", "2", "3"]);
        assert_eq!(run(&doc, &vocab, "a/zzz"), Vec::<u32>::new());
    }

    #[test]
    fn first_step_matches_root() {
        let (vocab, doc) = setup("<a><b/></a>");
        assert_eq!(run(&doc, &vocab, "a"), vec![0]);
        assert_eq!(run(&doc, &vocab, "b"), Vec::<u32>::new());
    }

    #[test]
    fn descendant_sugar() {
        let (vocab, doc) = setup("<a><b><c>x</c></b><c>y</c></a>");
        assert_eq!(texts(&doc, &vocab, "//c"), vec!["x", "y"]);
        assert_eq!(texts(&doc, &vocab, "a//c"), vec!["x", "y"]);
        assert_eq!(texts(&doc, &vocab, "a/b//c"), vec!["x"]);
    }

    #[test]
    fn closure_fixpoint() {
        // Chain a/b/a/b/... via recursion.
        let (vocab, doc) = setup("<a><b><a><b><a/></b></a></b></a>");
        // All `a` nodes reachable via (b/a)* from root a.
        let res = run(&doc, &vocab, "a/(b/a)*");
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn union_and_dedup() {
        let (vocab, doc) = setup("<a><b>1</b><c>2</c></a>");
        assert_eq!(texts(&doc, &vocab, "a/(b | c)"), vec!["1", "2"]);
        assert_eq!(texts(&doc, &vocab, "a/(b | *)"), vec!["1", "2"]);
    }

    #[test]
    fn qualifiers_filter() {
        let (vocab, doc) = setup("<a><b><c>yes</c></b><b><d/></b><b><c>no</c></b></a>");
        assert_eq!(run(&doc, &vocab, "a/b[c]").len(), 2);
        assert_eq!(run(&doc, &vocab, "a/b[c = 'yes']").len(), 1);
        assert_eq!(run(&doc, &vocab, "a/b[not(c)]").len(), 1);
        assert_eq!(run(&doc, &vocab, "a/b[c and d]").len(), 0);
        assert_eq!(run(&doc, &vocab, "a/b[c or d]").len(), 3);
    }

    #[test]
    fn text_eq_on_self() {
        let (vocab, doc) = setup("<a><b>x</b><b>y</b></a>");
        assert_eq!(texts(&doc, &vocab, "a/b[text() = 'x']"), vec!["x"]);
    }

    #[test]
    fn text_eq_uses_direct_text_only() {
        // Direct text of b is "xy" (two text nodes around <c/>); the text
        // inside <c> does not count.
        let (vocab, doc) = setup("<a><b>x<c>HIDDEN</c>y</b><b><c>xy</c></b></a>");
        assert_eq!(run(&doc, &vocab, "a/b[text() = 'xy']").len(), 1);
        assert_eq!(run(&doc, &vocab, "a/b[text() = 'xHIDDENy']").len(), 0);
    }

    #[test]
    fn answers_in_document_order() {
        let (vocab, doc) = setup("<a><b/><c><b/></c><b/></a>");
        let res = run(&doc, &vocab, "//b");
        let mut sorted = res.clone();
        sorted.sort_unstable();
        assert_eq!(res, sorted);
    }

    #[test]
    fn evaluate_from_context() {
        let (vocab, doc) = setup("<a><b><c/></b><b/></a>");
        let b = vocab.lookup("b").unwrap();
        let first_b = doc.nodes_labeled(b).next().unwrap();
        let p = parse_path("c", &vocab).unwrap();
        let res = evaluate_from(&doc, &p, &[first_b]);
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn paper_q0_on_sample_document() {
        let (vocab, doc) = setup(
            "<hospital>\
               <patient><pname>Ann</pname>\
                 <visit><treatment><test>blood</test></treatment><date>d1</date></visit>\
                 <visit><treatment><medication>headache</medication></treatment><date>d2</date></visit>\
               </patient>\
               <patient><pname>Bob</pname>\
                 <visit><treatment><medication>headache</medication></treatment><date>d3</date></visit>\
               </patient>\
               <patient><pname>Cat</pname>\
                 <parent><patient><pname>Dan</pname>\
                   <visit><treatment><test>x-ray</test></treatment><date>d4</date></visit>\
                 </patient></parent>\
                 <visit><treatment><medication>headache</medication></treatment><date>d5</date></visit>\
               </patient>\
             </hospital>",
        );
        // Q0: patients with (parent/patient)*-reachable test AND a
        // headache medication; select pname.
        let names = texts(
            &doc,
            &vocab,
            "hospital/patient[(parent/patient)*/visit/treatment/test and \
             visit/treatment[medication/text() = 'headache']]/pname",
        );
        // Ann has her own test + headache; Bob has no test; Cat has
        // a descendant-parent test (via parent/patient) + headache.
        assert_eq!(names, vec!["Ann", "Cat"]);
    }

    #[test]
    fn star_includes_zero_iterations() {
        let (vocab, doc) = setup("<a><b/></a>");
        // a/(b)* = {a, b}
        assert_eq!(run(&doc, &vocab, "a/(b)*").len(), 2);
    }
}
