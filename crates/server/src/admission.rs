//! Per-tenant admission control.
//!
//! One engine serves every tenant, so one tenant's burst must not become
//! everyone's latency. Admission happens in the connection reader,
//! *before* a request touches the shared work queue, and is two
//! independent gates per tenant:
//!
//! 1. a **token bucket** bounding sustained request rate (capacity
//!    `burst`, refilled continuously at `rate_per_sec`), and
//! 2. a **max-inflight quota** bounding how much of the worker pool one
//!    tenant can occupy at once (admitted-but-unfinished requests).
//!
//! A request failing either gate gets a [`Busy`](crate::proto::Response)
//! response with a retry-after hint — the connection stays open, nothing
//! is buffered, nothing is silently dropped. Admins are subject to the
//! same mechanism (with a much larger default quota): the control plane
//! should survive an admin script gone wild too.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Admission limits for one tenant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantQuota {
    /// Sustained requests per second (token-bucket refill rate).
    pub rate_per_sec: f64,
    /// Burst capacity (bucket size): requests admitted instantly after an
    /// idle period.
    pub burst: u32,
    /// Maximum admitted-but-unfinished requests at once.
    pub max_inflight: usize,
}

impl TenantQuota {
    /// Effectively unlimited (used as the admin default).
    pub fn unlimited() -> Self {
        TenantQuota {
            rate_per_sec: 1e9,
            burst: u32::MAX,
            max_inflight: usize::MAX,
        }
    }
}

impl Default for TenantQuota {
    fn default() -> Self {
        // Generous enough for interactive use, small enough that a tight
        // client loop hits the bucket within a second.
        TenantQuota {
            rate_per_sec: 500.0,
            burst: 250,
            max_inflight: 64,
        }
    }
}

/// Continuous-refill token bucket. Also used standalone by the server as
/// the per-connection rate cap on inline control ops.
#[derive(Debug)]
pub(crate) struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    /// (available tokens, last refill instant).
    state: Mutex<(f64, Instant)>,
}

impl TokenBucket {
    pub(crate) fn new(quota: &TenantQuota, now: Instant) -> Self {
        TokenBucket {
            rate_per_sec: quota.rate_per_sec,
            burst: quota.burst as f64,
            state: Mutex::new((quota.burst as f64, now)),
        }
    }

    /// Takes one token, or reports how many milliseconds until one
    /// accrues.
    pub(crate) fn try_take(&self, now: Instant) -> Result<(), u32> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let (ref mut tokens, ref mut last) = *state;
        let elapsed = now.saturating_duration_since(*last).as_secs_f64();
        *tokens = (*tokens + elapsed * self.rate_per_sec).min(self.burst);
        *last = now;
        if *tokens >= 1.0 {
            *tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - *tokens;
            let wait_ms = (deficit / self.rate_per_sec * 1000.0).ceil();
            // At least 1ms so a client never busy-spins on a 0 hint.
            Err((wait_ms as u32).max(1))
        }
    }
}

/// One tenant's gates plus its refusal counter.
#[derive(Debug)]
struct TenantGate {
    bucket: TokenBucket,
    max_inflight: usize,
    inflight: AtomicUsize,
    busy_rejections: AtomicU64,
}

/// Engine-wide admission state: tenant key → gate.
pub struct Admission {
    default_quota: TenantQuota,
    admin_quota: TenantQuota,
    overrides: HashMap<String, TenantQuota>,
    gates: RwLock<HashMap<String, Arc<TenantGate>>>,
}

/// RAII inflight slot: dropping it releases the tenant's quota slot, so a
/// worker panic or early return cannot leak capacity.
#[derive(Debug)]
pub struct InflightGuard {
    gate: Arc<TenantGate>,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Why a request was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Refused {
    /// Suggested client backoff in milliseconds.
    pub retry_after_ms: u32,
}

impl Admission {
    /// Admission state with the given default/admin quotas and named
    /// per-tenant overrides.
    pub fn new(
        default_quota: TenantQuota,
        admin_quota: TenantQuota,
        overrides: HashMap<String, TenantQuota>,
    ) -> Self {
        Admission {
            default_quota,
            admin_quota,
            overrides,
            gates: RwLock::new(HashMap::new()),
        }
    }

    fn quota_for(&self, tenant: &str) -> TenantQuota {
        if let Some(q) = self.overrides.get(tenant) {
            return *q;
        }
        if tenant == smoqe::ADMIN_TENANT {
            self.admin_quota
        } else {
            self.default_quota
        }
    }

    fn gate(&self, tenant: &str, now: Instant) -> Arc<TenantGate> {
        if let Some(g) = self
            .gates
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(tenant)
        {
            return g.clone();
        }
        let quota = self.quota_for(tenant);
        self.gates
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .entry(tenant.to_string())
            .or_insert_with(|| {
                Arc::new(TenantGate {
                    bucket: TokenBucket::new(&quota, now),
                    max_inflight: quota.max_inflight,
                    inflight: AtomicUsize::new(0),
                    busy_rejections: AtomicU64::new(0),
                })
            })
            .clone()
    }

    /// Tries to admit one request for `tenant` at `now`.
    ///
    /// On success the returned guard holds the tenant's inflight slot
    /// until dropped. On refusal the tenant's `busy_rejections` counter
    /// is bumped and a retry hint is returned.
    pub fn admit(&self, tenant: &str, now: Instant) -> Result<InflightGuard, Refused> {
        let gate = self.gate(tenant, now);

        // Inflight gate first: it is cheaper and, unlike the bucket, not
        // consumed by the check.
        let mut current = gate.inflight.load(Ordering::Acquire);
        loop {
            if current >= gate.max_inflight {
                gate.busy_rejections.fetch_add(1, Ordering::Relaxed);
                // No token was taken; the sensible retry is "when a slot
                // frees", which we approximate with a short fixed hint.
                return Err(Refused { retry_after_ms: 5 });
            }
            match gate.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }

        match gate.bucket.try_take(now) {
            Ok(()) => Ok(InflightGuard { gate }),
            Err(retry_after_ms) => {
                gate.inflight.fetch_sub(1, Ordering::AcqRel);
                gate.busy_rejections.fetch_add(1, Ordering::Relaxed);
                Err(Refused { retry_after_ms })
            }
        }
    }

    /// `Busy` refusals per tenant so far (for the `Stats` op).
    pub fn busy_counts(&self) -> HashMap<String, u64> {
        self.gates
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, g)| (k.clone(), g.busy_rejections.load(Ordering::Relaxed)))
            .collect()
    }

    /// Total `Busy` refusals across tenants.
    pub fn busy_total(&self) -> u64 {
        self.busy_counts().values().sum()
    }

    /// Admitted-but-unfinished requests across all tenants right now.
    ///
    /// This is the `inflight` stats gauge: every admitted request holds
    /// exactly one slot until its [`InflightGuard`] drops, so a drained,
    /// idle server must report 0 — the zero-leak invariant the chaos
    /// harness asserts after every fault scenario.
    pub fn inflight_total(&self) -> usize {
        self.gates
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|g| g.inflight.load(Ordering::Acquire))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn admission(quota: TenantQuota) -> Admission {
        Admission::new(quota, TenantQuota::unlimited(), HashMap::new())
    }

    #[test]
    fn burst_is_admitted_then_rate_limited() {
        let adm = admission(TenantQuota {
            rate_per_sec: 10.0,
            burst: 3,
            max_inflight: 100,
        });
        let t0 = Instant::now();
        let mut guards = Vec::new();
        for _ in 0..3 {
            guards.push(adm.admit("g", t0).expect("burst admitted"));
        }
        let refused = adm.admit("g", t0).unwrap_err();
        // One token accrues in 100ms at 10/s.
        assert!(refused.retry_after_ms >= 1 && refused.retry_after_ms <= 100);
        // After enough simulated time, tokens are back.
        assert!(adm.admit("g", t0 + Duration::from_millis(150)).is_ok());
        assert_eq!(adm.busy_total(), 1);
    }

    #[test]
    fn inflight_slots_are_released_by_guard_drop() {
        let adm = admission(TenantQuota {
            rate_per_sec: 1e6,
            burst: 1_000_000,
            max_inflight: 2,
        });
        let t0 = Instant::now();
        let g1 = adm.admit("g", t0).unwrap();
        let _g2 = adm.admit("g", t0).unwrap();
        assert_eq!(adm.inflight_total(), 2);
        assert!(adm.admit("g", t0).is_err());
        drop(g1);
        assert_eq!(adm.inflight_total(), 1);
        assert!(adm.admit("g", t0).is_ok());
    }

    #[test]
    fn inflight_total_sums_across_tenants_and_returns_to_zero() {
        let adm = admission(TenantQuota {
            rate_per_sec: 1e6,
            burst: 1_000_000,
            max_inflight: 8,
        });
        let t0 = Instant::now();
        let guards: Vec<_> = ["a", "a", "b", "c"]
            .iter()
            .map(|t| adm.admit(t, t0).unwrap())
            .collect();
        assert_eq!(adm.inflight_total(), 4);
        drop(guards);
        assert_eq!(adm.inflight_total(), 0);
    }

    #[test]
    fn tenants_are_isolated() {
        let adm = admission(TenantQuota {
            rate_per_sec: 1.0,
            burst: 1,
            max_inflight: 1,
        });
        let t0 = Instant::now();
        let _a = adm.admit("a", t0).unwrap();
        assert!(adm.admit("a", t0).is_err());
        // Tenant b is untouched by a's exhaustion.
        assert!(adm.admit("b", t0).is_ok());
    }

    #[test]
    fn refusal_does_not_leak_inflight_slot() {
        // Bucket empty but inflight available: the reserved slot must be
        // returned on refusal.
        let adm = admission(TenantQuota {
            rate_per_sec: 0.001,
            burst: 1,
            max_inflight: 1,
        });
        let t0 = Instant::now();
        let g = adm.admit("g", t0).unwrap();
        drop(g);
        // Token gone, slot free → bucket refusal.
        assert!(adm.admit("g", t0).is_err());
        // Were the slot leaked, this would now fail on inflight instead
        // of the bucket; give the bucket time and it must admit again.
        assert!(adm.admit("g", t0 + Duration::from_secs(2000)).is_ok());
    }
}
