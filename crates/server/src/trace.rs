//! Fixed-capacity request trace ring.
//!
//! Every completed request — served, failed or refused — leaves one
//! [`TraceEntry`] in a bounded ring buffer. The ring is the server's
//! flight recorder: `Stats { include_trace: true }` dumps it over the
//! wire, so "what was the server doing when latency spiked" is answerable
//! after the fact without logging infrastructure. When the ring is full
//! the oldest entry is dropped and a counter keeps the evidence honest.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::context::RequestContext;

/// Outcome record of one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Wire request id.
    pub request_id: u64,
    /// Tenant key of the requester.
    pub tenant: String,
    /// Op byte of the request.
    pub op: u8,
    /// `0` for success, otherwise the error code the client saw
    /// (engine codes `1..=99`, protocol codes `100..`, or
    /// [`BUSY_CODE`](TraceLog::BUSY_CODE) for admission refusals).
    pub code: u16,
    /// Wall time from admission (or inline dispatch) to response — queue
    /// wait included — in microseconds.
    pub micros: u64,
}

struct Ring {
    entries: VecDeque<TraceEntry>,
    dropped: u64,
}

/// Bounded, thread-safe trace ring.
pub struct TraceLog {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl TraceLog {
    /// Pseudo-code recorded for requests refused by admission control
    /// (distinct from every engine and protocol code, which fit in u16's
    /// lower range).
    pub const BUSY_CODE: u16 = 0xFFFF;

    /// Ring holding at most `capacity` entries (0 disables tracing).
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            capacity,
            ring: Mutex::new(Ring {
                entries: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
        }
    }

    /// Records the outcome of `ctx` (`code` 0 = success) after `micros`
    /// of service time.
    pub fn record(&self, ctx: &RequestContext, code: u16, micros: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.entries.len() == self.capacity {
            ring.entries.pop_front();
            ring.dropped += 1;
        }
        ring.entries.push_back(TraceEntry {
            request_id: ctx.request_id,
            tenant: ctx.tenant().to_string(),
            op: ctx.op,
            code,
            micros,
        });
    }

    /// Snapshot of the ring, oldest first, plus the drop counter.
    pub fn dump(&self) -> (Vec<TraceEntry>, u64) {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        (ring.entries.iter().cloned().collect(), ring.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Principal, Request};

    fn ctx(id: u64) -> RequestContext {
        RequestContext::new(id, Principal::Group("g".into()), &Request::Ping)
    }

    #[test]
    fn ring_drops_oldest_and_counts_drops() {
        let log = TraceLog::new(3);
        for id in 1..=5 {
            log.record(&ctx(id), 0, id * 10);
        }
        let (entries, dropped) = log.dump();
        assert_eq!(dropped, 2);
        assert_eq!(
            entries.iter().map(|e| e.request_id).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(entries[0].tenant, "g");
    }

    #[test]
    fn zero_capacity_disables_tracing() {
        let log = TraceLog::new(0);
        log.record(&ctx(1), 0, 1);
        let (entries, dropped) = log.dump();
        assert!(entries.is_empty());
        assert_eq!(dropped, 0);
    }
}
