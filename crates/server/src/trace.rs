//! Fixed-capacity request trace ring.
//!
//! Every completed request — served, failed or refused — leaves one
//! [`TraceEntry`] in a bounded ring buffer. The ring is the server's
//! flight recorder: `Stats { include_trace: true }` dumps it over the
//! wire, so "what was the server doing when latency spiked" is answerable
//! after the fact without logging infrastructure. When the ring is full
//! the oldest entry is dropped and a counter keeps the evidence honest.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::context::RequestContext;

/// Coarse classification of how a request ended, recorded alongside the
/// exact wire code. The classes a wire code cannot distinguish are the
/// point: a deadline that was *shed* from the queue (the query never ran)
/// and one that expired *mid-evaluation* produce byte-identical client
/// frames, but the admin-only trace ring keeps them apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Served successfully.
    Ok,
    /// Failed with an engine or protocol error.
    Error,
    /// Refused by admission control (per-tenant quota or inflight cap).
    Busy,
    /// Deadline expired while the request was evaluating.
    Deadline,
    /// Cooperatively cancelled mid-flight.
    Cancelled,
    /// Deadline had already expired when the request reached the front of
    /// the queue; it was answered without running.
    Shed,
    /// Refused by brownout overload protection.
    Overloaded,
}

impl Outcome {
    /// Stable wire byte (append-only, like error codes).
    pub fn as_u8(self) -> u8 {
        match self {
            Outcome::Ok => 0,
            Outcome::Error => 1,
            Outcome::Busy => 2,
            Outcome::Deadline => 3,
            Outcome::Cancelled => 4,
            Outcome::Shed => 5,
            Outcome::Overloaded => 6,
        }
    }

    /// Inverse of [`Outcome::as_u8`].
    pub fn from_u8(v: u8) -> Option<Outcome> {
        Some(match v {
            0 => Outcome::Ok,
            1 => Outcome::Error,
            2 => Outcome::Busy,
            3 => Outcome::Deadline,
            4 => Outcome::Cancelled,
            5 => Outcome::Shed,
            6 => Outcome::Overloaded,
            _ => return None,
        })
    }

    /// Short stable name (trace dumps, CLI output).
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Error => "error",
            Outcome::Busy => "busy",
            Outcome::Deadline => "deadline",
            Outcome::Cancelled => "cancelled",
            Outcome::Shed => "shed",
            Outcome::Overloaded => "overloaded",
        }
    }
}

/// Outcome record of one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Wire request id.
    pub request_id: u64,
    /// Tenant key of the requester.
    pub tenant: String,
    /// Op byte of the request.
    pub op: u8,
    /// How the request ended (classes the wire code deliberately hides,
    /// e.g. shed vs mid-scan deadline, stay distinct here).
    pub outcome: Outcome,
    /// `0` for success, otherwise the error code the client saw
    /// (engine codes `1..=99`, protocol codes `100..`, or
    /// [`BUSY_CODE`](TraceLog::BUSY_CODE) for admission refusals).
    pub code: u16,
    /// Wall time from admission (or inline dispatch) to response — queue
    /// wait included — in microseconds.
    pub micros: u64,
}

struct Ring {
    entries: VecDeque<TraceEntry>,
    dropped: u64,
}

/// Bounded, thread-safe trace ring.
pub struct TraceLog {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl TraceLog {
    /// Pseudo-code recorded for requests refused by admission control
    /// (distinct from every engine and protocol code, which fit in u16's
    /// lower range).
    pub const BUSY_CODE: u16 = 0xFFFF;

    /// Ring holding at most `capacity` entries (0 disables tracing).
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            capacity,
            ring: Mutex::new(Ring {
                entries: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
        }
    }

    /// Records the outcome of `ctx` (`code` 0 = success) after `micros`
    /// of service time.
    pub fn record(&self, ctx: &RequestContext, outcome: Outcome, code: u16, micros: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.entries.len() == self.capacity {
            ring.entries.pop_front();
            ring.dropped += 1;
        }
        ring.entries.push_back(TraceEntry {
            request_id: ctx.request_id,
            tenant: ctx.tenant().to_string(),
            op: ctx.op,
            outcome,
            code,
            micros,
        });
    }

    /// Snapshot of the ring, oldest first, plus the drop counter.
    pub fn dump(&self) -> (Vec<TraceEntry>, u64) {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        (ring.entries.iter().cloned().collect(), ring.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Principal, Request};

    fn ctx(id: u64) -> RequestContext {
        RequestContext::new(id, Principal::Group("g".into()), &Request::Ping)
    }

    #[test]
    fn ring_drops_oldest_and_counts_drops() {
        let log = TraceLog::new(3);
        for id in 1..=5 {
            log.record(&ctx(id), Outcome::Ok, 0, id * 10);
        }
        let (entries, dropped) = log.dump();
        assert_eq!(dropped, 2);
        assert_eq!(
            entries.iter().map(|e| e.request_id).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(entries[0].tenant, "g");
        assert_eq!(entries[0].outcome, Outcome::Ok);
    }

    #[test]
    fn zero_capacity_disables_tracing() {
        let log = TraceLog::new(0);
        log.record(&ctx(1), Outcome::Ok, 0, 1);
        let (entries, dropped) = log.dump();
        assert!(entries.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn outcome_bytes_roundtrip_and_are_stable() {
        let all = [
            Outcome::Ok,
            Outcome::Error,
            Outcome::Busy,
            Outcome::Deadline,
            Outcome::Cancelled,
            Outcome::Shed,
            Outcome::Overloaded,
        ];
        for (i, o) in all.iter().enumerate() {
            assert_eq!(o.as_u8() as usize, i, "{}", o.name());
            assert_eq!(Outcome::from_u8(o.as_u8()), Some(*o));
        }
        assert_eq!(Outcome::from_u8(200), None);
        // Pinned: renumbering is a wire break for trace consumers.
        assert_eq!(Outcome::Shed.as_u8(), 5);
    }
}
