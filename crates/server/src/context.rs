//! Per-request identity threaded through the serving layer.

use crate::proto::{Principal, Request};

/// Everything the server knows about a request while it is in flight:
/// who asked (`principal`), what they asked for (`op`), and the wire id
/// (`request_id`) the answer must echo.
///
/// A context is built in the connection reader the moment a frame parses,
/// rides through admission control and the work queue with the job, is
/// stamped into the answer's [`EvalStats`](smoqe::hype::EvalStats)
/// (`stats.request_id`) by the worker, and ends as a
/// [`TraceEntry`](crate::trace::TraceEntry) in the trace ring — so one id
/// connects the wire frame, the evaluator counters and the trace dump.
#[derive(Clone, Debug)]
pub struct RequestContext {
    /// Client-chosen request id, echoed on the response frame.
    pub request_id: u64,
    /// The principal of the session issuing the request.
    pub principal: Principal,
    /// Op byte of the request.
    pub op: u8,
}

impl RequestContext {
    /// Context for `request` arriving on a session bound to `principal`.
    pub fn new(request_id: u64, principal: Principal, request: &Request) -> Self {
        RequestContext {
            request_id,
            principal,
            op: request.op(),
        }
    }

    /// The accounting key of the requesting tenant (matches
    /// [`smoqe::ADMIN_TENANT`] for admins, the group name otherwise).
    pub fn tenant(&self) -> &str {
        match &self.principal {
            Principal::Admin => smoqe::ADMIN_TENANT,
            Principal::Group(g) => g.as_str(),
        }
    }
}
