//! Traffic simulation: many concurrent client sessions, mixed load,
//! honest latency numbers.
//!
//! The harness is the serving layer's benchmark *and* its stress test:
//! `smoqe bench-traffic` runs it from the CLI, `tests/server.rs` runs it
//! small to assert quota isolation, and the bench suite runs it against
//! an in-process server to produce the `serving_latency_us` series in
//! BENCH.json.
//!
//! Each session is one real TCP connection on its own thread, bound to a
//! principal at `Hello`, issuing a deterministic pseudo-random mix of
//! single queries, shared-scan batches and (admin sessions only)
//! insert+delete update transactions that leave the document unchanged.
//! Determinism matters: two runs with the same seed issue the same
//! request sequence, so configurations are comparable. `Busy` responses
//! are honored — back off by the server's hint and retry — and counted,
//! because an admission-controlled server's throughput is only
//! meaningful together with its refusal rate.

use std::time::{Duration, Instant};

use crate::client::{Client, ClientError, RetryPolicy};
use crate::proto::Principal;

/// Deterministic per-session request mix generator (xorshift64*).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// What to throw at the server.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Catalog document every session binds to.
    pub document: String,
    /// Concurrent sessions (one thread + one connection each).
    pub sessions: usize,
    /// Requests each session issues.
    pub requests_per_session: usize,
    /// Principals, assigned to sessions round-robin.
    pub principals: Vec<Principal>,
    /// Query pool for single reads (group-safe queries).
    pub read_queries: Vec<String>,
    /// Query pool for shared-scan batches.
    pub batch_queries: Vec<String>,
    /// Queries per batch request.
    pub batch_size: usize,
    /// Percent of requests that are batches.
    pub batch_pct: u64,
    /// Percent of requests that are update transactions. Only admin
    /// sessions write (group writes against the hospital policy would
    /// measure denials, not the update path); group sessions convert the
    /// write share into reads.
    pub write_pct: u64,
    /// Seed for the deterministic mix.
    pub seed: u64,
    /// Retries per request when the server answers `Busy` (each waits
    /// the hinted backoff first).
    pub busy_retries: u32,
    /// Token presented by admin sessions at `Hello`. Needed when the
    /// target server has an `admin_token` configured (i.e. it serves
    /// admins over non-loopback networks).
    pub admin_token: Option<String>,
    /// Per-request deadline every session installs on its client
    /// (`None` = no deadline). Deadline expiries — client- or
    /// server-side — count into the report's `errors` column.
    pub deadline: Option<Duration>,
}

impl TrafficConfig {
    /// A ready-made mixed workload over the hospital document: sessions
    /// alternate admin / researchers, 10% batches, 5% writes.
    pub fn hospital(addr: String, sessions: usize, requests_per_session: usize) -> Self {
        TrafficConfig {
            addr,
            document: "wards".to_string(),
            sessions,
            requests_per_session,
            principals: vec![
                Principal::Admin,
                Principal::Group(smoqe::workloads::hospital::GROUP.to_string()),
            ],
            // Queries valid on both the document and the view keep the
            // pool shared across principals.
            read_queries: vec![
                "hospital/patient".to_string(),
                "//medication".to_string(),
                "hospital/patient/(parent/patient)*/pname".to_string(),
            ],
            batch_queries: vec![
                "hospital/patient".to_string(),
                "//medication".to_string(),
                "//treatment".to_string(),
                "hospital/patient/pname".to_string(),
            ],
            batch_size: 3,
            batch_pct: 10,
            write_pct: 5,
            seed: 0x5A0_0E5,
            busy_retries: 8,
            admin_token: None,
            deadline: None,
        }
    }
}

/// Latency digest of one request population, microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Requests in the population.
    pub count: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Arithmetic mean.
    pub mean_us: u64,
}

impl LatencySummary {
    /// Digests a latency population (sorts in place).
    pub fn from_samples(samples: &mut [u64]) -> LatencySummary {
        samples.sort_unstable();
        let count = samples.len() as u64;
        let mean = if samples.is_empty() {
            0
        } else {
            samples.iter().sum::<u64>() / count
        };
        LatencySummary {
            count,
            p50_us: percentile(samples, 50.0),
            p95_us: percentile(samples, 95.0),
            p99_us: percentile(samples, 99.0),
            mean_us: mean,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0 if empty).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// What happened, in aggregate and per tenant.
#[derive(Clone, Debug, Default)]
pub struct TrafficReport {
    /// All successful requests.
    pub overall: LatencySummary,
    /// Per-tenant digests, sorted by tenant key.
    pub per_tenant: Vec<(String, LatencySummary)>,
    /// Successful requests per second of wall time.
    pub qps: f64,
    /// Wall time of the whole run.
    pub elapsed: Duration,
    /// Successful requests.
    pub ok: u64,
    /// `Busy` responses received (before retries succeeded or gave up).
    pub busy: u64,
    /// Requests that exhausted their busy retries.
    pub starved: u64,
    /// Engine-level errors (error frames with engine codes).
    pub errors: u64,
    /// Protocol or I/O failures — the number the acceptance gate pins at
    /// **zero**: a correct server under overload refuses politely, it
    /// never breaks framing or drops connections.
    pub protocol_errors: u64,
}

enum Op {
    Read(String),
    Batch(Vec<String>),
    Write(Vec<String>),
}

struct SessionOutcome {
    tenant: String,
    latencies: Vec<u64>,
    busy: u64,
    starved: u64,
    errors: u64,
    protocol_errors: u64,
}

/// Runs the configured workload to completion and reports.
///
/// Connection or hello failures surface as `Err` (the run never started
/// meaningfully); per-request failures are *counted*, not returned — a
/// stress run must outlive the failures it is measuring.
pub fn run_traffic(config: &TrafficConfig) -> Result<TrafficReport, ClientError> {
    // Fail fast (and outside the measured window) if the server is not
    // there at all.
    Client::connect(&config.addr)?.ping()?;

    let started = Instant::now();
    let mut handles = Vec::with_capacity(config.sessions);
    for si in 0..config.sessions {
        let config = config.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("traffic-{si}"))
                .spawn(move || run_session(&config, si))
                .expect("spawn traffic session"),
        );
    }

    let mut all = Vec::new();
    let mut per_tenant: std::collections::BTreeMap<String, Vec<u64>> = Default::default();
    let mut report = TrafficReport::default();
    for handle in handles {
        let outcome = match handle.join() {
            Ok(Ok(o)) => o,
            Ok(Err(e)) => return Err(e),
            Err(_) => {
                report.protocol_errors += 1;
                continue;
            }
        };
        report.busy += outcome.busy;
        report.starved += outcome.starved;
        report.errors += outcome.errors;
        report.protocol_errors += outcome.protocol_errors;
        per_tenant
            .entry(outcome.tenant)
            .or_default()
            .extend_from_slice(&outcome.latencies);
        all.extend(outcome.latencies);
    }
    report.elapsed = started.elapsed();
    report.ok = all.len() as u64;
    report.qps = report.ok as f64 / report.elapsed.as_secs_f64().max(1e-9);
    report.overall = LatencySummary::from_samples(&mut all);
    report.per_tenant = per_tenant
        .into_iter()
        .map(|(tenant, mut samples)| (tenant, LatencySummary::from_samples(&mut samples)))
        .collect();
    Ok(report)
}

fn pick_op(config: &TrafficConfig, rng: &mut Rng, admin: bool, si: usize, i: usize) -> Op {
    let roll = rng.below(100);
    if admin && roll < config.write_pct {
        // A self-cancelling transaction with a session-unique name:
        // exercises the full secure-update path (validation, snapshot
        // swap, TAX patch) while keeping the document byte-stable for
        // every other session's assertions.
        let name = format!("w{si}x{i}");
        return Op::Write(vec![
            format!(
                "insert <patient><pname>{name}</pname><visit><treatment>\
                 <test>mri</test></treatment><date>2026-01-01</date></visit>\
                 </patient> into hospital"
            ),
            format!("delete hospital/patient[pname = '{name}']"),
        ]);
    }
    if roll < config.write_pct + config.batch_pct && !config.batch_queries.is_empty() {
        let mut batch = Vec::with_capacity(config.batch_size);
        for _ in 0..config.batch_size.max(1) {
            let q = rng.below(config.batch_queries.len() as u64) as usize;
            batch.push(config.batch_queries[q].clone());
        }
        return Op::Batch(batch);
    }
    let q = rng.below(config.read_queries.len() as u64) as usize;
    Op::Read(config.read_queries[q].clone())
}

fn run_session(config: &TrafficConfig, si: usize) -> Result<SessionOutcome, ClientError> {
    let principal = config.principals[si % config.principals.len().max(1)].clone();
    let mut client = Client::connect(&config.addr)?;
    client.set_timeout(Some(Duration::from_secs(60))).ok();
    client.set_request_deadline(config.deadline);
    // The client's own retry policy absorbs Busy refusals: at least the
    // server's retry_after hint, exponential past it, capped at 100ms so
    // a saturated run still makes progress, jittered per-session so the
    // fleet doesn't stampede the admission gate in lockstep.
    client.set_retry_policy(Some(RetryPolicy {
        max_attempts: config.busy_retries.saturating_add(1),
        base_ms: 2,
        cap_ms: 100,
        seed: config.seed ^ (si as u64).wrapping_mul(0xD134_2543_DE82_EF95),
    }));
    let auth = if principal.is_admin() {
        config.admin_token.as_deref()
    } else {
        None
    };
    let tenant = client.hello_auth(&config.document, principal.clone(), auth)?;

    let mut rng = Rng::new(config.seed ^ (si as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut outcome = SessionOutcome {
        tenant,
        latencies: Vec::with_capacity(config.requests_per_session),
        busy: 0,
        starved: 0,
        errors: 0,
        protocol_errors: 0,
    };

    for i in 0..config.requests_per_session {
        let op = pick_op(config, &mut rng, principal.is_admin(), si, i);
        let retries_before = client.busy_retries();
        let t0 = Instant::now();
        let result = match &op {
            Op::Read(q) => client.query(q).map(drop),
            Op::Batch(qs) => {
                let refs: Vec<&str> = qs.iter().map(String::as_str).collect();
                client.query_batch(&refs).map(drop)
            }
            Op::Write(stmts) => {
                let refs: Vec<&str> = stmts.iter().map(String::as_str).collect();
                client.update_batch(&refs).map(drop)
            }
        };
        // Busy refusals the policy retried through still count, so the
        // report's `busy` column keeps its meaning under the new client.
        outcome.busy += client.busy_retries() - retries_before;
        match result {
            Ok(()) => {
                // Client-perceived completion time, backoff included.
                outcome
                    .latencies
                    .push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            Err(ClientError::Busy { .. }) | Err(ClientError::Overloaded { .. }) => {
                // The policy's attempt budget ran out: starved.
                outcome.busy += 1;
                outcome.starved += 1;
            }
            Err(ClientError::Remote { .. }) | Err(ClientError::DeadlineExceeded) => {
                outcome.errors += 1;
            }
            Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {
                // The connection is gone; the session cannot continue.
                outcome.protocol_errors += 1;
                return Ok(outcome);
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn summary_digests_population() {
        let mut samples = vec![30, 10, 20];
        let s = LatencySummary::from_samples(&mut samples);
        assert_eq!(s.count, 3);
        assert_eq!(s.p50_us, 20);
        assert_eq!(s.mean_us, 20);
        assert_eq!(s.p99_us, 30);
    }

    #[test]
    fn mix_is_deterministic_per_seed() {
        let config = TrafficConfig::hospital("unused".into(), 4, 16);
        let gen = |seed: u64| {
            let mut rng = Rng::new(seed);
            (0..50).map(|_| rng.below(100)).collect::<Vec<_>>()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
        // The hospital mix really does contain writes and batches.
        let mut rng = Rng::new(config.seed);
        let ops: Vec<Op> = (0..200)
            .map(|i| pick_op(&config, &mut rng, true, 0, i))
            .collect();
        assert!(ops.iter().any(|o| matches!(o, Op::Write(_))));
        assert!(ops.iter().any(|o| matches!(o, Op::Batch(_))));
        assert!(ops.iter().any(|o| matches!(o, Op::Read(_))));
    }
}
