//! Blocking client for the SMOQE wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues synchronous
//! request/response roundtrips (request ids still increment, so traces on
//! the server side stay distinguishable). It is deliberately simple — no
//! reconnect, no pooling — but it can retry admission refusals for you:
//! an opt-in [`RetryPolicy`] re-sends a request the server answered with
//! `Busy`, waiting at least the server's `retry_after_ms` hint, with
//! jittered exponential backoff and a bounded attempt count. Retrying a
//! `Busy` is always safe: it means the request was *refused before
//! execution*, never half-done.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::proto::{
    Frame, FrameBuffer, Principal, Request, Response, WireStats, WireUpdateReport,
    DEFAULT_MAX_FRAME_LEN,
};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's bytes did not decode, or the response op did not
    /// match the request.
    Protocol(String),
    /// The server refused the request under admission control; retry
    /// after the hint. The connection remains usable.
    Busy {
        /// Suggested backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The server is in brownout (queue past its high-watermark) and
    /// refused the request before execution; retry after the hint. The
    /// connection remains usable.
    Overloaded {
        /// Suggested backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The caller's [request deadline](Client::set_request_deadline)
    /// elapsed on the client side — before the request could be (re)sent,
    /// or while waiting out a retry backoff. The server may also report
    /// its own expiry; that arrives as [`ClientError::Remote`] with the
    /// `DEADLINE_EXCEEDED` code.
    DeadlineExceeded,
    /// The server answered with an error frame (engine codes `1..=99`,
    /// protocol codes `100..`).
    Remote {
        /// Stable error code.
        code: u16,
        /// Display text.
        message: String,
    },
}

impl ClientError {
    /// The remote error code, if this is a remote failure.
    pub fn code(&self) -> Option<u16> {
        match self {
            ClientError::Remote { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy; retry after {retry_after_ms}ms")
            }
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms}ms")
            }
            ClientError::DeadlineExceeded => {
                write!(f, "request deadline exceeded before a response arrived")
            }
            ClientError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The wire answer type a query returns (admin: raw ids + full stats;
/// group: masked — see [`crate::proto::WireAnswer`]).
pub use crate::proto::WireAnswer as RemoteAnswer;

/// Opt-in retry behavior for `Busy` (admission-refused) responses.
///
/// The wait before attempt `n` is the larger of the server's
/// `retry_after_ms` hint and `base_ms * 2^(n-1)`, capped at `cap_ms`,
/// then jittered down by up to half (a deterministic xorshift stream
/// seeded per client, so runs are reproducible and a fleet of retrying
/// clients does not stampede in lockstep).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (minimum 1).
    pub max_attempts: u32,
    /// First-retry backoff in milliseconds (doubles per attempt).
    pub base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub cap_ms: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_ms: 5,
            cap_ms: 500,
            seed: 0x5EED_CAFE,
        }
    }
}

impl RetryPolicy {
    /// The jittered wait before retry number `attempt` (1-based), given
    /// the server's hint.
    fn backoff_ms(&self, attempt: u32, hint_ms: u32, jitter: &mut u64) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
        let full = u64::from(hint_ms).max(exp).min(self.cap_ms.max(1));
        // Jitter into [ceil(full/2), full].
        let half = full / 2;
        full - xorshift(jitter) % (half + 1)
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = state.wrapping_add(0x9E37_79B9_7F4A_7C15).max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A blocking connection to a SMOQE server.
pub struct Client {
    stream: TcpStream,
    fb: FrameBuffer,
    next_id: u64,
    buf: Vec<u8>,
    retry: Option<RetryPolicy>,
    jitter: u64,
    busy_retries: u64,
    request_deadline: Option<Duration>,
}

impl Client {
    /// Connects (no session yet — call [`hello`](Client::hello)).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            fb: FrameBuffer::new(),
            next_id: 0,
            buf: vec![0u8; 64 * 1024],
            retry: None,
            jitter: 0,
            busy_retries: 0,
            request_deadline: None,
        })
    }

    /// Caps how long a single socket operation may block — reads *and*
    /// writes: a server that stops draining its receive buffer must not
    /// wedge the client any more than the reverse.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Sets (or, with `None`, clears) a per-request deadline.
    ///
    /// Each subsequent engine op carries the *remaining* budget as its
    /// wire `deadline_ms` — recomputed per retry attempt, so the server
    /// sees how much time the caller actually has left, not the original
    /// allowance. The retry loop never sleeps past the deadline: a
    /// backoff that would overshoot returns
    /// [`ClientError::DeadlineExceeded`] instead of retrying.
    pub fn set_request_deadline(&mut self, deadline: Option<Duration>) {
        self.request_deadline = deadline;
    }

    /// Enables (or, with `None`, disables) transparent retry of `Busy`
    /// responses. The jitter stream is reseeded from the policy.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.jitter = policy.map_or(0, |p| p.seed);
        self.retry = policy;
    }

    /// How many `Busy` responses the retry policy has absorbed (each
    /// retried attempt counts once; a final `Busy` that exhausts the
    /// policy is returned to the caller and *not* counted here).
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    /// Sends `request` and returns the raw response frame, uninterpreted.
    ///
    /// This is the byte-level escape hatch the security tests use: two
    /// denials are only *provably* indistinguishable if the raw frames
    /// (op + payload) compare equal.
    pub fn request_raw(&mut self, request: &Request) -> Result<Frame, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let bytes = request
            .try_encode(id)
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        self.stream.write_all(&bytes)?;
        loop {
            if let Some(frame) = self
                .fb
                .next_frame(DEFAULT_MAX_FRAME_LEN)
                .map_err(|e| ClientError::Protocol(e.to_string()))?
            {
                if frame.request_id != id {
                    return Err(ClientError::Protocol(format!(
                        "response for request {} while awaiting {}",
                        frame.request_id, id
                    )));
                }
                return Ok(frame);
            }
            let n = self.stream.read(&mut self.buf)?;
            if n == 0 {
                return Err(ClientError::Protocol(
                    "connection closed mid-response".to_string(),
                ));
            }
            self.fb.push(&self.buf[..n]);
        }
    }

    /// Sends `request` and decodes the response, mapping
    /// `Busy`/`Overloaded`/`Error` frames to their error variants. With a
    /// [`RetryPolicy`] installed, `Busy` and `Overloaded` responses are
    /// retried in place (either refusal happened before execution, so a
    /// re-send cannot double-apply) until the policy's attempt budget —
    /// or the [request deadline](Client::set_request_deadline) — runs
    /// out.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let deadline = self.request_deadline.map(|d| Instant::now() + d);
        let mut attempt = 1u32;
        loop {
            let frame = match deadline {
                Some(deadline) => {
                    // Stamp this attempt with the budget actually left.
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(ClientError::DeadlineExceeded);
                    }
                    let ms = remaining.as_millis().min(u128::from(u32::MAX)).max(1) as u32;
                    let mut stamped = request.clone();
                    stamped.set_deadline_ms(ms);
                    self.request_raw(&stamped)?
                }
                None => self.request_raw(request)?,
            };
            let response = Response::decode(frame.op, &frame.payload)
                .map_err(|e| ClientError::Protocol(e.to_string()))?;
            let (retry_after_ms, exhausted): (u32, fn(u32) -> ClientError) = match response {
                Response::Busy { retry_after_ms } => (retry_after_ms, |ms| ClientError::Busy {
                    retry_after_ms: ms,
                }),
                Response::Overloaded { retry_after_ms } => (retry_after_ms, |ms| {
                    ClientError::Overloaded { retry_after_ms: ms }
                }),
                Response::Error { code, message } => {
                    return Err(ClientError::Remote { code, message })
                }
                other => return Ok(other),
            };
            match self.retry {
                Some(policy) if attempt < policy.max_attempts => {
                    let wait = policy.backoff_ms(attempt, retry_after_ms, &mut self.jitter);
                    // Never sleep past the caller's deadline: if the
                    // backoff would overshoot, the retry could not be
                    // answered in time anyway.
                    if let Some(deadline) = deadline {
                        let remaining = deadline.saturating_duration_since(Instant::now());
                        if Duration::from_millis(wait) >= remaining {
                            return Err(ClientError::DeadlineExceeded);
                        }
                    }
                    self.busy_retries += 1;
                    std::thread::sleep(Duration::from_millis(wait));
                    attempt += 1;
                }
                _ => return Err(exhausted(retry_after_ms)),
            }
        }
    }

    /// Binds this connection to `document` as `principal` with no
    /// credential; returns the tenant key the session is accounted
    /// under. Sufficient for group principals without a configured
    /// token, and for admin principals connecting over loopback to a
    /// server without an admin token.
    pub fn hello(&mut self, document: &str, principal: Principal) -> Result<String, ClientError> {
        self.hello_auth(document, principal, None)
    }

    /// Binds this connection like [`hello`](Client::hello), presenting
    /// `auth` where the server requires a token for the principal.
    pub fn hello_auth(
        &mut self,
        document: &str,
        principal: Principal,
        auth: Option<&str>,
    ) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Hello {
            document: document.to_string(),
            principal,
            auth: auth.map(str::to_string),
        })? {
            Response::HelloOk { tenant } => Ok(tenant),
            other => Err(unexpected(&other)),
        }
    }

    /// Evaluates one query.
    pub fn query(&mut self, query: &str) -> Result<RemoteAnswer, ClientError> {
        match self.roundtrip(&Request::Query {
            query: query.to_string(),
            deadline_ms: 0,
        })? {
            Response::AnswerOk(a) => Ok(a),
            other => Err(unexpected(&other)),
        }
    }

    /// Evaluates a batch; returns per-query answers plus the shared-scan
    /// event count (0 for group principals).
    pub fn query_batch(
        &mut self,
        queries: &[&str],
    ) -> Result<(Vec<RemoteAnswer>, u64), ClientError> {
        match self.roundtrip(&Request::QueryBatch {
            queries: queries.iter().map(|q| q.to_string()).collect(),
            deadline_ms: 0,
        })? {
            Response::BatchOk { answers, events } => Ok((answers, events)),
            other => Err(unexpected(&other)),
        }
    }

    /// Applies one update statement.
    pub fn update(&mut self, statement: &str) -> Result<WireUpdateReport, ClientError> {
        match self.roundtrip(&Request::Update {
            statement: statement.to_string(),
            deadline_ms: 0,
        })? {
            Response::UpdateOk(r) => Ok(r),
            other => Err(unexpected(&other)),
        }
    }

    /// Applies a batch of update statements as one transaction.
    pub fn update_batch(
        &mut self,
        statements: &[&str],
    ) -> Result<Vec<WireUpdateReport>, ClientError> {
        match self.roundtrip(&Request::UpdateBatch {
            statements: statements.iter().map(|s| s.to_string()).collect(),
            deadline_ms: 0,
        })? {
            Response::UpdateBatchOk(reports) => Ok(reports),
            other => Err(unexpected(&other)),
        }
    }

    /// Loads a document into the server's catalog (admin sessions only).
    pub fn open_document(
        &mut self,
        name: &str,
        dtd: Option<&str>,
        xml: Option<&str>,
        policies: &[(&str, &str)],
    ) -> Result<(), ClientError> {
        match self.roundtrip(&Request::OpenDocument {
            name: name.to_string(),
            dtd: dtd.map(str::to_string),
            xml: xml.map(str::to_string),
            policies: policies
                .iter()
                .map(|(g, p)| (g.to_string(), p.to_string()))
                .collect(),
        })? {
            Response::OpenOk => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches server/engine statistics (the trace ring is included only
    /// for admin sessions asking for it).
    pub fn stats(&mut self, include_trace: bool) -> Result<WireStats, ClientError> {
        match self.roundtrip(&Request::Stats { include_trace })? {
            Response::StatsOk(s) => Ok(*s),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to drain (admin sessions only).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(response: &Response) -> ClientError {
    ClientError::Protocol(format!("unexpected response op 0x{:02x}", response.op()))
}
