//! # smoqe-server — the SMOQE network serving layer
//!
//! Seven PRs built an engine that is `Send + Sync`, lock-free during
//! evaluation, compiled-plan-cached and jump-scan-accelerated — but only
//! reachable in-process. This crate puts it on a socket:
//!
//! * [`proto`] — a versioned, length-prefixed binary frame protocol
//!   (`Hello`, `Query`, `QueryBatch`, `Update`, `UpdateBatch`,
//!   `OpenDocument`, `Stats`, `Ping`, `Shutdown`) with a hand-rolled
//!   codec (the workspace is offline; there is no serde). Engine errors
//!   cross the wire as stable numeric codes + display text; the opaque
//!   [`UpdateDenied`](smoqe::EngineError::UpdateDenied) denial stays
//!   **byte-identical** whatever its cause.
//! * [`server`] — a `std::net` thread server multiplexing N connections
//!   onto one shared [`Engine`](smoqe::Engine): sessions bind at `Hello`,
//!   every read hits the shared plan cache and `Arc` snapshots, requests
//!   flow through a **bounded** global work queue, and shutdown drains
//!   in-flight work before closing.
//! * [`admission`] — per-tenant token buckets and max-inflight quotas;
//!   over-quota requests get a `Busy` response carrying a retry-after
//!   hint, never a disconnect and never an unbounded buffer.
//! * [`trace`] — a fixed-capacity ring buffer of per-request
//!   [`RequestContext`](context::RequestContext) outcomes, dumpable over
//!   the wire via the `Stats` op: debugging a busy server is grep, not
//!   guesswork.
//! * [`client`] — the blocking client library the CLI, tests and the
//!   traffic harness use.
//! * [`traffic`] — a traffic-simulation harness driving hundreds of
//!   concurrent mixed read/write sessions against a live server and
//!   reporting p50/p95/p99 latency and QPS (the `serving_latency_us`
//!   series of BENCH.json).
//! * [`chaos`] — a socket-level fault-injection proxy (stalls, byte
//!   dribble, torn writes, abrupt disconnects) with seeded, reproducible
//!   schedules; `tests/chaos.rs` uses it to prove the deadline /
//!   cancellation / shedding machinery leaks no slots or queue entries
//!   under network failure.
//!
//! ## Security over the wire
//!
//! The in-process invariant — a group session learns nothing beyond its
//! view, even from errors — must survive serialization. Concretely:
//! answer XML is always the **view image** for group principals (the
//! server runs [`Session::query_serialized`](smoqe::engine::Session));
//! raw source node ids, evaluator counters that span hidden regions, the
//! execution mode, and shared-scan event counts are masked from group
//! responses (see [`proto::WireAnswer`]); and denial responses are
//! byte-identical between hidden and non-existent targets.
//!
//! Principals are *claims* until `Hello` authenticates them: admin
//! sessions need the configured admin token (loopback peers only when
//! none is set), groups may require per-group tokens, and group names
//! must be bare identifiers so no client can alias the admin tenant's
//! accounting key. All refusals share one `UNAUTHORIZED` frame — wrong
//! token and wrong peer are indistinguishable on the wire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod chaos;
pub mod client;
pub mod context;
pub mod proto;
pub mod queue;
pub mod server;
pub mod trace;
pub mod traffic;

pub use admission::TenantQuota;
pub use chaos::{seeded_schedule, ChaosProxy, Fault};
pub use client::{Client, ClientError, RemoteAnswer, RetryPolicy};
pub use context::RequestContext;
pub use proto::Principal;
pub use server::{RecoveryGate, Server, ServerConfig, ServerHandle};
pub use traffic::{percentile, run_traffic, TrafficConfig, TrafficReport};
