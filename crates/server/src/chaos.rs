//! Socket-level network-fault injection: a chaos proxy.
//!
//! The serving layer's failure story — cooperative cancellation, queue
//! shedding, slow-client drops, admission-slot release — only counts if
//! it holds against *real* socket misbehavior, not just clean closes. The
//! [`ChaosProxy`] sits between clients and a live server and injects the
//! faults TCP actually produces in the wild:
//!
//! * **stall mid-frame** — a request freezes halfway through its bytes,
//!   then resumes (a client behind a congested path);
//! * **dribble** — bytes arrive one at a time (frame-reassembly stress);
//! * **torn write** — the connection dies partway through a request
//!   frame (the byte stream ends at an arbitrary boundary);
//! * **abrupt disconnect** — the connection dies partway through a
//!   *response* (the client vanishes while a worker is writing to it).
//!
//! Faults are assigned per connection from an explicit schedule or from a
//! [`seeded_schedule`] (xorshift64*, same family as the traffic
//! harness), so a chaos run is reproducible from its seed. The proxy
//! never interprets frames — it counts raw bytes, which is exactly how a
//! hostile network would cut them.
//!
//! `tests/chaos.rs` drives a traffic mix through the proxy and then
//! asserts the server's zero-leak invariants: `inflight` back to 0,
//! queue empty, and a healthy direct connection with bounded latency.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One fault mode, applied to a single proxied connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Forward both directions untouched (the control group — a chaos
    /// run should always mix healthy connections in, so "unaffected
    /// traffic stays unaffected" is testable).
    Forward,
    /// Forward `after` client→server bytes, then freeze that direction
    /// for `stall_ms`, then resume. With `after` inside a frame this
    /// holds the server's `FrameBuffer` on a partial frame.
    StallMidFrame {
        /// Client bytes forwarded before the stall.
        after: usize,
        /// Stall length in milliseconds.
        stall_ms: u64,
    },
    /// Deliver client→server bytes one byte per write, pausing `gap_ms`
    /// between bytes (0 = back-to-back one-byte writes).
    Dribble {
        /// Pause between bytes in milliseconds.
        gap_ms: u64,
    },
    /// Forward `after` client→server bytes, then sever both directions:
    /// the server sees a request frame torn at an arbitrary byte.
    TearWrite {
        /// Client bytes forwarded before the cut.
        after: usize,
    },
    /// Sever both directions after `after` server→client bytes: the
    /// client vanishes while its response is in flight.
    Disconnect {
        /// Response bytes delivered before the cut.
        after: usize,
    },
}

/// A reproducible per-connection fault schedule: connection `i` (in
/// accept order) gets `schedule[i % len]`. Generated from `seed` with
/// xorshift64* so two runs with the same seed inject identical faults.
///
/// The mix leans on the disruptive modes but always includes healthy
/// connections, and picks cut points inside the frame header / small
/// payloads (every request frame is at least 14 bytes on the wire).
pub fn seeded_schedule(seed: u64, len: usize) -> Vec<Fault> {
    let mut state = seed.max(1);
    let mut next = move || {
        let mut x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..len)
        .map(|_| match next() % 5 {
            0 => Fault::Forward,
            1 => Fault::StallMidFrame {
                after: 1 + (next() % 40) as usize,
                stall_ms: 20 + next() % 60,
            },
            2 => Fault::Dribble { gap_ms: next() % 2 },
            3 => Fault::TearWrite {
                after: 1 + (next() % 40) as usize,
            },
            _ => Fault::Disconnect {
                after: 1 + (next() % 200) as usize,
            },
        })
        .collect()
}

/// What one pump thread does to the byte stream it forwards.
#[derive(Clone, Copy, Debug)]
enum PumpFault {
    Forward,
    Stall { after: usize, stall_ms: u64 },
    Dribble { gap_ms: u64 },
    Tear { after: usize },
}

impl Fault {
    /// Splits a connection fault into its two directional halves.
    fn pump_faults(self) -> (PumpFault, PumpFault) {
        match self {
            Fault::Forward => (PumpFault::Forward, PumpFault::Forward),
            Fault::StallMidFrame { after, stall_ms } => {
                (PumpFault::Stall { after, stall_ms }, PumpFault::Forward)
            }
            Fault::Dribble { gap_ms } => (PumpFault::Dribble { gap_ms }, PumpFault::Forward),
            Fault::TearWrite { after } => (PumpFault::Tear { after }, PumpFault::Forward),
            Fault::Disconnect { after } => (PumpFault::Forward, PumpFault::Tear { after }),
        }
    }
}

/// A running fault-injection proxy in front of one upstream server.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    connections: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and proxies every accepted
    /// connection to `upstream`, applying `schedule[i % len]` to the
    /// `i`-th connection. An empty schedule forwards everything.
    pub fn start(upstream: SocketAddr, schedule: Vec<Fault>) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let pumps: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let connections = Arc::new(AtomicU64::new(0));
        let accept = {
            let stop = stop.clone();
            let pumps = pumps.clone();
            let connections = connections.clone();
            std::thread::Builder::new()
                .name("chaos-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(client) = stream else { continue };
                        let Ok(server) = TcpStream::connect(upstream) else {
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        };
                        let i = connections.fetch_add(1, Ordering::AcqRel) as usize;
                        let fault = if schedule.is_empty() {
                            Fault::Forward
                        } else {
                            schedule[i % schedule.len()]
                        };
                        let (c2s, s2c) = fault.pump_faults();
                        let mut guard = pumps.lock().unwrap_or_else(|e| e.into_inner());
                        guard.retain(|h| !h.is_finished());
                        for (from, to, dir_fault, name) in [
                            (client.try_clone(), server.try_clone(), c2s, "c2s"),
                            (Ok(server), Ok(client), s2c, "s2c"),
                        ] {
                            let (Ok(from), Ok(to)) = (from, to) else {
                                continue;
                            };
                            let stop = stop.clone();
                            if let Ok(h) = std::thread::Builder::new()
                                .name(format!("chaos-{name}-{i}"))
                                .spawn(move || pump(from, to, dir_fault, &stop))
                            {
                                guard.push(h);
                            }
                        }
                    }
                })?
        };
        Ok(ChaosProxy {
            addr,
            stop,
            accept: Some(accept),
            pumps,
            connections,
        })
    }

    /// The proxy's listen address (point clients here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Acquire)
    }

    /// Stops accepting, severs all proxied connections, joins threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Pop the acceptor out of accept() (same trick as the server).
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let pumps = std::mem::take(&mut *self.pumps.lock().unwrap_or_else(|e| e.into_inner()));
        for p in pumps {
            let _ = p.join();
        }
    }
}

/// Sleeps `ms` in short slices, bailing out early when `stop` flips — a
/// stalled connection must not hold proxy shutdown hostage.
fn interruptible_sleep(ms: u64, stop: &AtomicBool) {
    let mut left = ms;
    while left > 0 && !stop.load(Ordering::Acquire) {
        let slice = left.min(10);
        std::thread::sleep(Duration::from_millis(slice));
        left -= slice;
    }
}

/// Forwards bytes `from` → `to` under one directional fault until either
/// side drops, the fault severs the stream, or the proxy stops. Always
/// shuts both sockets down on exit so the peer threads unblock too.
fn pump(mut from: TcpStream, mut to: TcpStream, fault: PumpFault, stop: &AtomicBool) {
    // The read timeout doubles as the stop-poll tick.
    let _ = from.set_read_timeout(Some(Duration::from_millis(25)));
    let mut buf = [0u8; 16 * 1024];
    let mut forwarded = 0usize;
    let mut stalled = false;
    'pump: while !stop.load(Ordering::Acquire) {
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        };
        let chunk = &buf[..n];
        let ok = match fault {
            PumpFault::Forward => to.write_all(chunk).is_ok(),
            PumpFault::Stall { after, stall_ms } => {
                if !stalled && forwarded + n > after {
                    let head = after.saturating_sub(forwarded);
                    if to.write_all(&chunk[..head]).is_err() {
                        break;
                    }
                    interruptible_sleep(stall_ms, stop);
                    stalled = true;
                    to.write_all(&chunk[head..]).is_ok()
                } else {
                    to.write_all(chunk).is_ok()
                }
            }
            PumpFault::Dribble { gap_ms } => {
                for byte in chunk {
                    if stop.load(Ordering::Acquire) || to.write_all(&[*byte]).is_err() {
                        break 'pump;
                    }
                    if gap_ms > 0 {
                        interruptible_sleep(gap_ms, stop);
                    }
                }
                true
            }
            PumpFault::Tear { after } => {
                let head = (after.saturating_sub(forwarded)).min(n);
                let _ = to.write_all(&chunk[..head]);
                forwarded += head;
                if forwarded >= after {
                    break; // sever both sides below
                }
                true
            }
        };
        if !ok {
            break;
        }
        if !matches!(fault, PumpFault::Tear { .. }) {
            forwarded += n;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedules_are_reproducible_and_mixed() {
        let a = seeded_schedule(0xC0FFEE, 64);
        let b = seeded_schedule(0xC0FFEE, 64);
        assert_eq!(a, b);
        assert_ne!(a, seeded_schedule(0xBEEF, 64));
        // All five modes show up in a schedule of this size.
        assert!(a.iter().any(|f| matches!(f, Fault::Forward)));
        assert!(a.iter().any(|f| matches!(f, Fault::StallMidFrame { .. })));
        assert!(a.iter().any(|f| matches!(f, Fault::Dribble { .. })));
        assert!(a.iter().any(|f| matches!(f, Fault::TearWrite { .. })));
        assert!(a.iter().any(|f| matches!(f, Fault::Disconnect { .. })));
    }

    #[test]
    fn forward_proxy_is_transparent() {
        // An echo upstream: whatever arrives goes back verbatim.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 256];
            loop {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
        });

        let proxy = ChaosProxy::start(upstream_addr, vec![Fault::Forward]).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"hello through the storm").unwrap();
        let mut got = [0u8; 23];
        c.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello through the storm");
        assert_eq!(proxy.connections(), 1);

        drop(c);
        proxy.shutdown();
        echo.join().unwrap();
    }

    #[test]
    fn tear_write_cuts_at_the_configured_byte() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let count = std::thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut total = 0usize;
            let mut buf = [0u8; 256];
            loop {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => total += n,
                }
            }
            total
        });

        let proxy = ChaosProxy::start(upstream_addr, vec![Fault::TearWrite { after: 5 }]).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.write_all(b"0123456789").unwrap();
        // The upstream sees exactly 5 bytes, then EOF.
        assert_eq!(count.join().unwrap(), 5);
        proxy.shutdown();
    }
}
