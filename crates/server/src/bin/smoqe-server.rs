//! `smoqe-server` — run a SMOQE engine behind a TCP socket.
//!
//! ```text
//! smoqe-server serve [--addr HOST:PORT] [--workers N] [--queue N]
//!                    [--document NAME] [--dtd FILE --doc FILE]
//!                    [--policy FILE --group NAME]
//!                    [--rate R] [--burst B] [--inflight N] [--trace N]
//!                    [--admin-token T] [--group-token T]
//! ```
//!
//! With `--dtd`/`--doc` the named document (default `wards`) is loaded
//! from files, optionally registering `--policy` for `--group`; without
//! them the built-in hospital sample is installed, so
//! `smoqe-server serve` alone yields a working multi-tenant server that
//! `smoqe bench-traffic --addr ...` (or any wire client) can talk to.
//!
//! `--rate`/`--burst`/`--inflight` set the default per-tenant admission
//! quota (token-bucket rate, bucket size, max concurrent requests).
//!
//! `--admin-token` sets the credential admin sessions must present at
//! `Hello`; without it, admin sessions are accepted **only from loopback
//! peers** — set it whenever `--addr` binds a non-loopback interface and
//! remote admins are wanted. `--group-token` (paired with `--group`)
//! requires the same of that group's sessions.
//!
//! The process runs until an admin session sends the wire `Shutdown` op,
//! which drains gracefully: queued work completes, then the process
//! exits 0.

use std::process::ExitCode;

use smoqe::Engine;
use smoqe_server::{Server, ServerConfig, TenantQuota};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Args {
    flags: std::collections::HashMap<String, String>,
}

fn parse_args(raw: &[String]) -> Args {
    let mut flags = std::collections::HashMap::new();
    let mut i = 0;
    while i < raw.len() {
        if let Some(name) = raw[i].strip_prefix("--") {
            if i + 1 < raw.len() {
                flags.insert(name.to_string(), raw[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    Args { flags }
}

fn parsed<T: std::str::FromStr>(
    args: &Args,
    name: &str,
    default: T,
) -> Result<T, Box<dyn std::error::Error>>
where
    T::Err: std::error::Error + 'static,
{
    match args.flags.get(name) {
        Some(s) => Ok(s.parse()?),
        None => Ok(default),
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("serve") => serve(&parse_args(&raw[1..])),
        Some("help") | Some("--help") | Some("-h") | None => {
            eprintln!(
                "smoqe-server - SMOQE network serving layer\n\
                 \n\
                 usage: smoqe-server serve [--addr HOST:PORT] [--workers N] [--queue N]\n\
                 \u{20}                         [--document NAME] [--dtd FILE --doc FILE]\n\
                 \u{20}                         [--policy FILE --group NAME]\n\
                 \u{20}                         [--rate R] [--burst B] [--inflight N] [--trace N]\n\
                 \u{20}                         [--admin-token T] [--group-token T]\n\
                 \n\
                 Without --dtd/--doc, serves the built-in hospital sample (document\n\
                 'wards', group 'researchers'). Without --admin-token, admin sessions\n\
                 are accepted from loopback peers only. Shut down with the wire\n\
                 Shutdown op (admin sessions only), e.g. the client library's\n\
                 shutdown()."
            );
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try `smoqe-server help`)").into()),
    }
}

fn serve(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::with_defaults();
    let name = args
        .flags
        .get("document")
        .cloned()
        .unwrap_or_else(|| "wards".to_string());
    let doc = engine.open_document(&name);
    let mut served_group = smoqe::workloads::hospital::GROUP.to_string();
    match (args.flags.get("dtd"), args.flags.get("doc")) {
        (Some(dtd), Some(doc_file)) => {
            doc.load_dtd(&std::fs::read_to_string(dtd)?)?;
            doc.load_document_file(doc_file)?;
            if let Some(policy) = args.flags.get("policy") {
                let group = args
                    .flags
                    .get("group")
                    .cloned()
                    .unwrap_or_else(|| "users".to_string());
                doc.register_policy(&group, &std::fs::read_to_string(policy)?)?;
                served_group = group;
            }
        }
        (None, None) => {
            smoqe::workloads::hospital::install_sample(&doc)?;
        }
        _ => return Err("--dtd and --doc must be given together".into()),
    }

    let defaults = ServerConfig::default();
    let default_quota = TenantQuota {
        rate_per_sec: parsed(args, "rate", defaults.default_quota.rate_per_sec)?,
        burst: parsed(args, "burst", defaults.default_quota.burst)?,
        max_inflight: parsed(args, "inflight", defaults.default_quota.max_inflight)?,
    };
    let mut group_tokens = std::collections::HashMap::new();
    if let Some(token) = args.flags.get("group-token") {
        group_tokens.insert(served_group, token.clone());
    }
    let config = ServerConfig {
        addr: args
            .flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7464".to_string()),
        workers: parsed(args, "workers", defaults.workers)?,
        queue_capacity: parsed(args, "queue", defaults.queue_capacity)?,
        trace_capacity: parsed(args, "trace", defaults.trace_capacity)?,
        default_quota,
        admin_token: args.flags.get("admin-token").cloned(),
        group_tokens,
        ..defaults
    };

    let handle = Server::start(engine, config)?;
    // Flushed line with the final address (port 0 resolves here) so
    // scripts — CI's smoke test included — can scrape it.
    println!("listening on {}", handle.local_addr());
    handle.join();
    eprintln!("drained; goodbye");
    Ok(())
}
