//! `smoqe-server` — run a SMOQE engine behind a TCP socket.
//!
//! ```text
//! smoqe-server serve [--addr HOST:PORT] [--workers N] [--queue N]
//!                    [--data-dir DIR]
//!                    [--document NAME] [--dtd FILE --doc FILE]
//!                    [--policy FILE --group NAME]
//!                    [--rate R] [--burst B] [--inflight N] [--trace N]
//!                    [--admin-token T] [--group-token T]
//! ```
//!
//! With `--dtd`/`--doc` the named document (default `wards`) is loaded
//! from files, optionally registering `--policy` for `--group`; without
//! them the built-in hospital sample is installed, so
//! `smoqe-server serve` alone yields a working multi-tenant server that
//! `smoqe bench-traffic --addr ...` (or any wire client) can talk to.
//!
//! `--data-dir` makes the engine durable: a write-ahead log and
//! checkpoints live in DIR, the catalog is recovered from them on boot
//! (the socket answers `RECOVERING` error frames while replay runs), and
//! a final checkpoint is taken on graceful drain. If the recovered
//! catalog already holds `--document`, the `--dtd`/`--doc` files and the
//! built-in sample are *not* re-loaded over it.
//!
//! `--rate`/`--burst`/`--inflight` set the default per-tenant admission
//! quota (token-bucket rate, bucket size, max concurrent requests).
//!
//! `--admin-token` sets the credential admin sessions must present at
//! `Hello`; without it, admin sessions are accepted **only from loopback
//! peers** — set it whenever `--addr` binds a non-loopback interface and
//! remote admins are wanted. `--group-token` (paired with `--group`)
//! requires the same of that group's sessions.
//!
//! The process runs until an admin session sends the wire `Shutdown` op,
//! which drains gracefully: queued work completes, then the process
//! exits 0.

use std::process::ExitCode;

use smoqe::{Engine, EngineConfig};
use smoqe_server::{RecoveryGate, Server, ServerConfig, TenantQuota};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Args {
    flags: std::collections::HashMap<String, String>,
}

fn parse_args(raw: &[String]) -> Args {
    let mut flags = std::collections::HashMap::new();
    let mut i = 0;
    while i < raw.len() {
        if let Some(name) = raw[i].strip_prefix("--") {
            if i + 1 < raw.len() {
                flags.insert(name.to_string(), raw[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    Args { flags }
}

fn parsed<T: std::str::FromStr>(
    args: &Args,
    name: &str,
    default: T,
) -> Result<T, Box<dyn std::error::Error>>
where
    T::Err: std::error::Error + 'static,
{
    match args.flags.get(name) {
        Some(s) => Ok(s.parse()?),
        None => Ok(default),
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("serve") => serve(&parse_args(&raw[1..])),
        Some("help") | Some("--help") | Some("-h") | None => {
            eprintln!(
                "smoqe-server - SMOQE network serving layer\n\
                 \n\
                 usage: smoqe-server serve [--addr HOST:PORT] [--workers N] [--queue N]\n\
                 \u{20}                         [--data-dir DIR]\n\
                 \u{20}                         [--document NAME] [--dtd FILE --doc FILE]\n\
                 \u{20}                         [--policy FILE --group NAME]\n\
                 \u{20}                         [--rate R] [--burst B] [--inflight N] [--trace N]\n\
                 \u{20}                         [--admin-token T] [--group-token T]\n\
                 \n\
                 With --data-dir, mutations are write-ahead logged to DIR and the\n\
                 catalog is recovered from it on boot (crash-safe restarts).\n\
                 Without --dtd/--doc, serves the built-in hospital sample (document\n\
                 'wards', group 'researchers'). Without --admin-token, admin sessions\n\
                 are accepted from loopback peers only. Shut down with the wire\n\
                 Shutdown op (admin sessions only), e.g. the client library's\n\
                 shutdown()."
            );
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try `smoqe-server help`)").into()),
    }
}

fn serve(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    // Bind before recovery so restarting clients reach a socket that
    // answers RECOVERING instead of connection-refused.
    let addr = args
        .flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7464".to_string());
    let listener = std::net::TcpListener::bind(&addr)?;

    let engine = match args.flags.get("data-dir") {
        Some(dir) => {
            // The gate shares the server's write-timeout policy (the
            // serving config is assembled below with the same default).
            let gate = RecoveryGate::start_with(&listener, ServerConfig::default().write_timeout)?;
            let engine = Engine::recover(EngineConfig::default(), std::path::Path::new(dir))?;
            gate.finish();
            if engine.recovery_epoch() > 0 {
                eprintln!("recovered {} (epoch {})", dir, engine.recovery_epoch());
            }
            engine
        }
        None => Engine::with_defaults(),
    };

    let name = args
        .flags
        .get("document")
        .cloned()
        .unwrap_or_else(|| "wards".to_string());
    // A recovered catalog already holds its documents; only a fresh (or
    // in-memory) catalog gets the files / built-in sample loaded.
    let recovered_doc = engine.document_names().contains(&name);
    let doc = engine.try_open_document(&name)?;
    let mut served_group = smoqe::workloads::hospital::GROUP.to_string();
    match (args.flags.get("dtd"), args.flags.get("doc")) {
        (Some(dtd), Some(doc_file)) => {
            if !recovered_doc {
                doc.load_dtd(&std::fs::read_to_string(dtd)?)?;
                doc.load_document_file(doc_file)?;
            }
            if let Some(policy) = args.flags.get("policy") {
                let group = args
                    .flags
                    .get("group")
                    .cloned()
                    .unwrap_or_else(|| "users".to_string());
                if !recovered_doc {
                    doc.register_policy(&group, &std::fs::read_to_string(policy)?)?;
                }
                served_group = group;
            }
        }
        (None, None) => {
            if !recovered_doc {
                smoqe::workloads::hospital::install_sample(&doc)?;
            }
        }
        _ => return Err("--dtd and --doc must be given together".into()),
    }

    let defaults = ServerConfig::default();
    let default_quota = TenantQuota {
        rate_per_sec: parsed(args, "rate", defaults.default_quota.rate_per_sec)?,
        burst: parsed(args, "burst", defaults.default_quota.burst)?,
        max_inflight: parsed(args, "inflight", defaults.default_quota.max_inflight)?,
    };
    let mut group_tokens = std::collections::HashMap::new();
    if let Some(token) = args.flags.get("group-token") {
        group_tokens.insert(served_group, token.clone());
    }
    let queue_capacity = parsed(args, "queue", defaults.queue_capacity)?;
    let config = ServerConfig {
        addr,
        workers: parsed(args, "workers", defaults.workers)?,
        queue_capacity,
        // Brownout at three quarters of whatever bound was picked.
        brownout_watermark: (queue_capacity * 3 / 4).max(1),
        trace_capacity: parsed(args, "trace", defaults.trace_capacity)?,
        default_quota,
        admin_token: args.flags.get("admin-token").cloned(),
        group_tokens,
        ..defaults
    };

    let handle = Server::start_on(listener, engine, config)?;
    // Flushed line with the final address (port 0 resolves here) so
    // scripts — CI's smoke test included — can scrape it.
    println!("listening on {}", handle.local_addr());
    handle.join();
    eprintln!("drained; goodbye");
    Ok(())
}
