//! `smoqe` — a command-line front end to the engine.
//!
//! The 2006 demo drove SMOQE through the iSMOQE GUI; this CLI covers the
//! same demonstration flows non-interactively, now on top of the
//! multi-tenant catalog API:
//!
//! ```text
//! smoqe derive   --dtd D.dtd --policy P.pol            # Fig. 3: show sigma + view DTD
//! smoqe query    --dtd D.dtd --doc T.xml [--policy P.pol] [--stream] [--tax]
//!                [--mode scan|jump|auto] [--threads N] [--repeat N]
//!                [--cache-stats] [--explain] [--batch FILE] QUERY
//! smoqe explain  --dtd D.dtd [--policy P.pol] QUERY    # rewritten MFA listing
//! smoqe trace    --dtd D.dtd --doc T.xml [--policy P.pol] QUERY   # Fig. 5 trace
//! smoqe index    --doc T.xml --out T.tax               # build + persist TAX
//! smoqe generate --dtd D.dtd --nodes N --seed S        # synthetic document on stdout
//! smoqe update   --dtd D.dtd --doc T.xml [--policy P.pol] [--out FILE]
//!                [--batch FILE | STATEMENT...]         # policy-checked mutations
//! smoqe bench-traffic [--addr HOST:PORT] [--sessions N] [--requests N]
//!                [--workers N] [--seed S] [--deadline-ms N]
//!                [--admin-token T]                     # drive mixed load at a server
//! ```
//!
//! `--repeat N` re-runs the query N times: every run after the first hits
//! the shared plan cache, and `--cache-stats` prints the engine's
//! hit/miss/invalidation/eviction counters afterwards — plus the
//! execution mode each query actually ran in (`scan` vs `jump`), so the
//! auto-picker's skip behaviour is observable.
//!
//! `--mode jump` evaluates through the positional label index (visiting
//! only candidate subtrees; implies `--tax`), `--mode auto` picks jump or
//! scan per query from the estimated selectivity, and `--threads N`
//! answers DOM-mode batches on N worker threads over one shared snapshot.
//!
//! `--explain` prints, per query, the execution mode the engine picked,
//! the statistics-based selectivity estimate (or the reason none exists),
//! and the candidate source lists a jump scan would probe from the
//! document root — full label occurrence lists, narrowed (label, value)
//! posting lists, or child-witness postings.
//!
//! `--batch FILE` answers every query listed in FILE (one Regular XPath
//! query per line, `#` comments and blank lines skipped) in **one
//! sequential scan** of the document and reports the shared event count;
//! the positional QUERY argument is not needed then.
//!
//! `bench-traffic` is the serving layer's load generator: it drives
//! `--sessions` concurrent TCP connections (alternating admin and view
//! principals) of mixed single-query / shared-scan-batch / update traffic
//! against `--addr`, or — without `--addr` — against a freshly started
//! in-process server preloaded with the hospital sample. It reports
//! p50/p95/p99 latency, QPS, the admission-control refusal counts
//! (overall and per tenant), and the server's robustness counters for
//! the run: deadline sheds, mid-scan abandons, cancellations, brownout
//! refusals and the in-flight gauge (see `smoqe-server serve` for the
//! server side). `--deadline-ms N` arms every request with a caller
//! deadline so the shed/abandon paths see load too.
//!
//! `update` applies `insert <f> into|before|after p` / `delete p` /
//! `replace p with <f>` statements. With `--policy` the statements run as
//! a *group* session: targets resolve against the security view and a
//! denied write is indistinguishable from a write to a non-existent node.
//! Several positional statements (or a `--batch` file of statements)
//! apply transactionally, and the updated document goes to stdout (or
//! `--out FILE`).

use smoqe::{DocHandle, DocumentMode, Engine, EngineConfig, EvalMode, ExecMode, User};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal argument scanner: `--flag value` pairs, bare words are
/// positional.
struct Args {
    flags: std::collections::HashMap<String, String>,
    switches: Vec<String>,
    positional: Vec<String>,
}

impl Args {
    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn parse_args(raw: &[String]) -> Args {
    let mut flags = std::collections::HashMap::new();
    let mut switches = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        let a = &raw[i];
        if let Some(name) = a.strip_prefix("--") {
            // Switches without values.
            if matches!(
                name,
                "stream" | "tax" | "no-optimize" | "dot" | "cache-stats" | "explain" | "shutdown"
            ) {
                switches.push(name.to_string());
                i += 1;
            } else if i + 1 < raw.len() {
                flags.insert(name.to_string(), raw[i + 1].clone());
                i += 2;
            } else {
                switches.push(name.to_string());
                i += 1;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Args {
        flags,
        switches,
        positional,
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        print_usage();
        return Ok(());
    };
    let args = parse_args(&raw[1..]);
    match cmd.as_str() {
        "derive" => cmd_derive(&args),
        "query" => cmd_query(&args),
        "update" => cmd_update(&args),
        "explain" => cmd_explain(&args),
        "trace" => cmd_trace(&args),
        "index" => cmd_index(&args),
        "generate" => cmd_generate(&args),
        "bench-traffic" => cmd_bench_traffic(&args),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try `smoqe help`)").into()),
    }
}

fn print_usage() {
    eprintln!(
        "smoqe - the Secure MOdular Query Engine (VLDB'06 reproduction)\n\
         \n\
         commands:\n\
           derive   --dtd FILE --policy FILE                 derive the security view (Fig. 3)\n\
           query    --dtd FILE --doc FILE [--policy FILE]\n\
                    [--stream] [--tax] [--no-optimize]\n\
                    [--mode scan|jump|auto] [--threads N]\n\
                    [--repeat N] [--cache-stats] [--explain]\n\
                    [--batch FILE | QUERY]                   answer one query, or a whole\n\
                                                             batch file in a single scan\n\
                                                             (or across N DOM workers)\n\
           explain  --dtd FILE [--policy FILE] QUERY         show the (rewritten) MFA\n\
           trace    --dtd FILE --doc FILE [--policy FILE] Q  annotated evaluation trace (Fig. 5)\n\
           index    --doc FILE --out FILE                    build + persist the TAX index\n\
           generate --dtd FILE [--nodes N] [--seed S]        emit a synthetic document\n\
           update   --dtd FILE --doc FILE [--policy FILE]\n\
                    [--out FILE] [--batch FILE | STMT...]    apply policy-checked updates\n\
                                                             (insert/delete/replace) and\n\
                                                             emit the updated document\n\
           bench-traffic [--addr HOST:PORT] [--sessions N]\n\
                    [--requests N] [--workers N] [--seed S]\n\
                    [--deadline-ms N]\n\
                    [--admin-token T] [--shutdown]           drive concurrent mixed load at a\n\
                                                             smoqe-server (or a self-hosted\n\
                                                             one) and report latency/QPS;\n\
                                                             --admin-token authenticates the\n\
                                                             admin sessions against a remote\n\
                                                             server started with one;\n\
                                                             --shutdown drains the remote\n\
                                                             server afterwards (admin op)\n\
         \n\
         With --policy, the query runs as a view user (rewritten, access-\n\
         controlled); without it, as an admin directly on the document."
    );
}

fn required<'a>(args: &'a Args, name: &str) -> Result<&'a str, Box<dyn std::error::Error>> {
    args.flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{name}").into())
}

/// Builds an engine, opens a catalog document named `cli`, loads schema and
/// data into it, and registers the policy group when one is given.
fn build_document(args: &Args) -> Result<(DocHandle, User), Box<dyn std::error::Error>> {
    let mut config = EngineConfig::default();
    if args.switch("stream") {
        config.mode = DocumentMode::Stream;
    }
    config.use_tax = args.switch("tax");
    config.optimize_mfa = !args.switch("no-optimize");
    if let Some(threads) = args.flags.get("threads") {
        config.eval_threads = threads.parse::<usize>()?.max(1);
    }
    if let Some(mode) = args.flags.get("mode") {
        config.eval_mode = match mode.as_str() {
            "scan" => EvalMode::Scan,
            "jump" => EvalMode::Jump,
            "auto" => EvalMode::Auto,
            other => return Err(format!("--mode must be scan|jump|auto, got '{other}'").into()),
        };
        if config.eval_mode != EvalMode::Scan {
            if config.mode == DocumentMode::Stream {
                // Jumping needs random access; silently scanning would
                // make the explicit request unobservable.
                return Err("--mode jump/auto is a DOM-mode strategy; \
                            --stream always evaluates by sequential scan"
                    .into());
            }
            if config.eval_mode == EvalMode::Jump
                && args.flags.contains_key("batch")
                && config.eval_threads <= 1
            {
                // A 1-thread DOM batch rides the shared streaming scan,
                // where jumping cannot apply — same rule as --stream: an
                // explicit jump request must not silently scan.
                return Err("--mode jump with --batch evaluates by one shared \
                            scan at 1 thread; add --threads N (N > 1) for \
                            jump-mode batches, or drop --batch"
                    .into());
            }
            // Jumping runs on the TAX index's positional lists, so asking
            // for it (or for auto) implies building the index.
            config.use_tax = true;
        }
    }
    let engine = Engine::new(config);
    let doc = engine.open_document("cli");
    doc.load_dtd(&std::fs::read_to_string(required(args, "dtd")?)?)?;
    if let Some(path) = args.flags.get("doc") {
        doc.load_document_file(path)?;
        if config.use_tax {
            doc.build_tax_index()?;
        }
    }
    let user = match args.flags.get("policy") {
        Some(p) => {
            doc.register_policy("cli-group", &std::fs::read_to_string(p)?)?;
            User::Group("cli-group".into())
        }
        None => User::Admin,
    };
    Ok((doc, user))
}

fn the_query(args: &Args) -> Result<&str, Box<dyn std::error::Error>> {
    args.positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| "missing QUERY argument".into())
}

fn cmd_derive(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let vocab = smoqe::xml::Vocabulary::new();
    let dtd = smoqe::xml::Dtd::parse(&std::fs::read_to_string(required(args, "dtd")?)?, &vocab)?;
    let policy = smoqe::view::AccessPolicy::parse(
        dtd.clone(),
        &std::fs::read_to_string(required(args, "policy")?)?,
    )?;
    println!("--- policy ---\n{}", policy.to_policy_string());
    let spec = smoqe::view::derive(&policy);
    spec.validate(&dtd)?;
    println!("--- derived view ---\n{}", spec.to_spec_string());
    Ok(())
}

fn print_cache_stats(doc: &DocHandle) {
    let m = doc.engine().cache_metrics();
    eprintln!(
        "plan cache: {} hit(s), {} miss(es), {} invalidation(s), {} eviction(s), {} resident ({}% hit rate)",
        m.hits,
        m.misses,
        m.invalidations,
        m.evictions,
        m.entries,
        (m.hit_rate() * 100.0).round(),
    );
    for (tenant, t) in doc.engine().tenant_metrics() {
        eprintln!(
            "tenant {tenant}: {} quer{} ({} batch(es)), {} answer(s), {} node(s) visited, \
             {} update(s) ({} denied), {} error(s)",
            t.queries,
            if t.queries == 1 { "y" } else { "ies" },
            t.batches,
            t.answers,
            t.nodes_visited,
            t.updates,
            t.update_denials,
            t.errors,
        );
    }
}

/// Reads a batch file: one query/statement per line, `#` comments and
/// blank lines skipped.
fn read_batch_lines(path: &str) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    Ok(std::fs::read_to_string(path)?
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect())
}

fn repeat_count(args: &Args) -> Result<usize, Box<dyn std::error::Error>> {
    Ok(args
        .flags
        .get("repeat")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1)
        .max(1))
}

/// Short display name of the execution mode a plan actually ran in.
fn mode_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Compiled => "scan",
        ExecMode::Interpreted => "interpreted",
        ExecMode::Jump => "jump",
    }
}

/// `--explain`: the mode the engine picked for this query, the
/// statistics-based selectivity estimate (or why none exists), and the
/// candidate source lists a jump scan would probe from the document root.
fn print_explain(
    doc: &DocHandle,
    user: &User,
    query: &str,
    mode: ExecMode,
) -> Result<(), Box<dyn std::error::Error>> {
    use smoqe_hype::{
        selectivity_estimate, start_region_triggers, SelectivityEstimate, TriggerKind,
    };
    let mfa = doc.plan(user, query)?;
    let plan = smoqe_automata::compile::CompiledMfa::compile(&mfa);
    let Ok(tree) = doc.document() else {
        // Stream mode holds no DOM: mode is all there is to report.
        eprintln!(
            "explain `{query}`: mode = {}; no DOM snapshot, no index statistics",
            mode_name(mode)
        );
        return Ok(());
    };
    let tax = doc.tax_index();
    let estimate = match selectivity_estimate(&tree, &plan, tax.as_deref()) {
        SelectivityEstimate::Measured(f) => format!("{:.4}% of nodes", f * 100.0),
        SelectivityEstimate::NoRequiredLabel => {
            "no required label (assumed unselective)".to_string()
        }
        SelectivityEstimate::NoIndex => "no positional index (estimate unavailable)".to_string(),
    };
    eprintln!(
        "explain `{query}`: mode = {}; estimated selectivity = {estimate}",
        mode_name(mode)
    );
    let triggers = start_region_triggers(&tree, &plan, tax.as_deref());
    if triggers.is_empty() {
        eprintln!("  triggers: none (the plan cannot jump from the root)");
    } else {
        let vocab = doc.engine().vocabulary();
        for t in &triggers {
            let kind = match t.kind {
                TriggerKind::Full => "full occurrence list",
                TriggerKind::NarrowedValue => "value posting list",
                TriggerKind::ChildEvidence => "child-witness postings",
            };
            match &t.value {
                Some(v) => eprintln!(
                    "  trigger {} = '{v}': {} entries ({kind})",
                    vocab.name(t.label),
                    t.len
                ),
                None => eprintln!(
                    "  trigger {}: {} entries ({kind})",
                    vocab.name(t.label),
                    t.len
                ),
            }
        }
    }
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let (doc, user) = build_document(args)?;
    let session = doc.session(user);
    let repeat = repeat_count(args)?;
    let show_mode = args.switch("cache-stats");
    if let Some(batch_file) = args.flags.get("batch") {
        let lines = read_batch_lines(batch_file)?;
        let queries: Vec<&str> = lines.iter().map(String::as_str).collect();
        // --repeat re-runs the whole batch (each re-run hits the plan
        // cache), same as it re-runs a single query.
        let mut batch = session.query_batch(&queries)?;
        for _ in 1..repeat {
            batch = session.query_batch(&queries)?;
        }
        // Parallel DOM batches serialize their answers from the document
        // tree after the fact (fetched once for the whole batch).
        let tree = if batch.events == 0 {
            Some(doc.document()?)
        } else {
            None
        };
        if batch.events > 0 {
            eprintln!(
                "{} quer{} answered in ONE scan ({} parser events)",
                queries.len(),
                if queries.len() == 1 { "y" } else { "ies" },
                batch.events,
            );
        } else {
            let merged = batch.merged_stats();
            eprintln!(
                "{} quer{} answered over one DOM snapshot ({} nodes visited in total)",
                queries.len(),
                if queries.len() == 1 { "y" } else { "ies" },
                merged.nodes_visited,
            );
        }
        for (query, answer) in queries.iter().zip(&batch.answers) {
            eprintln!(
                "  {} answer(s){}{} for `{query}`",
                answer.len(),
                if show_mode {
                    format!(" [{}]", mode_name(answer.mode))
                } else {
                    String::new()
                },
                if answer.plan_cached {
                    " [cached plan]"
                } else {
                    ""
                },
            );
            match &answer.xml {
                Some(xmls) => {
                    for xml in xmls {
                        println!("{xml}");
                    }
                }
                // Parallel DOM answers are not serialized during
                // evaluation; render them afterwards so --threads N
                // prints what --threads 1 prints. Admin answers
                // serialize straight from the already-computed node sets;
                // group answers go back through query_xml, the only
                // public path that filters hidden descendants.
                None => match (&tree, session.user()) {
                    (Some(tree), User::Admin) => {
                        for xml in answer.serialize_with(tree) {
                            println!("{xml}");
                        }
                    }
                    _ => {
                        for xml in session.query_xml(query)? {
                            println!("{xml}");
                        }
                    }
                },
            }
        }
        if args.switch("explain") {
            for (query, answer) in queries.iter().zip(&batch.answers) {
                print_explain(&doc, session.user(), query, answer.mode)?;
            }
        }
        if args.switch("cache-stats") {
            print_cache_stats(&doc);
        }
        return Ok(());
    }
    let query = the_query(args)?;
    let mut answer = session.query(query)?;
    for _ in 1..repeat {
        answer = session.query(query)?;
    }
    eprintln!(
        "{} answer(s); visited {} nodes, |Cans| = {}, pruned {} (dead) + {} (TAX){}{}",
        answer.len(),
        answer.stats.nodes_visited,
        answer.stats.cans_size,
        answer.stats.subtrees_skipped_dead,
        answer.stats.subtrees_pruned_tax,
        if show_mode {
            format!("; mode = {}", mode_name(answer.mode))
        } else {
            String::new()
        },
        if answer.plan_cached {
            "; plan from cache"
        } else {
            ""
        },
    );
    for xml in session.query_xml(query)? {
        println!("{xml}");
    }
    if args.switch("explain") {
        print_explain(&doc, session.user(), query, answer.mode)?;
    }
    if args.switch("cache-stats") {
        print_cache_stats(&doc);
    }
    Ok(())
}

fn cmd_update(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let (doc, user) = build_document(args)?;
    let statements: Vec<String> = match args.flags.get("batch") {
        Some(batch_file) => read_batch_lines(batch_file)?,
        None => args.positional.clone(),
    };
    if statements.is_empty() {
        return Err("no update statements (positional or --batch FILE)".into());
    }
    // One transaction regardless of principal: a group batch goes through
    // Session::update_batch, so a later denial installs nothing.
    let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
    let reports = match &user {
        User::Admin => doc.update_batch(&refs)?,
        User::Group(_) => doc.session(user.clone()).update_batch(&refs)?,
    };
    for (stmt, report) in statements.iter().zip(&reports) {
        eprintln!(
            "applied at {} target(s) ({} -> {} nodes{}): {stmt}",
            report.applied,
            report.nodes_before,
            report.nodes_after,
            if report.tax_patched {
                ", TAX patched"
            } else {
                ""
            },
        );
    }
    let xml = doc.document()?.to_xml();
    match args.flags.get("out") {
        Some(path) => std::fs::write(path, xml.as_bytes())?,
        None => println!("{xml}"),
    }
    if args.switch("cache-stats") {
        print_cache_stats(&doc);
    }
    Ok(())
}

fn cmd_explain(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let (doc, user) = build_document(args)?;
    let mfa = doc.plan(&user, the_query(args)?)?;
    if args.switch("dot") {
        println!("{}", smoqe::viz::mfa_to_dot(&mfa));
    } else {
        println!("{}", smoqe::viz::mfa_listing(&mfa));
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let (doc, user) = build_document(args)?;
    let session = doc.session(user);
    let mut trace = smoqe::viz::TraceCollector::new();
    let answer = session.query_observed(the_query(args)?, &mut trace)?;
    let tree = doc.document()?;
    println!("{}", smoqe::viz::annotated_tree(&tree, &trace));
    eprintln!("{} answer(s)", answer.len());
    Ok(())
}

fn cmd_index(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let vocab = smoqe::xml::Vocabulary::new();
    let doc = smoqe::xml::parse_file(required(args, "doc")?, &vocab)?;
    let tax = smoqe::tax::TaxIndex::build(&doc);
    let out = required(args, "out")?;
    tax.save_to_file(out, &vocab)?;
    eprintln!(
        "indexed {} nodes: {} distinct type sets, {} bytes on disk",
        tax.node_count(),
        tax.distinct_sets(),
        std::fs::metadata(out)?.len()
    );
    eprintln!("document: {}", doc.memory_summary());
    eprintln!("index:    {}", tax.summary(&vocab));
    Ok(())
}

fn parsed_flag<T: std::str::FromStr>(
    args: &Args,
    name: &str,
    default: T,
) -> Result<T, Box<dyn std::error::Error>>
where
    T::Err: std::error::Error + 'static,
{
    match args.flags.get(name) {
        Some(s) => Ok(s.parse()?),
        None => Ok(default),
    }
}

fn cmd_bench_traffic(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use smoqe_server::{run_traffic, Server, ServerConfig, TrafficConfig};

    let sessions: usize = parsed_flag(args, "sessions", 64)?;
    let requests: usize = parsed_flag(args, "requests", 50)?;

    // Without --addr, self-host: fresh engine, hospital sample, ephemeral
    // port — a one-command demo of the whole serving stack.
    let (addr, hosted) = match args.flags.get("addr") {
        Some(addr) => (addr.clone(), None),
        None => {
            let engine = Engine::with_defaults();
            let doc = engine.open_document("wards");
            smoqe::workloads::hospital::install_sample(&doc)?;
            let defaults = ServerConfig::default();
            let config = ServerConfig {
                workers: parsed_flag(args, "workers", defaults.workers)?,
                queue_capacity: parsed_flag(args, "queue", defaults.queue_capacity)?,
                ..defaults
            };
            let handle = Server::start(engine, config)?;
            eprintln!("self-hosted smoqe-server on {}", handle.local_addr());
            (handle.local_addr().to_string(), Some(handle))
        }
    };

    let mut config = TrafficConfig::hospital(addr, sessions, requests);
    if let Some(document) = args.flags.get("document") {
        config.document = document.clone();
    }
    config.seed = parsed_flag(args, "seed", config.seed)?;
    // Needed against a remote server that was started with an admin
    // token (self-hosted and loopback servers accept admins without one).
    config.admin_token = args.flags.get("admin-token").cloned();
    // `--deadline-ms N` arms every request with a caller deadline, so
    // the run also exercises the shed/abandon machinery under load.
    if let Some(ms) = args.flags.get("deadline-ms") {
        config.deadline = Some(std::time::Duration::from_millis(ms.parse()?));
    }

    let report = run_traffic(&config)?;
    println!(
        "{} session(s) x {} request(s): {} ok, {} busy (of which {} starved), \
         {} engine error(s), {} protocol error(s)",
        sessions,
        requests,
        report.ok,
        report.busy,
        report.starved,
        report.errors,
        report.protocol_errors,
    );
    println!(
        "latency p50 {}us  p95 {}us  p99 {}us  mean {}us  |  {:.0} req/s over {:.2}s",
        report.overall.p50_us,
        report.overall.p95_us,
        report.overall.p99_us,
        report.overall.mean_us,
        report.qps,
        report.elapsed.as_secs_f64(),
    );
    for (tenant, s) in &report.per_tenant {
        println!(
            "  tenant {tenant}: {} ok, p50 {}us, p95 {}us, p99 {}us",
            s.count, s.p50_us, s.p95_us, s.p99_us
        );
    }

    // The server-side robustness counters for the run (the serving
    // analog of `--cache-stats`): what was shed with an expired
    // deadline, abandoned mid-scan, cancelled by a vanished client or
    // refused by brownout — plus the `inflight` gauge, which must read
    // 0 on a drained server.
    {
        let mut admin = smoqe_server::Client::connect(&config.addr)?;
        admin.hello_auth(
            &config.document,
            smoqe_server::Principal::Admin,
            config.admin_token.as_deref(),
        )?;
        let s = admin.stats(false)?;
        println!(
            "server: {} shed, {} deadline-expired mid-scan, {} cancelled, \
             {} brownout-refused, {} busy, {} slow-client drop(s), {} inflight",
            s.shed_total,
            s.deadline_total,
            s.cancelled_total,
            s.overloaded_total,
            s.busy_total,
            s.slow_client_drops,
            s.inflight,
        );
    }

    match hosted {
        Some(handle) => {
            handle.shutdown();
            handle.join();
        }
        // `--shutdown` drains a remote server over the wire once the run
        // is done (CI boots `smoqe-server serve` and stops it this way).
        None if args.switch("shutdown") => {
            let mut admin = smoqe_server::Client::connect(&config.addr)?;
            admin.hello_auth(
                &config.document,
                smoqe_server::Principal::Admin,
                config.admin_token.as_deref(),
            )?;
            admin.shutdown()?;
        }
        None => {}
    }
    if report.protocol_errors > 0 {
        return Err(format!(
            "{} protocol error(s) during the run",
            report.protocol_errors
        )
        .into());
    }
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let vocab = smoqe::xml::Vocabulary::new();
    let dtd = smoqe::xml::Dtd::parse(&std::fs::read_to_string(required(args, "dtd")?)?, &vocab)?;
    let nodes: usize = args
        .flags
        .get("nodes")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(10_000);
    let seed: u64 = args
        .flags
        .get("seed")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(42);
    let config = smoqe::xml::GeneratorConfig::sized(seed, nodes);
    let stdout = std::io::stdout();
    let emitted =
        smoqe::xml::generate_to_writer(&dtd, &config, std::io::BufWriter::new(stdout.lock()))?;
    eprintln!("generated {emitted} nodes");
    Ok(())
}
