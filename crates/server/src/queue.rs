//! Bounded MPMC work queue (mutex + condvar).
//!
//! The global backpressure point between connection readers and the
//! worker pool. `try_push` never blocks — a full queue is a [`Busy`]
//! answer to the client, not an unbounded buffer and not a stalled
//! reader. `pop` blocks workers until work or close; after [`close`] the
//! queue refuses new work but **drains what it holds**, which is what
//! makes graceful shutdown finish in-flight requests.
//!
//! [`Busy`]: crate::proto::Response::Busy
//! [`close`]: WorkQueue::close

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// Queue is at capacity; retry later.
    Full,
    /// Queue is closed (server draining); no retry will succeed.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer multi-consumer queue.
pub struct WorkQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    available: Condvar,
}

impl<T> WorkQueue<T> {
    /// Queue admitting at most `capacity` queued items.
    pub fn new(capacity: usize) -> Self {
        WorkQueue {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues without blocking, or reports why it cannot.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// empty (`None` — the worker should exit).
    pub fn pop(&self) -> Option<T> {
        self.pop_unless(|_| false).0
    }

    /// Like [`pop`](WorkQueue::pop), but discards queued items `doomed`
    /// accepts instead of returning them as work. The skipped items come
    /// back in FIFO order alongside the live one so the caller can still
    /// answer and account for them — *outside* the queue lock, which this
    /// method never holds while calling anything but `doomed`.
    ///
    /// The method never blocks while holding skipped items: once
    /// anything has been shed, an empty queue returns `(None, skipped)`
    /// immediately so the shed entries can be answered *now* rather
    /// than whenever the next live item arrives. `(None, vec![])` is
    /// therefore still the unambiguous closed-and-drained exit signal.
    ///
    /// This is the shedding half of deadline support: a request whose
    /// deadline expired while it sat queued is answered without ever
    /// occupying a worker execution slot.
    pub fn pop_unless(&self, doomed: impl Fn(&T) -> bool) -> (Option<T>, Vec<T>) {
        let mut skipped = Vec::new();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            while let Some(item) = state.items.pop_front() {
                if doomed(&item) {
                    skipped.push(item);
                } else {
                    return (Some(item), skipped);
                }
            }
            if state.closed || !skipped.is_empty() {
                return (None, skipped);
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, queued items still drain.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = WorkQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_queued_items_then_releases_workers() {
        let q = Arc::new(WorkQueue::new(8));
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        assert_eq!(q.try_push(12), Err(PushError::Closed));
        // Queued work survives the close ...
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        // ... and only then do poppers get the exit signal.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_unless_sheds_doomed_entries_and_returns_first_live() {
        let q = WorkQueue::new(8);
        for v in [1, 2, 3, 4, 5] {
            q.try_push(v).unwrap();
        }
        let (live, shed) = q.pop_unless(|v| *v < 3);
        assert_eq!(live, Some(3));
        assert_eq!(shed, vec![1, 2]);
        // Later entries were untouched.
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn pop_unless_never_blocks_while_holding_sheds() {
        let q = WorkQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        // All queued work is doomed and the queue is still open: the
        // call must hand the sheds back immediately — blocking here
        // would delay their answers until the next live push.
        let (live, shed) = q.pop_unless(|_| true);
        assert_eq!(live, None);
        assert_eq!(shed, vec![1, 2]);
        // With nothing shed, an open empty queue still blocks (checked
        // via the closed path to keep this test prompt).
        q.close();
        assert_eq!(q.pop_unless(|_| true), (None, vec![]));
    }

    #[test]
    fn pop_unless_returns_doomed_entries_on_close() {
        let q = WorkQueue::new(8);
        q.try_push(7).unwrap();
        q.try_push(8).unwrap();
        q.close();
        // Every queued item is doomed: the worker gets no live work but
        // still receives the doomed entries to answer.
        let (live, shed) = q.pop_unless(|_| true);
        assert_eq!(live, None);
        assert_eq!(shed, vec![7, 8]);
        assert!(q.is_empty());
    }

    #[test]
    fn blocked_workers_wake_on_close() {
        let q = Arc::new(WorkQueue::<u32>::new(1));
        let waiter = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        // Give the worker a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(WorkQueue::new(4));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        loop {
                            match q.try_push(p * 1000 + i) {
                                Ok(()) => break,
                                Err(PushError::Full) => std::thread::yield_now(),
                                Err(PushError::Closed) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u32> = (0..4)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(all, expected);
    }
}
