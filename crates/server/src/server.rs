//! The serving loop: `std::net` threads multiplexing one shared engine.
//!
//! Topology (no async runtime — the workspace is offline, so this is
//! plain threads, a mutex-and-condvar queue, and short read timeouts as
//! the polling tick):
//!
//! ```text
//!   accept thread ──► reader thread per connection
//!                         │  parse frames (FrameBuffer)
//!                         │  inline ops: Hello / Ping / Stats /
//!                         │              OpenDocument / Shutdown
//!                         │  engine ops: admission ──► bounded queue
//!                         ▼                               │
//!                    Busy / Error                         ▼
//!                    (same socket)            worker pool (N threads)
//!                                             Session::query_serialized
//!                                             ... masks, stamps, writes
//! ```
//!
//! Responses are written under a per-connection mutex (readers answer
//! control ops, workers answer engine ops, both to the same socket), so a
//! client may pipeline freely; the `request_id` echo tells answers apart.
//!
//! **Backpressure, never buffering:** a request passes its tenant's
//! admission gates and then `try_push`es into the bounded queue. Either
//! refusal is a `Busy` frame with a retry hint on the open connection —
//! the server never queues unboundedly and never disconnects a client
//! for being eager.
//!
//! **Graceful drain:** `Shutdown` (wire, admin-only) or
//! [`ServerHandle::shutdown`] flips the drain flag, closes the queue
//! (which *keeps* its queued items), and wakes the acceptor. New engine
//! ops are refused with `SHUTTING_DOWN`; queued and in-flight requests
//! run to completion and their responses reach the client before sockets
//! close.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use smoqe::engine::Session;
use smoqe::{Engine, WorkBudget};

use crate::admission::{Admission, InflightGuard, TenantQuota, TokenBucket};
use crate::context::RequestContext;
use crate::proto::{
    code, FrameBuffer, Principal, Request, Response, WireAnswer, WireStats, WireTenant,
    WireUpdateReport, DEFAULT_MAX_FRAME_LEN,
};
use crate::queue::{PushError, WorkQueue};
use crate::trace::{Outcome, TraceLog};

/// Everything tunable about a server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing engine ops.
    pub workers: usize,
    /// Bound of the global work queue (the backpressure point).
    pub queue_capacity: usize,
    /// Maximum simultaneously open connections; excess connections get
    /// one `Busy` frame and are closed.
    pub max_connections: usize,
    /// Socket read timeout — doubles as the shutdown-poll tick, so keep
    /// it short.
    pub read_timeout: Duration,
    /// Socket write timeout (a stuck client cannot wedge a worker for
    /// longer than this per frame).
    pub write_timeout: Duration,
    /// Largest accepted frame; larger ones are rejected from the length
    /// prefix alone.
    pub max_frame_len: u32,
    /// Admission quota for group tenants without an override.
    pub default_quota: TenantQuota,
    /// Admission quota for the admin tenant.
    pub admin_quota: TenantQuota,
    /// Named per-tenant quota overrides.
    pub tenant_quotas: HashMap<String, TenantQuota>,
    /// Per-connection rate cap on inline control ops (`Hello`, `Stats`,
    /// `OpenDocument`, `Shutdown`) — these are served on the reader
    /// thread and bypass per-tenant admission, so without this cap one
    /// connection could spin them at unbounded rate against shared
    /// locks. `max_inflight` is ignored (inline ops never occupy a
    /// worker slot). `Ping` stays uncapped: it is the liveness probe and
    /// touches no shared state.
    pub control_quota: TenantQuota,
    /// Token a `Hello` must present to bind as [`Principal::Admin`].
    ///
    /// `None` (the default) falls back to a peer-address check: admin
    /// sessions are accepted only from loopback peers. Set a token to
    /// serve admins across the network.
    pub admin_token: Option<String>,
    /// Per-group authentication tokens. A group with an entry here must
    /// present it at `Hello`; groups without an entry bind freely (they
    /// only ever see their own security view). See "Security over the
    /// wire" in the README for the full trust model.
    pub group_tokens: HashMap<String, String>,
    /// Trace ring capacity (0 disables tracing).
    pub trace_capacity: usize,
    /// Brownout high-watermark: when the work queue holds at least this
    /// many entries, new **non-admin** engine ops are refused with an
    /// `Overloaded` frame (admin work still queues — the operator must be
    /// able to reach an overloaded server). Keeping the watermark below
    /// `queue_capacity` leaves headroom so the hard queue-full `Busy`
    /// path stays rare under sustained overload. `usize::MAX` disables
    /// brownout.
    pub brownout_watermark: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            queue_capacity: 1024,
            max_connections: 4096,
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            default_quota: TenantQuota::default(),
            admin_quota: TenantQuota::unlimited(),
            tenant_quotas: HashMap::new(),
            control_quota: TenantQuota {
                rate_per_sec: 100.0,
                burst: 200,
                max_inflight: usize::MAX,
            },
            admin_token: None,
            group_tokens: HashMap::new(),
            trace_capacity: 4096,
            // Three quarters of the default queue_capacity.
            brownout_watermark: 768,
        }
    }
}

/// One queued engine op: everything a worker needs to execute, answer and
/// account for it. Dropping the job (queue-full push failure) releases
/// the tenant's inflight slot via the guard.
struct Job {
    ctx: RequestContext,
    request: Request,
    session: Arc<Session>,
    out: Arc<ConnWriter>,
    admitted: Instant,
    /// Absolute expiry computed from the request's `deadline_ms` at
    /// admission (`None` = no deadline). Checked twice: by the worker
    /// pulling the job off the queue (shed without executing) and by the
    /// engine's [`WorkBudget`] mid-evaluation.
    deadline: Option<Instant>,
    /// The owning connection's cancel token (set when the connection
    /// dies); threaded into the evaluation budget so queries whose
    /// client is gone stop burning worker time.
    cancel: Arc<AtomicBool>,
    _slot: InflightGuard,
}

impl Job {
    /// Whether this job should be answered without executing: its
    /// deadline passed while it sat in the queue, or its connection died
    /// so nobody can receive the answer.
    fn doomed(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now) || self.cancel.load(Ordering::Relaxed)
    }
}

/// The write half of a connection, shared between its reader thread and
/// any workers answering its queued requests.
///
/// **Slow-reader protection:** every write runs under the socket's write
/// timeout. The first timeout (or any other write error) marks the
/// connection dead and shuts the socket down — a client that stops
/// draining its receive buffer costs at most one write-timeout of one
/// worker's time, instead of wedging a worker per pipelined response.
/// The shutdown also pops the reader thread out of its blocking read, so
/// the connection (and its tenant's admission slots, held by queued
/// jobs) is released promptly.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
    /// Cooperative cancellation token for this connection's in-flight
    /// work. Set when the connection dies — write failure here, reader
    /// exit in `handle_connection` — and observed by evaluation budgets
    /// and the worker shed path.
    cancel: Arc<AtomicBool>,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> ConnWriter {
        ConnWriter {
            stream: Mutex::new(stream),
            dead: AtomicBool::new(false),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Writes one response frame; on any failure (including a write
    /// timeout against a full send buffer) drops the connection.
    fn write(&self, shared: &Shared, bytes: &[u8]) {
        if self.is_dead() {
            return;
        }
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        if stream.write_all(bytes).is_err() {
            if !self.dead.swap(true, Ordering::AcqRel) {
                shared.slow_client_drops.fetch_add(1, Ordering::Relaxed);
            }
            // A dead connection cancels its queued and running work.
            self.cancel.store(true, Ordering::Release);
            // Unblock the reader; later writes are skipped via the flag.
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

struct Shared {
    engine: Arc<Engine>,
    config: ServerConfig,
    admission: Admission,
    queue: WorkQueue<Job>,
    trace: TraceLog,
    draining: AtomicBool,
    connections: AtomicUsize,
    responses_total: AtomicU64,
    queue_full_busy: AtomicU64,
    control_busy: AtomicU64,
    slow_client_drops: AtomicU64,
    shed_total: AtomicU64,
    deadline_total: AtomicU64,
    cancelled_total: AtomicU64,
    overloaded_total: AtomicU64,
    addr: SocketAddr,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Starts the drain exactly once: refuse new work, let the queue
    /// empty, poke the acceptor awake so it can exit.
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::AcqRel) {
            return;
        }
        self.queue.close();
        // The accept loop blocks in accept(); a throwaway local
        // connection is the portable way to deliver the news. When bound
        // to a wildcard address (0.0.0.0 / [::]), connect via loopback —
        // connecting *to* an unspecified address fails on some platforms,
        // which would leave the acceptor blocked.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
    }
}

/// Factory for running servers.
pub struct Server;

/// A running server: its address, and the levers to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    pub fn start(engine: Arc<Engine>, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        Server::start_on(listener, engine, config)
    }

    /// Like [`Server::start`], but serves an already-bound listener —
    /// the recovery path binds early (so clients get a typed
    /// `RECOVERING` answer instead of connection-refused, via
    /// [`RecoveryGate`]) and hands the socket over once the engine is
    /// ready. `config.addr` is ignored.
    pub fn start_on(
        listener: TcpListener,
        engine: Arc<Engine>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            admission: Admission::new(
                config.default_quota,
                config.admin_quota,
                config.tenant_quotas.clone(),
            ),
            queue: WorkQueue::new(config.queue_capacity),
            trace: TraceLog::new(config.trace_capacity),
            draining: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            responses_total: AtomicU64::new(0),
            queue_full_busy: AtomicU64::new(0),
            control_busy: AtomicU64::new(0),
            slow_client_drops: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            deadline_total: AtomicU64::new(0),
            cancelled_total: AtomicU64::new(0),
            overloaded_total: AtomicU64::new(0),
            engine,
            config,
            addr,
        });

        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("smoqe-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = shared.clone();
            let readers = readers.clone();
            std::thread::Builder::new()
                .name("smoqe-accept".to_string())
                .spawn(move || accept_loop(listener, &shared, &readers))
                .expect("spawn acceptor")
        };

        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            workers,
            readers,
        })
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful drain (idempotent; also reachable over the wire
    /// via the admin `Shutdown` op).
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Waits for drain to complete: acceptor gone, queue empty, workers
    /// and readers exited. Call [`shutdown`](ServerHandle::shutdown)
    /// first (or send the wire op), or this blocks until someone does.
    ///
    /// A durable engine is checkpointed after the last request finishes,
    /// so a graceful drain leaves an empty WAL and the next boot replays
    /// nothing.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let readers = std::mem::take(&mut *self.readers.lock().unwrap_or_else(|e| e.into_inner()));
        for r in readers {
            let _ = r.join();
        }
        if let Err(e) = self.shared.engine.checkpoint() {
            eprintln!("smoqe-server: shutdown checkpoint failed: {e}");
        }
    }
}

/// Answers connections with a typed `RECOVERING` error while the engine
/// replays its write-ahead log, so restarting clients see "the server is
/// here, retry shortly" instead of connection-refused.
///
/// Bind the listener first, start the gate on a clone, run
/// [`smoqe::Engine::recover`], then [`finish`](RecoveryGate::finish) the
/// gate and hand the listener to [`Server::start_on`].
pub struct RecoveryGate {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl RecoveryGate {
    /// Starts answering `listener`'s connections with `RECOVERING`,
    /// using the default [`ServerConfig`]'s write timeout. When the
    /// server will run with a non-default config, prefer
    /// [`start_with`](RecoveryGate::start_with) so the gate and the
    /// server share one slow-client policy.
    pub fn start(listener: &TcpListener) -> std::io::Result<RecoveryGate> {
        RecoveryGate::start_with(listener, ServerConfig::default().write_timeout)
    }

    /// Starts answering `listener`'s connections with `RECOVERING`,
    /// bounding each answer by `write_timeout` (typically the
    /// [`ServerConfig::write_timeout`] the server will use).
    pub fn start_with(
        listener: &TcpListener,
        write_timeout: Duration,
    ) -> std::io::Result<RecoveryGate> {
        let gate_listener = listener.try_clone()?;
        let addr = gate_listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("smoqe-recovery-gate".to_string())
                .spawn(move || {
                    for stream in gate_listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        if let Ok(mut s) = stream {
                            let frame = Response::Error {
                                code: code::RECOVERING,
                                message: "server is recovering; retry shortly".to_string(),
                            }
                            .encode(0);
                            let _ = s.set_write_timeout(Some(write_timeout));
                            let _ = s.write_all(&frame);
                        }
                    }
                })?
        };
        Ok(RecoveryGate {
            stop,
            addr,
            thread: Some(thread),
        })
    }

    /// Stops the gate; the listener is free for [`Server::start_on`].
    pub fn finish(mut self) {
        self.stop.store(true, Ordering::Release);
        // Pop the gate thread out of accept() (same trick as begin_drain).
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    readers: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.draining() {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if shared.connections.load(Ordering::Acquire) >= shared.config.max_connections {
            // One Busy frame (request id 0 = connection-level), then close.
            let mut s = stream;
            let _ = s.write_all(&Response::Busy { retry_after_ms: 50 }.encode(0));
            continue;
        }
        shared.connections.fetch_add(1, Ordering::AcqRel);
        let shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("smoqe-conn".to_string())
            .spawn(move || {
                handle_connection(&shared, stream);
                shared.connections.fetch_sub(1, Ordering::AcqRel);
            })
            .expect("spawn connection reader");
        let mut guard = readers.lock().unwrap_or_else(|e| e.into_inner());
        // Opportunistically reap finished readers so the vector tracks
        // live connections, not connection history.
        guard.retain(|h| !h.is_finished());
        guard.push(handle);
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        // Pull the next live job, shedding queued entries whose deadline
        // expired (or whose connection died) while they waited — those
        // are answered below without ever executing, so an overloaded
        // queue drains at answer speed, not evaluation speed.
        let (job, shed) = shared.queue.pop_unless(|j: &Job| j.doomed(Instant::now()));
        // `(None, [])` is the closed-and-drained exit signal; `(None,
        // shed)` just means everything popped this round was doomed —
        // answer the sheds and go around again.
        let drained = job.is_none() && shed.is_empty();
        for doomed in shed {
            let response = if doomed.cancel.load(Ordering::Relaxed) {
                Response::cancelled()
            } else {
                Response::deadline_exceeded()
            };
            finish_with(
                shared,
                &doomed.ctx,
                &doomed.out,
                doomed.admitted,
                response,
                Some(Outcome::Shed),
            );
        }
        let Some(job) = job else {
            if drained {
                return;
            }
            continue;
        };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| execute(&job)));
        let response = match result {
            Ok(response) => response,
            Err(_) => Response::Error {
                code: code::INTERNAL,
                message: "internal error".to_string(),
            },
        };
        finish(shared, &job.ctx, &job.out, job.admitted, response);
    }
}

/// Runs one engine op on the job's session, producing the already-masked
/// wire response.
///
/// Queries run under a [`WorkBudget`] carrying the job's deadline and its
/// connection's cancel token, so the evaluator abandons the scan within
/// one check interval of either firing. Updates deliberately do **not**:
/// an update is queue-shed if its deadline expires before dispatch, but
/// once application starts it runs to completion — interrupting a
/// half-applied update would trade a latency bound for atomicity.
fn execute(job: &Job) -> Response {
    let ctx = &job.ctx;
    let budget = WorkBudget {
        deadline: job.deadline,
        cancel: Some(job.cancel.clone()),
        check_interval: 0,
    };
    match &job.request {
        Request::Query { query, .. } => {
            match job.session.query_serialized_budgeted(query, &budget) {
                Ok(answer) => Response::AnswerOk(WireAnswer::from_answer(
                    &answer,
                    &ctx.principal,
                    ctx.request_id,
                )),
                Err(e) => Response::engine_error(&e),
            }
        }
        Request::QueryBatch { queries, .. } => {
            let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
            match job.session.query_batch_serialized_budgeted(&refs, &budget) {
                Ok(batch) => Response::from_batch(&batch, &ctx.principal, ctx.request_id),
                Err(e) => Response::engine_error(&e),
            }
        }
        Request::Update { statement, .. } => match job.session.update(statement) {
            Ok(report) => {
                Response::UpdateOk(WireUpdateReport::from_report(&report, &ctx.principal))
            }
            Err(e) => Response::engine_error(&e),
        },
        Request::UpdateBatch { statements, .. } => {
            let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
            match job.session.update_batch(&refs) {
                Ok(reports) => Response::UpdateBatchOk(
                    reports
                        .iter()
                        .map(|r| WireUpdateReport::from_report(r, &ctx.principal))
                        .collect(),
                ),
                Err(e) => Response::engine_error(&e),
            }
        }
        // Readers only enqueue the four engine ops above.
        _ => Response::Error {
            code: code::UNSUPPORTED_OP,
            message: "not an engine op".to_string(),
        },
    }
}

/// Classifies a response for the trace ring and the stats counters.
fn classify(response: &Response) -> (Outcome, u16) {
    match response {
        Response::Error {
            code: code::DEADLINE_EXCEEDED,
            ..
        } => (Outcome::Deadline, code::DEADLINE_EXCEEDED),
        Response::Error {
            code: code::CANCELLED,
            ..
        } => (Outcome::Cancelled, code::CANCELLED),
        Response::Error { code, .. } => (Outcome::Error, *code),
        Response::Busy { .. } => (Outcome::Busy, TraceLog::BUSY_CODE),
        Response::Overloaded { .. } => (Outcome::Overloaded, code::OVERLOADED),
        _ => (Outcome::Ok, 0),
    }
}

/// Records the outcome in the trace ring and writes the response frame.
fn finish(
    shared: &Arc<Shared>,
    ctx: &RequestContext,
    out: &Arc<ConnWriter>,
    started: Instant,
    response: Response,
) {
    finish_with(shared, ctx, out, started, response, None);
}

/// [`finish`] with an explicit outcome override — the queue-shed path
/// sends the *same bytes* as a mid-evaluation deadline (the wire must not
/// reveal whether the query ran), but the admin trace ring records `Shed`
/// so the two stay distinguishable to the operator.
fn finish_with(
    shared: &Arc<Shared>,
    ctx: &RequestContext,
    out: &Arc<ConnWriter>,
    started: Instant,
    response: Response,
    outcome_override: Option<Outcome>,
) {
    let (classified, trace_code) = classify(&response);
    let outcome = outcome_override.unwrap_or(classified);
    let counter = match outcome {
        Outcome::Shed => Some(&shared.shed_total),
        Outcome::Deadline => Some(&shared.deadline_total),
        Outcome::Cancelled => Some(&shared.cancelled_total),
        Outcome::Overloaded => Some(&shared.overloaded_total),
        _ => None,
    };
    if let Some(counter) = counter {
        counter.fetch_add(1, Ordering::Relaxed);
    }
    let micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    shared.trace.record(ctx, outcome, trace_code, micros);
    // Refusals that never reached a worker (admission Busy, brownout
    // Overloaded) are counted by their own gauges, not as served
    // responses.
    if !matches!(outcome, Outcome::Busy | Outcome::Overloaded) {
        shared.responses_total.fetch_add(1, Ordering::Relaxed);
    }
    out.write(shared, &response.encode(ctx.request_id));
}

/// Per-connection reader: parses frames, serves control ops inline, and
/// pushes engine ops through admission into the queue.
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let out = match stream.try_clone() {
        Ok(s) => Arc::new(ConnWriter::new(s)),
        Err(_) => return,
    };
    // The trust anchor for tokenless admin Hellos: the kernel-reported
    // peer address, not anything the client asserted.
    let peer_loopback = stream
        .peer_addr()
        .map(|a| a.ip().is_loopback())
        .unwrap_or(false);
    let conn = Conn {
        peer_loopback,
        control: TokenBucket::new(&shared.config.control_quota, Instant::now()),
    };

    let mut fb = FrameBuffer::new();
    let mut session: Option<(Arc<Session>, Principal)> = None;
    let mut buf = vec![0u8; 64 * 1024];

    'conn: loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                fb.push(&buf[..n]);
                loop {
                    match fb.next_frame(shared.config.max_frame_len) {
                        Ok(Some(frame)) => {
                            if !handle_frame(shared, &conn, &out, &mut session, frame) {
                                break 'conn;
                            }
                        }
                        Ok(None) => break,
                        Err(fe) => {
                            // The byte stream is unrecoverable (no way to
                            // find the next frame boundary): report and
                            // close. This is the *only* protocol failure
                            // that costs the connection.
                            out.write(
                                shared,
                                &Response::Error {
                                    code: fe.code(),
                                    message: fe.to_string(),
                                }
                                .encode(0),
                            );
                            break 'conn;
                        }
                    }
                }
                if out.is_dead() {
                    break; // slow-reader drop: stop parsing its requests
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle tick. During a drain the connection closes once its
                // pipelined work has been answered (workers hold their own
                // handle to the socket, so anything still queued writes
                // before the OS tears the pair down — but exiting early
                // would race the last writes; wait for quiet).
                if out.is_dead() || (shared.draining() && shared.queue.is_empty()) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // The connection is gone: cooperatively cancel whatever it still has
    // queued or running. Workers shed the queued jobs (releasing their
    // admission slots) and evaluation budgets stop mid-scan within one
    // check interval.
    out.cancel.store(true, Ordering::Release);
}

/// Per-connection state that outlives individual frames: what the kernel
/// says about the peer, and the inline-op rate cap.
struct Conn {
    /// Whether the peer address is a loopback address (per `peer_addr`).
    peer_loopback: bool,
    /// Rate cap for inline control ops on this connection.
    control: TokenBucket,
}

impl Conn {
    /// Takes one control-op token; on refusal returns the retry-after
    /// hint for the `Busy` response to answer with.
    fn admit_control(&self, shared: &Shared, now: Instant) -> Result<(), u32> {
        self.control.try_take(now).inspect_err(|_| {
            shared.control_busy.fetch_add(1, Ordering::Relaxed);
        })
    }
}

/// Checks a `Hello`'s credentials against the server's configuration.
///
/// Every refusal is the same `UNAUTHORIZED` code and message — whether
/// the token was wrong, missing, or an admin connected from a non-local
/// peer without a configured token, the client learns only that the
/// bind was refused.
fn authenticate(
    config: &ServerConfig,
    conn: &Conn,
    principal: &Principal,
    auth: Option<&str>,
) -> bool {
    match principal {
        Principal::Admin => match &config.admin_token {
            Some(token) => auth == Some(token.as_str()),
            None => conn.peer_loopback,
        },
        Principal::Group(g) => match config.group_tokens.get(g) {
            Some(token) => auth == Some(token.as_str()),
            None => true,
        },
    }
}

/// Serves one frame. Returns `false` when the connection should close.
fn handle_frame(
    shared: &Arc<Shared>,
    conn: &Conn,
    out: &Arc<ConnWriter>,
    session: &mut Option<(Arc<Session>, Principal)>,
    frame: crate::proto::Frame,
) -> bool {
    let started = Instant::now();
    let request = match Request::decode(frame.op, &frame.payload) {
        Ok(r) => r,
        Err(None) => {
            out.write(
                shared,
                &Response::Error {
                    code: code::UNSUPPORTED_OP,
                    message: format!("unsupported op 0x{:02x}", frame.op),
                }
                .encode(frame.request_id),
            );
            return true;
        }
        Err(Some(_)) => {
            // Framing is intact (we found the boundary), so a bad payload
            // costs only this request.
            out.write(
                shared,
                &Response::Error {
                    code: code::MALFORMED_FRAME,
                    message: "malformed frame payload".to_string(),
                }
                .encode(frame.request_id),
            );
            return true;
        }
    };

    // Ops that need no session.
    match &request {
        Request::Ping => {
            out.write(shared, &Response::Pong.encode(frame.request_id));
            return true;
        }
        Request::Hello {
            document,
            principal,
            auth,
        } => {
            let ctx = RequestContext::new(frame.request_id, principal.clone(), &request);
            if let Err(retry_after_ms) = conn.admit_control(shared, started) {
                finish(
                    shared,
                    &ctx,
                    out,
                    started,
                    Response::Busy { retry_after_ms },
                );
                return true;
            }
            // Validate the principal before it can bind a session, be
            // admitted under a tenant key, or appear in stats/traces: a
            // wire Group name that is not a bare policy identifier could
            // otherwise impersonate the reserved "(admin)" tenant row.
            if !principal.is_valid() {
                finish(
                    shared,
                    &ctx,
                    out,
                    started,
                    Response::Error {
                        code: code::BAD_PRINCIPAL,
                        message: "group names must be bare identifiers".to_string(),
                    },
                );
                return true;
            }
            if !authenticate(&shared.config, conn, principal, auth.as_deref()) {
                finish(
                    shared,
                    &ctx,
                    out,
                    started,
                    Response::Error {
                        code: code::UNAUTHORIZED,
                        message: "authentication failed".to_string(),
                    },
                );
                return true;
            }
            let response = match shared.engine.session_on(document, principal.to_user()) {
                Ok(s) => {
                    *session = Some((Arc::new(s), principal.clone()));
                    Response::HelloOk {
                        tenant: ctx.tenant().to_string(),
                    }
                }
                Err(e) => Response::engine_error(&e),
            };
            finish(shared, &ctx, out, started, response);
            return true;
        }
        _ => {}
    }

    let Some((bound_session, principal)) = session.as_ref() else {
        out.write(
            shared,
            &Response::Error {
                code: code::HELLO_REQUIRED,
                message: "hello required before this op".to_string(),
            }
            .encode(frame.request_id),
        );
        return true;
    };
    let ctx = RequestContext::new(frame.request_id, principal.clone(), &request);

    // Inline control ops bypass per-tenant admission (they never occupy
    // a worker), so they share the per-connection rate cap instead — a
    // tight Stats/Hello loop gets Busy backpressure like everything
    // else.
    if matches!(
        request,
        Request::Stats { .. } | Request::Shutdown | Request::OpenDocument { .. }
    ) {
        if let Err(retry_after_ms) = conn.admit_control(shared, started) {
            finish(
                shared,
                &ctx,
                out,
                started,
                Response::Busy { retry_after_ms },
            );
            return true;
        }
    }

    match request {
        // Control ops served inline on the reader thread.
        Request::Stats { include_trace } => {
            let response =
                Response::StatsOk(Box::new(build_stats(shared, principal, include_trace)));
            finish(shared, &ctx, out, started, response);
            true
        }
        Request::Shutdown => {
            if !principal.is_admin() {
                finish(
                    shared,
                    &ctx,
                    out,
                    started,
                    Response::Error {
                        code: code::UNAUTHORIZED,
                        message: "shutdown is admin-only".to_string(),
                    },
                );
                return true;
            }
            shared.begin_drain();
            finish(shared, &ctx, out, started, Response::ShutdownOk);
            true
        }
        Request::OpenDocument {
            name,
            dtd,
            xml,
            policies,
        } => {
            let response = if principal.is_admin() {
                match open_document(shared, &name, dtd.as_deref(), xml.as_deref(), &policies) {
                    Ok(()) => Response::OpenOk,
                    Err(e) => Response::engine_error(&e),
                }
            } else {
                Response::Error {
                    code: code::UNAUTHORIZED,
                    message: "open-document is admin-only".to_string(),
                }
            };
            finish(shared, &ctx, out, started, response);
            true
        }

        // Engine ops: admission, then the bounded queue.
        Request::Query { .. }
        | Request::QueryBatch { .. }
        | Request::Update { .. }
        | Request::UpdateBatch { .. } => {
            if shared.draining() {
                finish(
                    shared,
                    &ctx,
                    out,
                    started,
                    Response::Error {
                        code: code::SHUTTING_DOWN,
                        message: "server is draining".to_string(),
                    },
                );
                return true;
            }
            // Brownout: past the queue high-watermark the server stops
            // accepting non-admin engine work *before* admission, so a
            // deep backlog self-limits instead of stacking deadline-shed
            // work behind live work. Admins pass — the operator must be
            // able to inspect and drain an overloaded server.
            if !principal.is_admin() && shared.queue.len() >= shared.config.brownout_watermark {
                finish(
                    shared,
                    &ctx,
                    out,
                    started,
                    Response::Overloaded { retry_after_ms: 25 },
                );
                return true;
            }
            let slot = match shared.admission.admit(ctx.tenant(), started) {
                Ok(slot) => slot,
                Err(refused) => {
                    finish(
                        shared,
                        &ctx,
                        out,
                        started,
                        Response::Busy {
                            retry_after_ms: refused.retry_after_ms,
                        },
                    );
                    return true;
                }
            };
            // `deadline_ms` is relative to receipt; 0 means none.
            let deadline_ms = request.deadline_ms();
            let deadline =
                (deadline_ms > 0).then(|| started + Duration::from_millis(u64::from(deadline_ms)));
            let job = Job {
                ctx: ctx.clone(),
                request,
                session: bound_session.clone(),
                out: out.clone(),
                admitted: started,
                deadline,
                cancel: out.cancel.clone(),
                _slot: slot,
            };
            match shared.queue.try_push(job) {
                Ok(()) => true,
                Err(PushError::Full) => {
                    shared.queue_full_busy.fetch_add(1, Ordering::Relaxed);
                    finish(
                        shared,
                        &ctx,
                        out,
                        started,
                        Response::Busy { retry_after_ms: 10 },
                    );
                    true
                }
                Err(PushError::Closed) => {
                    finish(
                        shared,
                        &ctx,
                        out,
                        started,
                        Response::Error {
                            code: code::SHUTTING_DOWN,
                            message: "server is draining".to_string(),
                        },
                    );
                    true
                }
            }
        }
        // Handled above.
        Request::Hello { .. } | Request::Ping => true,
    }
}

fn open_document(
    shared: &Arc<Shared>,
    name: &str,
    dtd: Option<&str>,
    xml: Option<&str>,
    policies: &[(String, String)],
) -> Result<(), smoqe::EngineError> {
    let handle = shared.engine.try_open_document(name)?;
    if let Some(dtd) = dtd {
        handle.load_dtd(dtd)?;
    }
    if let Some(xml) = xml {
        handle.load_document(xml)?;
    }
    for (group, policy) in policies {
        handle.register_policy(group, policy)?;
    }
    Ok(())
}

/// Assembles the `Stats` response for `principal`.
///
/// Group principals see global gauges (queue depth, connection count —
/// load they need for backoff decisions) but only their **own** tenant
/// row, and never the trace ring: other tenants' names, ops and rates
/// are not theirs to read.
fn build_stats(shared: &Arc<Shared>, principal: &Principal, include_trace: bool) -> WireStats {
    let mut s = WireStats::default();
    s.set_cache(&shared.engine.cache_metrics());
    s.connections = shared.connections.load(Ordering::Acquire) as u64;
    s.queue_depth = shared.queue.len() as u64;
    s.queue_capacity = shared.queue.capacity() as u64;
    s.requests_total = shared.responses_total.load(Ordering::Relaxed);
    s.busy_total = shared.admission.busy_total()
        + shared.queue_full_busy.load(Ordering::Relaxed)
        + shared.control_busy.load(Ordering::Relaxed);
    s.epoch = shared.engine.recovery_epoch();
    s.slow_client_drops = shared.slow_client_drops.load(Ordering::Relaxed);
    s.shed_total = shared.shed_total.load(Ordering::Relaxed);
    s.deadline_total = shared.deadline_total.load(Ordering::Relaxed);
    s.cancelled_total = shared.cancelled_total.load(Ordering::Relaxed);
    s.overloaded_total = shared.overloaded_total.load(Ordering::Relaxed);
    s.inflight = shared.admission.inflight_total() as u64;

    let own = match principal {
        Principal::Admin => None,
        Principal::Group(g) => Some(g.as_str()),
    };
    let busy = shared.admission.busy_counts();
    for (tenant, m) in shared.engine.tenant_metrics() {
        if own.is_some_and(|g| g != tenant) {
            continue;
        }
        s.tenants.push(WireTenant {
            busy_rejections: busy.get(&tenant).copied().unwrap_or(0),
            tenant,
            queries: m.queries,
            batches: m.batches,
            updates: m.updates,
            update_denials: m.update_denials,
            errors: m.errors,
            answers: m.answers,
            nodes_visited: m.nodes_visited,
        });
    }

    if include_trace && principal.is_admin() {
        let (trace, dropped) = shared.trace.dump();
        s.trace = trace;
        s.trace_dropped = dropped;
    }
    s
}
