//! The SMOQE wire protocol.
//!
//! Every message is one **frame**:
//!
//! ```text
//! [len: u32 LE] [version: u8] [op: u8] [request_id: u64 LE] [payload ...]
//! ```
//!
//! `len` counts everything after itself (version through payload), so the
//! smallest legal frame is `len == 10`. All integers are little-endian;
//! strings and byte blobs are `u32` length-prefixed UTF-8; vectors are
//! `u32` count-prefixed; booleans are one byte (`0`/`1`); options are a
//! one-byte presence flag followed by the value. There is no
//! self-description and no schema negotiation beyond the version byte —
//! the codec is hand-rolled ([`Enc`]/[`Dec`]) because the workspace is
//! offline and carries no serde.
//!
//! Request ops occupy `0x01..=0x7F`, responses set the high bit
//! (`0x81..`), and the two failure responses live at `0xE0`/`0xE1`. A
//! response always echoes the `request_id` of the request it answers, so
//! a client may pipeline requests over one connection.
//!
//! ## Security invariants on the wire
//!
//! Serialization is where in-process security guarantees usually die, so
//! they are enforced *here*, in the encoding layer, not in the server
//! loop:
//!
//! * **Opaque denial.** An [`EngineError`] crosses the wire as its stable
//!   [`code`](EngineError::code) plus its `Display` text — both derived
//!   only from the variant. `UpdateDenied` carries no payload in either,
//!   so the error frame for an update refused by policy is byte-identical
//!   to the one for a target that does not exist (tested below, and again
//!   over a real socket in `tests/server.rs`).
//! * **No raw node ids for group principals.** [`WireAnswer::from_answer`]
//!   replaces source-document [`NodeId`]s with answer **ordinals**
//!   (`0..n`) for group sessions: a raw id is a dense document index, and
//!   the gap between two consecutive answer ids would leak how many
//!   *hidden* nodes sit between them.
//! * **No evaluator telemetry for group principals.** `nodes_visited`,
//!   prune counters, depth etc. measure the *source* document, including
//!   regions the view conceals; a group answer keeps only `answers` and
//!   the request id. Likewise the execution mode is normalized to
//!   `Compiled` (jump-vs-scan selection reflects index statistics over
//!   hidden data) and shared-scan `events` of a batch are zeroed.
//!
//! Admin responses carry everything verbatim — the serving layer must not
//! degrade the engine's own observability.

use smoqe::hype::EvalStats;
use smoqe::xml::tree::NodeId;
use smoqe::{Answer, BatchAnswer, CacheMetrics, EngineError, ExecMode, UpdateReport, User};

use crate::trace::{Outcome, TraceEntry};

/// Protocol version carried in every frame header.
pub const PROTOCOL_VERSION: u8 = 1;

/// Byte length of the fixed frame header *after* the length prefix
/// (version + op + request id).
pub const FRAME_HEADER_LEN: usize = 1 + 1 + 8;

/// Default cap on `len` — frames above this are rejected with
/// [`code::FRAME_TOO_LARGE`] instead of being buffered.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Request op codes (`0x01..=0x7F`).
pub mod op {
    /// Bind this connection: document name + principal.
    pub const HELLO: u8 = 0x01;
    /// Evaluate one Regular XPath query.
    pub const QUERY: u8 = 0x02;
    /// Evaluate a batch of queries in one shared pass.
    pub const QUERY_BATCH: u8 = 0x03;
    /// Apply one update statement.
    pub const UPDATE: u8 = 0x04;
    /// Apply a batch of update statements as one transaction.
    pub const UPDATE_BATCH: u8 = 0x05;
    /// Load a document (DTD + content + policies). Admin only.
    pub const OPEN_DOCUMENT: u8 = 0x06;
    /// Server / engine / per-tenant statistics and the trace ring.
    pub const STATS: u8 = 0x07;
    /// Liveness probe.
    pub const PING: u8 = 0x08;
    /// Begin graceful drain. Admin only.
    pub const SHUTDOWN: u8 = 0x09;

    /// Response to [`HELLO`].
    pub const HELLO_OK: u8 = 0x81;
    /// Response to [`QUERY`].
    pub const ANSWER_OK: u8 = 0x82;
    /// Response to [`QUERY_BATCH`].
    pub const BATCH_OK: u8 = 0x83;
    /// Response to [`UPDATE`].
    pub const UPDATE_OK: u8 = 0x84;
    /// Response to [`UPDATE_BATCH`].
    pub const UPDATE_BATCH_OK: u8 = 0x85;
    /// Response to [`OPEN_DOCUMENT`].
    pub const OPEN_OK: u8 = 0x86;
    /// Response to [`STATS`].
    pub const STATS_OK: u8 = 0x87;
    /// Response to [`PING`].
    pub const PONG: u8 = 0x88;
    /// Response to [`SHUTDOWN`].
    pub const SHUTDOWN_OK: u8 = 0x89;
    /// Request failed (engine error or protocol violation).
    pub const ERROR: u8 = 0xE0;
    /// Request refused by admission control; retry later.
    pub const BUSY: u8 = 0xE1;
    /// Request refused by brownout overload protection; retry later.
    pub const OVERLOADED: u8 = 0xE2;
}

/// Error codes carried by [`Response::Error`].
///
/// Codes `1..=99` are [`EngineError::code`] values, forwarded verbatim.
/// Codes `100..` are protocol-level failures minted by the server:
pub mod code {
    /// Frame or payload failed to decode.
    pub const MALFORMED_FRAME: u16 = 100;
    /// Version byte differs from [`super::PROTOCOL_VERSION`].
    pub const BAD_VERSION: u16 = 101;
    /// Frame length exceeds the server's cap.
    pub const FRAME_TOO_LARGE: u16 = 102;
    /// An op other than `Hello`/`Ping` arrived before `Hello`.
    pub const HELLO_REQUIRED: u16 = 103;
    /// Unknown op byte.
    pub const UNSUPPORTED_OP: u16 = 104;
    /// Server is draining; no new work is accepted.
    pub const SHUTTING_DOWN: u16 = 105;
    /// Admin-only op attempted by a group principal.
    pub const UNAUTHORIZED: u16 = 106;
    /// The worker executing the request panicked; the request died but
    /// the server did not.
    pub const INTERNAL: u16 = 107;
    /// The `Hello` principal is unusable: a group name that is not a
    /// bare policy identifier (empty, punctuated, or masquerading as the
    /// reserved admin tenant key).
    pub const BAD_PRINCIPAL: u16 = 108;
    /// The response could not be framed because some length exceeded the
    /// `u32` wire prefix. The request is lost; the stream stays in sync.
    pub const RESPONSE_TOO_LARGE: u16 = 109;
    /// The server is replaying its write-ahead log after a restart; the
    /// request was not processed. Retry shortly — the address is right,
    /// the data just is not ready yet.
    pub const RECOVERING: u16 = 110;
    /// The request's `deadline_ms` passed before an answer was produced.
    /// One code covers every stage — shed from the queue before running,
    /// or abandoned mid-evaluation — so the frame never reveals how far a
    /// query got (or how much hidden structure it touched).
    pub const DEADLINE_EXCEEDED: u16 = 111;
    /// The server is in brownout: the queue passed its high-watermark and
    /// new non-admin work is refused until in-flight work drains. (The
    /// refusal itself travels as [`super::Response::Overloaded`]; this
    /// code exists for trace rings and logs.)
    pub const OVERLOADED: u16 = 112;
    /// The request was cooperatively cancelled (its connection died or an
    /// operator killed it) before an answer was produced. Carries no
    /// progress detail, like [`DEADLINE_EXCEEDED`].
    pub const CANCELLED: u16 = 113;
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// Payload decode failure. Deliberately carries no position or context:
/// the server answers every decode failure with the same
/// [`code::MALFORMED_FRAME`] error so a probing client cannot bisect the
/// schema by observing *where* decoding stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtoError;

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("malformed frame payload")
    }
}

impl std::error::Error for ProtoError {}

/// A length (string, vector count or whole frame) exceeded the `u32`
/// wire prefix. Truncating would silently desync the stream, so encoding
/// fails instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EncodeTooLarge;

impl std::fmt::Display for EncodeTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("encoded length exceeds the u32 wire prefix")
    }
}

impl std::error::Error for EncodeTooLarge {}

/// Little-endian payload encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
    overflow: bool,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes, unless some length overflowed the `u32` wire
    /// prefix along the way.
    pub fn try_finish(self) -> Result<Vec<u8>, EncodeTooLarge> {
        if self.overflow {
            Err(EncodeTooLarge)
        } else {
            Ok(self.buf)
        }
    }

    /// Whether any length written so far overflowed `u32`.
    pub fn overflowed(&self) -> bool {
        self.overflow
    }

    /// Writes a `usize` length as its `u32` wire prefix, flagging (not
    /// wrapping) values that do not fit.
    fn len32(&mut self, n: usize) -> &mut Self {
        match u32::try_from(n) {
            Ok(v) => self.u32(v),
            Err(_) => {
                self.overflow = true;
                self.u32(u32::MAX)
            }
        }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a boolean as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.len32(v.len());
        self.buf.extend_from_slice(v.as_bytes());
        self
    }

    /// Appends an optional string (presence flag + value).
    pub fn opt_str(&mut self, v: Option<&str>) -> &mut Self {
        match v {
            Some(s) => self.bool(true).str(s),
            None => self.bool(false),
        }
    }

    /// Appends a count-prefixed vector of strings.
    pub fn str_vec(&mut self, v: &[String]) -> &mut Self {
        self.len32(v.len());
        for s in v {
            self.str(s);
        }
        self
    }
}

/// Little-endian payload decoder over a borrowed buffer.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError)?;
        if end > self.buf.len() {
            return Err(ProtoError);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a boolean (rejecting anything but `0`/`1`).
    pub fn bool(&mut self) -> Result<bool, ProtoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ProtoError),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, ProtoError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError)
    }

    /// Reads an optional string.
    pub fn opt_str(&mut self) -> Result<Option<String>, ProtoError> {
        if self.bool()? {
            Ok(Some(self.str()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a count-prefixed vector of strings.
    pub fn str_vec(&mut self) -> Result<Vec<String>, ProtoError> {
        let n = self.u32()? as usize;
        // Each element costs at least its 4-byte length prefix; reject
        // counts the remaining bytes cannot possibly satisfy before
        // allocating (a 4-byte count can claim 4 billion elements).
        if n > self.remaining() / 4 {
            return Err(ProtoError);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.str()?);
        }
        Ok(out)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed — trailing garbage is a
    /// malformed frame, not an extension point.
    pub fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ProtoError)
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// One decoded frame (header fields + raw payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Op byte.
    pub op: u8,
    /// Request id echoed between request and response.
    pub request_id: u64,
    /// Raw payload bytes (op-specific encoding).
    pub payload: Vec<u8>,
}

/// Why a byte stream failed to yield a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Declared length exceeds the configured cap.
    TooLarge(u32),
    /// Declared length is below the fixed header size.
    Runt(u32),
    /// Version byte is not [`PROTOCOL_VERSION`].
    BadVersion(u8),
}

impl FrameError {
    /// The protocol error code a server answers this failure with.
    pub fn code(&self) -> u16 {
        match self {
            FrameError::TooLarge(_) => code::FRAME_TOO_LARGE,
            FrameError::Runt(_) => code::MALFORMED_FRAME,
            FrameError::BadVersion(_) => code::BAD_VERSION,
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            FrameError::Runt(n) => write!(f, "frame of {n} bytes is shorter than its header"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes a complete frame (length prefix + header + payload), unless
/// the frame length would overflow the `u32` prefix — a wrapped prefix
/// would emit a corrupt frame and desync the stream.
pub fn try_encode_frame(
    frame_op: u8,
    request_id: u64,
    payload: &[u8],
) -> Result<Vec<u8>, EncodeTooLarge> {
    let len = u32::try_from(FRAME_HEADER_LEN + payload.len()).map_err(|_| EncodeTooLarge)?;
    let mut buf = Vec::with_capacity(4 + len as usize);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.push(PROTOCOL_VERSION);
    buf.push(frame_op);
    buf.extend_from_slice(&request_id.to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Encodes a complete frame (length prefix + header + payload).
///
/// Panics if the frame would overflow the `u32` length prefix; callers
/// that can see attacker-sized payloads use [`try_encode_frame`].
pub fn encode_frame(frame_op: u8, request_id: u64, payload: &[u8]) -> Vec<u8> {
    try_encode_frame(frame_op, request_id, payload).expect("frame exceeds u32 length prefix")
}

/// Incremental frame parser over an append-only byte buffer.
///
/// The server feeds whatever `read` returned (connections run with a short
/// read timeout as a shutdown-poll tick, so reads deliver arbitrary
/// partial chunks) and pulls zero or more complete frames back out.
/// Oversized and mis-versioned frames are detected from the first bytes —
/// **before** the body is buffered — so a hostile length prefix cannot
/// make the server allocate.
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing (bounded memory per
        // connection: at most one max-length frame plus one read chunk).
        if self.start > 0 && (self.start >= 4096 || self.start == self.buf.len()) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes". An `Err` is fatal for the
    /// stream: the length prefix or version byte is unusable, so
    /// resynchronization is impossible and the caller should answer with
    /// [`FrameError::code`] and close.
    pub fn next_frame(&mut self, max_len: u32) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap());
        if len < FRAME_HEADER_LEN as u32 {
            return Err(FrameError::Runt(len));
        }
        if len > max_len {
            return Err(FrameError::TooLarge(len));
        }
        // Version is checkable as soon as it arrives; don't wait for the
        // full body to reject a frame we can never parse.
        if avail.len() >= 5 && avail[4] != PROTOCOL_VERSION {
            return Err(FrameError::BadVersion(avail[4]));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let frame_op = avail[5];
        let request_id = u64::from_le_bytes(avail[6..14].try_into().unwrap());
        let payload = avail[14..total].to_vec();
        self.start += total;
        Ok(Some(Frame {
            op: frame_op,
            request_id,
            payload,
        }))
    }
}

// ---------------------------------------------------------------------------
// Principals
// ---------------------------------------------------------------------------

/// Who a connection authenticates as at `Hello`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Principal {
    /// Full access to the source document; sees raw ids and telemetry.
    Admin,
    /// Access through the named group's security view.
    Group(String),
}

impl Principal {
    /// Converts to the engine's [`User`].
    pub fn to_user(&self) -> User {
        match self {
            Principal::Admin => User::Admin,
            Principal::Group(g) => User::Group(g.clone()),
        }
    }

    /// Whether responses to this principal carry unmasked telemetry.
    pub fn is_admin(&self) -> bool {
        matches!(self, Principal::Admin)
    }

    /// Whether this principal may bind a session at all.
    ///
    /// Tenant accounting, admission quotas and stats scoping key on the
    /// flattened tenant string, where the admin row is the parenthesized
    /// [`smoqe::ADMIN_TENANT`] — a key that can never collide with a
    /// *policy-registered* group because the policy grammar keeps groups
    /// to bare identifiers. The wire accepts arbitrary strings, so the
    /// same grammar is enforced here: a `Group` name must be a bare
    /// identifier (`[A-Za-z_][A-Za-z0-9_-]*`, at most 128 bytes).
    /// Anything else — `"(admin)"` included — is refused at `Hello` with
    /// [`code::BAD_PRINCIPAL`], before it can bind a session, occupy the
    /// admin quota/stats row, or pollute the trace identity.
    pub fn is_valid(&self) -> bool {
        match self {
            Principal::Admin => true,
            Principal::Group(g) => valid_group_name(g),
        }
    }

    fn encode(&self, e: &mut Enc) {
        match self {
            Principal::Admin => {
                e.u8(0);
            }
            Principal::Group(g) => {
                e.u8(1).str(g);
            }
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, ProtoError> {
        match d.u8()? {
            0 => Ok(Principal::Admin),
            1 => Ok(Principal::Group(d.str()?)),
            _ => Err(ProtoError),
        }
    }
}

/// Whether `name` is a bare policy identifier — the only shape a wire
/// `Group` principal may take (see [`Principal::is_valid`]).
pub fn valid_group_name(name: &str) -> bool {
    if name.is_empty() || name.len() > 128 {
        return false;
    }
    let mut bytes = name.bytes();
    let first = bytes.next().unwrap();
    (first.is_ascii_alphabetic() || first == b'_')
        && bytes.all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A decoded client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Bind the connection to `document` as `principal`.
    Hello {
        /// Catalog name of the document to bind to.
        document: String,
        /// Principal the session runs as.
        principal: Principal,
        /// Authentication token. Required whenever the server has a
        /// token configured for the principal (always consult the
        /// server's trust model: admin principals additionally need
        /// either a configured token or a loopback peer).
        auth: Option<String>,
    },
    /// Evaluate one Regular XPath query.
    Query {
        /// The query text.
        query: String,
        /// Caller's deadline in milliseconds from server receipt
        /// (`0` = none). Expired work is shed from the queue before it
        /// runs and abandoned mid-scan if it expires while running.
        deadline_ms: u32,
    },
    /// Evaluate several queries in one shared scan.
    QueryBatch {
        /// The query texts, answered in order.
        queries: Vec<String>,
        /// Caller's deadline for the whole batch in milliseconds from
        /// server receipt (`0` = none).
        deadline_ms: u32,
    },
    /// Apply one update statement.
    Update {
        /// The update statement text.
        statement: String,
        /// Caller's deadline in milliseconds from server receipt
        /// (`0` = none). Updates are shed from the queue when expired but
        /// never interrupted mid-application (atomicity first).
        deadline_ms: u32,
    },
    /// Apply several update statements as one all-or-nothing transaction.
    UpdateBatch {
        /// The statement texts.
        statements: Vec<String>,
        /// Caller's deadline in milliseconds from server receipt
        /// (`0` = none); queue-shed only, like [`Request::Update`].
        deadline_ms: u32,
    },
    /// Load a document into the catalog (admin only).
    OpenDocument {
        /// Catalog name to load into.
        name: String,
        /// DTD source, if the document should be typed.
        dtd: Option<String>,
        /// Document XML source.
        xml: Option<String>,
        /// `(group, policy-source)` pairs to register.
        policies: Vec<(String, String)>,
    },
    /// Fetch server, engine, per-tenant and trace statistics.
    Stats {
        /// Include the request trace ring in the response (admin only —
        /// the trace names other tenants).
        include_trace: bool,
    },
    /// Liveness probe.
    Ping,
    /// Begin graceful drain (admin only).
    Shutdown,
}

impl Request {
    /// The op byte this request travels under.
    pub fn op(&self) -> u8 {
        match self {
            Request::Hello { .. } => op::HELLO,
            Request::Query { .. } => op::QUERY,
            Request::QueryBatch { .. } => op::QUERY_BATCH,
            Request::Update { .. } => op::UPDATE,
            Request::UpdateBatch { .. } => op::UPDATE_BATCH,
            Request::OpenDocument { .. } => op::OPEN_DOCUMENT,
            Request::Stats { .. } => op::STATS,
            Request::Ping => op::PING,
            Request::Shutdown => op::SHUTDOWN,
        }
    }

    /// The caller's deadline in milliseconds for the engine ops (`0` =
    /// none; ops without a deadline field report `0` too).
    pub fn deadline_ms(&self) -> u32 {
        match self {
            Request::Query { deadline_ms, .. }
            | Request::QueryBatch { deadline_ms, .. }
            | Request::Update { deadline_ms, .. }
            | Request::UpdateBatch { deadline_ms, .. } => *deadline_ms,
            _ => 0,
        }
    }

    /// Sets the deadline field on the engine ops (no-op for other ops).
    /// The client library uses this to re-stamp each retry attempt with
    /// the caller's *remaining* budget, since the wire field is relative
    /// to server receipt.
    pub fn set_deadline_ms(&mut self, ms: u32) {
        if let Request::Query { deadline_ms, .. }
        | Request::QueryBatch { deadline_ms, .. }
        | Request::Update { deadline_ms, .. }
        | Request::UpdateBatch { deadline_ms, .. } = self
        {
            *deadline_ms = ms;
        }
    }

    /// Human-readable op name (trace dumps, CLI output).
    pub fn op_name(op_byte: u8) -> &'static str {
        match op_byte {
            op::HELLO => "hello",
            op::QUERY => "query",
            op::QUERY_BATCH => "query-batch",
            op::UPDATE => "update",
            op::UPDATE_BATCH => "update-batch",
            op::OPEN_DOCUMENT => "open-document",
            op::STATS => "stats",
            op::PING => "ping",
            op::SHUTDOWN => "shutdown",
            _ => "?",
        }
    }

    /// Encodes this request as a complete frame.
    ///
    /// Panics if the request cannot fit the `u32` length prefixes;
    /// [`Request::try_encode`] is the fallible form the client uses.
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        self.try_encode(request_id)
            .expect("request exceeds u32 frame length prefix")
    }

    /// Encodes this request as a complete frame, failing (instead of
    /// emitting a stream-desyncing wrapped length) when any string,
    /// count or the frame itself overflows its `u32` prefix.
    pub fn try_encode(&self, request_id: u64) -> Result<Vec<u8>, EncodeTooLarge> {
        let mut e = Enc::new();
        match self {
            Request::Hello {
                document,
                principal,
                auth,
            } => {
                e.str(document);
                principal.encode(&mut e);
                e.opt_str(auth.as_deref());
            }
            Request::Query { query, deadline_ms } => {
                e.str(query);
                e.u32(*deadline_ms);
            }
            Request::QueryBatch {
                queries,
                deadline_ms,
            } => {
                e.str_vec(queries);
                e.u32(*deadline_ms);
            }
            Request::Update {
                statement,
                deadline_ms,
            } => {
                e.str(statement);
                e.u32(*deadline_ms);
            }
            Request::UpdateBatch {
                statements,
                deadline_ms,
            } => {
                e.str_vec(statements);
                e.u32(*deadline_ms);
            }
            Request::OpenDocument {
                name,
                dtd,
                xml,
                policies,
            } => {
                e.str(name).opt_str(dtd.as_deref()).opt_str(xml.as_deref());
                e.len32(policies.len());
                for (group, policy) in policies {
                    e.str(group).str(policy);
                }
            }
            Request::Stats { include_trace } => {
                e.bool(*include_trace);
            }
            Request::Ping | Request::Shutdown => {}
        }
        try_encode_frame(self.op(), request_id, &e.try_finish()?)
    }

    /// Decodes a request payload for `op_byte`.
    ///
    /// `Err(None)` means the op byte itself is unknown
    /// ([`code::UNSUPPORTED_OP`]); `Err(Some(_))` is a payload decode
    /// failure ([`code::MALFORMED_FRAME`]).
    pub fn decode(op_byte: u8, payload: &[u8]) -> Result<Request, Option<ProtoError>> {
        let mut d = Dec::new(payload);
        let req = match op_byte {
            op::HELLO => Request::Hello {
                document: d.str().map_err(Some)?,
                principal: Principal::decode(&mut d).map_err(Some)?,
                auth: d.opt_str().map_err(Some)?,
            },
            op::QUERY => Request::Query {
                query: d.str().map_err(Some)?,
                deadline_ms: d.u32().map_err(Some)?,
            },
            op::QUERY_BATCH => Request::QueryBatch {
                queries: d.str_vec().map_err(Some)?,
                deadline_ms: d.u32().map_err(Some)?,
            },
            op::UPDATE => Request::Update {
                statement: d.str().map_err(Some)?,
                deadline_ms: d.u32().map_err(Some)?,
            },
            op::UPDATE_BATCH => Request::UpdateBatch {
                statements: d.str_vec().map_err(Some)?,
                deadline_ms: d.u32().map_err(Some)?,
            },
            op::OPEN_DOCUMENT => {
                let name = d.str().map_err(Some)?;
                let dtd = d.opt_str().map_err(Some)?;
                let xml = d.opt_str().map_err(Some)?;
                let n = d.u32().map_err(Some)? as usize;
                if n > d.remaining() / 8 {
                    return Err(Some(ProtoError));
                }
                let mut policies = Vec::with_capacity(n);
                for _ in 0..n {
                    policies.push((d.str().map_err(Some)?, d.str().map_err(Some)?));
                }
                Request::OpenDocument {
                    name,
                    dtd,
                    xml,
                    policies,
                }
            }
            op::STATS => Request::Stats {
                include_trace: d.bool().map_err(Some)?,
            },
            op::PING => Request::Ping,
            op::SHUTDOWN => Request::Shutdown,
            _ => return Err(None),
        };
        d.finish().map_err(Some)?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Wire views of engine results
// ---------------------------------------------------------------------------

fn mode_to_u8(mode: ExecMode) -> u8 {
    match mode {
        ExecMode::Compiled => 0,
        ExecMode::Interpreted => 1,
        ExecMode::Jump => 2,
    }
}

fn mode_from_u8(v: u8) -> Result<ExecMode, ProtoError> {
    match v {
        0 => Ok(ExecMode::Compiled),
        1 => Ok(ExecMode::Interpreted),
        2 => Ok(ExecMode::Jump),
        _ => Err(ProtoError),
    }
}

/// `EvalStats` as a fixed run of thirteen `u64`s, in declaration order.
fn encode_stats(e: &mut Enc, s: &EvalStats) {
    e.u64(s.nodes_visited as u64);
    e.u64(s.subtrees_pruned_tax as u64);
    e.u64(s.subtrees_skipped_dead as u64);
    e.u64(s.cans_size as u64);
    e.u64(s.immediate_answers as u64);
    e.u64(s.answers as u64);
    e.u64(s.pred_instances as u64);
    e.u64(s.runs_spawned as u64);
    e.u64(s.formula_nodes as u64);
    e.u64(s.guard_probes as u64);
    e.u64(s.max_depth as u64);
    e.u64(s.tree_passes as u64);
    e.u64(s.request_id);
}

fn decode_stats(d: &mut Dec<'_>) -> Result<EvalStats, ProtoError> {
    Ok(EvalStats {
        nodes_visited: d.u64()? as usize,
        subtrees_pruned_tax: d.u64()? as usize,
        subtrees_skipped_dead: d.u64()? as usize,
        cans_size: d.u64()? as usize,
        immediate_answers: d.u64()? as usize,
        answers: d.u64()? as usize,
        pred_instances: d.u64()? as usize,
        runs_spawned: d.u64()? as usize,
        formula_nodes: d.u64()? as usize,
        guard_probes: d.u64()? as usize,
        max_depth: d.u64()? as usize,
        tree_passes: d.u64()? as usize,
        request_id: d.u64()?,
    })
}

/// An [`Answer`] as it crosses the wire.
///
/// `xml` is always materialized (the server evaluates through
/// `Session::query_serialized`, so group answers are view images and admin
/// answers are raw subtrees). Whether `nodes`/`stats`/`mode` are real or
/// masked depends on the principal — see [`WireAnswer::from_answer`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireAnswer {
    /// Admin: raw source node ids, document order. Group: ordinals `0..n`.
    pub nodes: Vec<u64>,
    /// Admin: full evaluator counters. Group: `answers` + `request_id`
    /// only.
    pub stats: EvalStats,
    /// Whether the plan came from the shared plan cache.
    pub plan_cached: bool,
    /// Admin: the mode the plan ran in. Group: always `Compiled`.
    pub mode: ExecMode,
    /// Serialized answer subtrees, one per node.
    pub xml: Vec<String>,
}

impl WireAnswer {
    /// Builds the wire view of `answer` for `principal`, stamping
    /// `request_id` into the stats.
    ///
    /// This is the **leak chokepoint**: group principals get answer
    /// ordinals instead of source node ids, a stats block reduced to the
    /// answer count, and a normalized execution mode. See the module docs
    /// for why each field is masked.
    pub fn from_answer(answer: &Answer, principal: &Principal, request_id: u64) -> WireAnswer {
        let xml = answer.xml.clone().unwrap_or_default();
        if principal.is_admin() {
            let mut stats = answer.stats;
            stats.request_id = request_id;
            WireAnswer {
                nodes: answer.nodes.iter().map(|n| n.0 as u64).collect(),
                stats,
                plan_cached: answer.plan_cached,
                mode: answer.mode,
                xml,
            }
        } else {
            WireAnswer {
                nodes: (0..answer.nodes.len() as u64).collect(),
                stats: EvalStats {
                    answers: answer.stats.answers,
                    request_id,
                    ..EvalStats::default()
                },
                plan_cached: answer.plan_cached,
                mode: ExecMode::Compiled,
                xml,
            }
        }
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Reinterprets the wire answer as an engine [`Answer`] (node ids are
    /// whatever the server sent: raw ids for admins, ordinals for
    /// groups).
    pub fn into_answer(self) -> Answer {
        Answer {
            nodes: self.nodes.iter().map(|&n| NodeId(n as u32)).collect(),
            stats: self.stats,
            plan_cached: self.plan_cached,
            mode: self.mode,
            xml: Some(self.xml),
        }
    }

    fn encode(&self, e: &mut Enc) {
        e.len32(self.nodes.len());
        for &n in &self.nodes {
            e.u64(n);
        }
        encode_stats(e, &self.stats);
        e.bool(self.plan_cached);
        e.u8(mode_to_u8(self.mode));
        e.str_vec(&self.xml);
    }

    fn decode(d: &mut Dec<'_>) -> Result<WireAnswer, ProtoError> {
        let n = d.u32()? as usize;
        if n > d.remaining() / 8 {
            return Err(ProtoError);
        }
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(d.u64()?);
        }
        Ok(WireAnswer {
            nodes,
            stats: decode_stats(d)?,
            plan_cached: d.bool()?,
            mode: mode_from_u8(d.u8()?)?,
            xml: d.str_vec()?,
        })
    }
}

/// An [`UpdateReport`] as it crosses the wire.
///
/// `nodes_before`/`nodes_after` are already view-relative for group
/// sessions (the engine masks them in-process); `tax_patched` is not —
/// whether a *source-document* index absorbed the edit says nothing a
/// group should know, so [`WireUpdateReport::from_report`] zeroes it for
/// group principals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireUpdateReport {
    /// Nodes the statement was applied at.
    pub applied: u64,
    /// Session-visible node count before the statement.
    pub nodes_before: u64,
    /// Session-visible node count after the statement.
    pub nodes_after: u64,
    /// Admin: whether a TAX index was incrementally patched. Group:
    /// always `false`.
    pub tax_patched: bool,
}

impl WireUpdateReport {
    /// Builds the wire view of `report` for `principal`.
    pub fn from_report(report: &UpdateReport, principal: &Principal) -> WireUpdateReport {
        WireUpdateReport {
            applied: report.applied as u64,
            nodes_before: report.nodes_before as u64,
            nodes_after: report.nodes_after as u64,
            tax_patched: principal.is_admin() && report.tax_patched,
        }
    }

    fn encode(&self, e: &mut Enc) {
        e.u64(self.applied)
            .u64(self.nodes_before)
            .u64(self.nodes_after)
            .bool(self.tax_patched);
    }

    fn decode(d: &mut Dec<'_>) -> Result<WireUpdateReport, ProtoError> {
        Ok(WireUpdateReport {
            applied: d.u64()?,
            nodes_before: d.u64()?,
            nodes_after: d.u64()?,
            tax_patched: d.bool()?,
        })
    }
}

/// Per-tenant counters as they cross the wire (mirrors
/// [`smoqe::TenantMetrics`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireTenant {
    /// Tenant key (`"(admin)"` or a group name).
    pub tenant: String,
    /// Queries evaluated.
    pub queries: u64,
    /// Query batches evaluated.
    pub batches: u64,
    /// Update statements attempted.
    pub updates: u64,
    /// Updates refused by policy.
    pub update_denials: u64,
    /// Other errors.
    pub errors: u64,
    /// Answer nodes returned.
    pub answers: u64,
    /// Evaluator work done on the tenant's behalf.
    pub nodes_visited: u64,
    /// Requests refused by admission control (server-side counter; the
    /// engine never sees these).
    pub busy_rejections: u64,
}

impl WireTenant {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.tenant);
        e.u64(self.queries)
            .u64(self.batches)
            .u64(self.updates)
            .u64(self.update_denials)
            .u64(self.errors)
            .u64(self.answers)
            .u64(self.nodes_visited)
            .u64(self.busy_rejections);
    }

    fn decode(d: &mut Dec<'_>) -> Result<WireTenant, ProtoError> {
        Ok(WireTenant {
            tenant: d.str()?,
            queries: d.u64()?,
            batches: d.u64()?,
            updates: d.u64()?,
            update_denials: d.u64()?,
            errors: d.u64()?,
            answers: d.u64()?,
            nodes_visited: d.u64()?,
            busy_rejections: d.u64()?,
        })
    }
}

/// Server + engine statistics returned by the `Stats` op.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireStats {
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Generation-staleness invalidations.
    pub cache_invalidations: u64,
    /// Capacity evictions.
    pub cache_evictions: u64,
    /// Plans currently resident.
    pub cache_entries: u64,
    /// Connections currently open.
    pub connections: u64,
    /// Requests currently queued (bounded).
    pub queue_depth: u64,
    /// The queue bound.
    pub queue_capacity: u64,
    /// Requests executed since start.
    pub requests_total: u64,
    /// `Busy` responses issued since start.
    pub busy_total: u64,
    /// Trace entries dropped because the ring was full.
    pub trace_dropped: u64,
    /// The engine's recovery epoch: 0 for an in-memory engine or a fresh
    /// data directory, +1 per crash recovery. Counters restart from zero
    /// each epoch, so a consumer seeing this advance knows the zeros mean
    /// "recovered", not "idle".
    pub epoch: u64,
    /// Connections dropped because the client stopped reading and a
    /// response write timed out (slow-reader protection).
    pub slow_client_drops: u64,
    /// Requests shed from the queue with their deadline already expired
    /// (answered without ever running).
    pub shed_total: u64,
    /// Requests whose deadline expired mid-evaluation.
    pub deadline_total: u64,
    /// Requests cooperatively cancelled mid-flight.
    pub cancelled_total: u64,
    /// Requests refused by brownout overload protection.
    pub overloaded_total: u64,
    /// Admission slots currently held by in-flight or queued requests
    /// (a gauge: a drained, idle server reports `0`, which is what the
    /// chaos harness asserts to prove no fault path leaks a slot).
    pub inflight: u64,
    /// Per-tenant counters (admin sees all tenants; a group principal
    /// sees only its own row).
    pub tenants: Vec<WireTenant>,
    /// The request trace ring (admin + `include_trace` only).
    pub trace: Vec<TraceEntry>,
}

impl WireStats {
    /// Copies engine-side cache counters in.
    pub fn set_cache(&mut self, m: &CacheMetrics) {
        self.cache_hits = m.hits;
        self.cache_misses = m.misses;
        self.cache_invalidations = m.invalidations;
        self.cache_evictions = m.evictions;
        self.cache_entries = m.entries as u64;
    }

    fn encode(&self, e: &mut Enc) {
        e.u64(self.cache_hits)
            .u64(self.cache_misses)
            .u64(self.cache_invalidations)
            .u64(self.cache_evictions)
            .u64(self.cache_entries)
            .u64(self.connections)
            .u64(self.queue_depth)
            .u64(self.queue_capacity)
            .u64(self.requests_total)
            .u64(self.busy_total)
            .u64(self.trace_dropped)
            .u64(self.epoch)
            .u64(self.slow_client_drops)
            .u64(self.shed_total)
            .u64(self.deadline_total)
            .u64(self.cancelled_total)
            .u64(self.overloaded_total)
            .u64(self.inflight);
        e.len32(self.tenants.len());
        for t in &self.tenants {
            t.encode(e);
        }
        e.len32(self.trace.len());
        for t in &self.trace {
            e.u64(t.request_id);
            e.str(&t.tenant);
            e.u8(t.op);
            e.u8(t.outcome.as_u8());
            e.u16(t.code);
            e.u64(t.micros);
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<WireStats, ProtoError> {
        let mut s = WireStats {
            cache_hits: d.u64()?,
            cache_misses: d.u64()?,
            cache_invalidations: d.u64()?,
            cache_evictions: d.u64()?,
            cache_entries: d.u64()?,
            connections: d.u64()?,
            queue_depth: d.u64()?,
            queue_capacity: d.u64()?,
            requests_total: d.u64()?,
            busy_total: d.u64()?,
            trace_dropped: d.u64()?,
            epoch: d.u64()?,
            slow_client_drops: d.u64()?,
            shed_total: d.u64()?,
            deadline_total: d.u64()?,
            cancelled_total: d.u64()?,
            overloaded_total: d.u64()?,
            inflight: d.u64()?,
            ..WireStats::default()
        };
        let nt = d.u32()? as usize;
        if nt > d.remaining() / 8 {
            return Err(ProtoError);
        }
        for _ in 0..nt {
            s.tenants.push(WireTenant::decode(d)?);
        }
        let ne = d.u32()? as usize;
        if ne > d.remaining() / 8 {
            return Err(ProtoError);
        }
        for _ in 0..ne {
            s.trace.push(TraceEntry {
                request_id: d.u64()?,
                tenant: d.str()?,
                op: d.u8()?,
                outcome: Outcome::from_u8(d.u8()?).ok_or(ProtoError)?,
                code: d.u16()?,
                micros: d.u64()?,
            });
        }
        Ok(s)
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// A decoded server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Session established.
    HelloOk {
        /// Tenant key the session is accounted under.
        tenant: String,
    },
    /// Query answered.
    AnswerOk(WireAnswer),
    /// Batch answered.
    BatchOk {
        /// One answer per query, input order.
        answers: Vec<WireAnswer>,
        /// Shared-scan parser events (admin only; `0` for groups and for
        /// the DOM path).
        events: u64,
    },
    /// Update applied.
    UpdateOk(WireUpdateReport),
    /// Update batch applied.
    UpdateBatchOk(
        /// One report per statement, input order.
        Vec<WireUpdateReport>,
    ),
    /// Document loaded.
    OpenOk,
    /// Statistics snapshot.
    StatsOk(Box<WireStats>),
    /// Liveness reply.
    Pong,
    /// Drain acknowledged.
    ShutdownOk,
    /// Request failed.
    Error {
        /// [`EngineError::code`] (`1..=99`) or a [`code`] protocol code
        /// (`100..`).
        code: u16,
        /// Display text. For engine errors this is exactly
        /// `EngineError::to_string()` — variant-derived, payload-free for
        /// the denial variants.
        message: String,
    },
    /// Refused by admission control; retry after the hinted delay.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// Refused by brownout overload protection (queue past its
    /// high-watermark); retry after the hinted delay. Distinct from
    /// [`Response::Busy`] so clients and dashboards can tell per-tenant
    /// throttling from whole-server overload.
    Overloaded {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u32,
    },
}

impl Response {
    /// The op byte this response travels under.
    pub fn op(&self) -> u8 {
        match self {
            Response::HelloOk { .. } => op::HELLO_OK,
            Response::AnswerOk(_) => op::ANSWER_OK,
            Response::BatchOk { .. } => op::BATCH_OK,
            Response::UpdateOk(_) => op::UPDATE_OK,
            Response::UpdateBatchOk(_) => op::UPDATE_BATCH_OK,
            Response::OpenOk => op::OPEN_OK,
            Response::StatsOk(_) => op::STATS_OK,
            Response::Pong => op::PONG,
            Response::ShutdownOk => op::SHUTDOWN_OK,
            Response::Error { .. } => op::ERROR,
            Response::Busy { .. } => op::BUSY,
            Response::Overloaded { .. } => op::OVERLOADED,
        }
    }

    /// The wire form of an engine failure: stable code + display text,
    /// nothing else. Both derive from the error *variant* alone, which is
    /// what keeps `UpdateDenied` frames byte-identical regardless of
    /// whether the target was hidden or never existed.
    ///
    /// The interrupt variants map onto the *protocol* deadline/cancel
    /// codes rather than their engine codes, so a request shed from the
    /// queue (which never reaches the engine) and one abandoned mid-scan
    /// produce byte-identical frames.
    pub fn engine_error(err: &EngineError) -> Response {
        match err {
            EngineError::DeadlineExceeded => Response::deadline_exceeded(),
            EngineError::Cancelled => Response::cancelled(),
            _ => Response::Error {
                code: err.code(),
                message: err.to_string(),
            },
        }
    }

    /// The single wire form of a missed deadline — one fixed code and
    /// message whether the request was shed before running or abandoned
    /// mid-scan, so the frame leaks nothing about progress.
    pub fn deadline_exceeded() -> Response {
        Response::Error {
            code: code::DEADLINE_EXCEEDED,
            message: "request deadline exceeded".to_string(),
        }
    }

    /// The single wire form of a cooperative cancellation (same opacity
    /// contract as [`Response::deadline_exceeded`]).
    pub fn cancelled() -> Response {
        Response::Error {
            code: code::CANCELLED,
            message: "request cancelled".to_string(),
        }
    }

    /// Encodes this response as a complete frame answering `request_id`.
    ///
    /// A response whose lengths overflow the `u32` wire prefixes (an
    /// admin batch past 4 GiB, say) is replaced by a
    /// [`code::RESPONSE_TOO_LARGE`] error frame for the same request —
    /// never a wrapped length prefix, which would desync the stream.
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        self.try_encode(request_id).unwrap_or_else(|_| {
            Response::Error {
                code: code::RESPONSE_TOO_LARGE,
                message: "response exceeds the frame length limit".to_string(),
            }
            .try_encode(request_id)
            .expect("error frame always fits")
        })
    }

    /// Encodes this response, failing on `u32` length overflow.
    pub fn try_encode(&self, request_id: u64) -> Result<Vec<u8>, EncodeTooLarge> {
        let mut e = Enc::new();
        match self {
            Response::HelloOk { tenant } => {
                e.str(tenant);
            }
            Response::AnswerOk(a) => a.encode(&mut e),
            Response::BatchOk { answers, events } => {
                e.len32(answers.len());
                for a in answers {
                    a.encode(&mut e);
                }
                e.u64(*events);
            }
            Response::UpdateOk(r) => r.encode(&mut e),
            Response::UpdateBatchOk(reports) => {
                e.len32(reports.len());
                for r in reports {
                    r.encode(&mut e);
                }
            }
            Response::OpenOk | Response::Pong | Response::ShutdownOk => {}
            Response::StatsOk(s) => s.encode(&mut e),
            Response::Error { code, message } => {
                e.u16(*code).str(message);
            }
            Response::Busy { retry_after_ms } | Response::Overloaded { retry_after_ms } => {
                e.u32(*retry_after_ms);
            }
        }
        try_encode_frame(self.op(), request_id, &e.try_finish()?)
    }

    /// Decodes a response payload for `op_byte`.
    pub fn decode(op_byte: u8, payload: &[u8]) -> Result<Response, ProtoError> {
        let mut d = Dec::new(payload);
        let resp = match op_byte {
            op::HELLO_OK => Response::HelloOk { tenant: d.str()? },
            op::ANSWER_OK => Response::AnswerOk(WireAnswer::decode(&mut d)?),
            op::BATCH_OK => {
                let n = d.u32()? as usize;
                if n > d.remaining() {
                    return Err(ProtoError);
                }
                let mut answers = Vec::with_capacity(n);
                for _ in 0..n {
                    answers.push(WireAnswer::decode(&mut d)?);
                }
                Response::BatchOk {
                    answers,
                    events: d.u64()?,
                }
            }
            op::UPDATE_OK => Response::UpdateOk(WireUpdateReport::decode(&mut d)?),
            op::UPDATE_BATCH_OK => {
                let n = d.u32()? as usize;
                if n > d.remaining() / 25 {
                    return Err(ProtoError);
                }
                let mut reports = Vec::with_capacity(n);
                for _ in 0..n {
                    reports.push(WireUpdateReport::decode(&mut d)?);
                }
                Response::UpdateBatchOk(reports)
            }
            op::OPEN_OK => Response::OpenOk,
            op::STATS_OK => Response::StatsOk(Box::new(WireStats::decode(&mut d)?)),
            op::PONG => Response::Pong,
            op::SHUTDOWN_OK => Response::ShutdownOk,
            op::ERROR => Response::Error {
                code: d.u16()?,
                message: d.str()?,
            },
            op::BUSY => Response::Busy {
                retry_after_ms: d.u32()?,
            },
            op::OVERLOADED => Response::Overloaded {
                retry_after_ms: d.u32()?,
            },
            _ => return Err(ProtoError),
        };
        d.finish()?;
        Ok(resp)
    }

    /// Builds the masked wire view of a [`BatchAnswer`] for `principal`.
    /// The shared-scan event count measures the *source* parse, hidden
    /// regions included, so group principals see `0`.
    pub fn from_batch(batch: &BatchAnswer, principal: &Principal, request_id: u64) -> Response {
        Response::BatchOk {
            answers: batch
                .answers
                .iter()
                .map(|a| WireAnswer::from_answer(a, principal, request_id))
                .collect(),
            events: if principal.is_admin() {
                batch.events as u64
            } else {
                0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = req.encode(42);
        let mut fb = FrameBuffer::new();
        fb.push(&bytes);
        let frame = fb.next_frame(DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(frame.request_id, 42);
        let back = Request::decode(frame.op, &frame.payload).unwrap();
        assert_eq!(back, req);
    }

    fn roundtrip_response(resp: Response) {
        let bytes = resp.encode(7);
        let mut fb = FrameBuffer::new();
        fb.push(&bytes);
        let frame = fb.next_frame(DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(frame.request_id, 7);
        let back = Response::decode(frame.op, &frame.payload).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Hello {
            document: "wards".into(),
            principal: Principal::Group("nurse".into()),
            auth: None,
        });
        roundtrip_request(Request::Hello {
            document: "".into(),
            principal: Principal::Admin,
            auth: Some("sekrit".into()),
        });
        roundtrip_request(Request::Query {
            query: "//patient[@id]/treatment".into(),
            deadline_ms: 0,
        });
        roundtrip_request(Request::Query {
            query: "//a".into(),
            deadline_ms: 1_500,
        });
        roundtrip_request(Request::QueryBatch {
            queries: vec!["//a".into(), "b/c".into(), "".into()],
            deadline_ms: u32::MAX,
        });
        roundtrip_request(Request::Update {
            statement: "delete //bill".into(),
            deadline_ms: 250,
        });
        roundtrip_request(Request::UpdateBatch {
            statements: vec![],
            deadline_ms: 0,
        });
        roundtrip_request(Request::OpenDocument {
            name: "d".into(),
            dtd: Some("<!ELEMENT r EMPTY>".into()),
            xml: None,
            policies: vec![("g".into(), "policy text".into())],
        });
        roundtrip_request(Request::Stats {
            include_trace: true,
        });
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn deadline_accessors_cover_engine_ops_only() {
        let mut req = Request::Query {
            query: "//a".into(),
            deadline_ms: 0,
        };
        assert_eq!(req.deadline_ms(), 0);
        req.set_deadline_ms(77);
        assert_eq!(req.deadline_ms(), 77);
        let mut ping = Request::Ping;
        ping.set_deadline_ms(99);
        assert_eq!(ping.deadline_ms(), 0);
    }

    #[test]
    fn deadline_and_cancel_frames_never_reveal_progress() {
        // The queue-shed helper and the mid-evaluation engine error must
        // produce byte-identical frames: otherwise the response would
        // reveal whether (and how far) a query ran against data the view
        // may be hiding.
        let shed = Response::deadline_exceeded().encode(9);
        let mid_scan = Response::engine_error(&smoqe::EngineError::DeadlineExceeded).encode(9);
        assert_eq!(shed, mid_scan);

        let shed = Response::cancelled().encode(9);
        let mid_scan = Response::engine_error(&smoqe::EngineError::Cancelled).encode(9);
        assert_eq!(shed, mid_scan);

        // And the code carried is the protocol-level one, not the
        // engine's internal 1..=99 range.
        let bytes = Response::deadline_exceeded().encode(9);
        let mut fb = FrameBuffer::new();
        fb.push(&bytes);
        let frame = fb.next_frame(DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
        match Response::decode(frame.op, &frame.payload).unwrap() {
            Response::Error { code: c, .. } => assert_eq!(c, code::DEADLINE_EXCEEDED),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::HelloOk {
            tenant: "nurse".into(),
        });
        roundtrip_response(Response::AnswerOk(WireAnswer {
            nodes: vec![3, 17, 99],
            stats: EvalStats {
                nodes_visited: 120,
                answers: 3,
                request_id: 7,
                ..EvalStats::default()
            },
            plan_cached: true,
            mode: ExecMode::Jump,
            xml: vec!["<a/>".into(), "<b>x</b>".into(), "".into()],
        }));
        roundtrip_response(Response::BatchOk {
            answers: vec![],
            events: 1234,
        });
        roundtrip_response(Response::UpdateOk(WireUpdateReport {
            applied: 2,
            nodes_before: 40,
            nodes_after: 38,
            tax_patched: true,
        }));
        roundtrip_response(Response::UpdateBatchOk(vec![WireUpdateReport {
            applied: 0,
            nodes_before: 1,
            nodes_after: 1,
            tax_patched: false,
        }]));
        roundtrip_response(Response::OpenOk);
        let mut stats = WireStats {
            connections: 4,
            queue_depth: 2,
            queue_capacity: 256,
            requests_total: 10_000,
            busy_total: 12,
            trace_dropped: 1,
            epoch: 3,
            slow_client_drops: 2,
            tenants: vec![WireTenant {
                tenant: "nurse".into(),
                queries: 9,
                busy_rejections: 2,
                ..WireTenant::default()
            }],
            shed_total: 3,
            deadline_total: 4,
            cancelled_total: 5,
            overloaded_total: 6,
            inflight: 7,
            trace: vec![
                TraceEntry {
                    request_id: 5,
                    tenant: "(admin)".into(),
                    op: op::QUERY,
                    outcome: Outcome::Ok,
                    code: 0,
                    micros: 812,
                },
                TraceEntry {
                    request_id: 6,
                    tenant: "nurse".into(),
                    op: op::QUERY,
                    outcome: Outcome::Shed,
                    code: code::DEADLINE_EXCEEDED,
                    micros: 2_000,
                },
            ],
            ..WireStats::default()
        };
        stats.set_cache(&CacheMetrics {
            hits: 8,
            misses: 2,
            invalidations: 1,
            evictions: 0,
            entries: 2,
        });
        roundtrip_response(Response::StatsOk(Box::new(stats)));
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::ShutdownOk);
        roundtrip_response(Response::Error {
            code: code::HELLO_REQUIRED,
            message: "hello required".into(),
        });
        roundtrip_response(Response::Busy { retry_after_ms: 25 });
        roundtrip_response(Response::Overloaded { retry_after_ms: 40 });
    }

    #[test]
    fn frames_reassemble_from_arbitrary_chunks() {
        let a = Request::Query {
            query: "//a".into(),
            deadline_ms: 0,
        }
        .encode(1);
        let b = Request::Ping.encode(2);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        // Feed one byte at a time; frames must pop out exactly at their
        // boundaries.
        let mut fb = FrameBuffer::new();
        let mut frames = Vec::new();
        for &byte in &all {
            fb.push(&[byte]);
            while let Some(f) = fb.next_frame(DEFAULT_MAX_FRAME_LEN).unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].request_id, 1);
        assert_eq!(frames[1].op, op::PING);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn oversized_and_runt_and_misversioned_frames_are_rejected() {
        // Oversized: rejected from the 4-byte prefix alone, before any
        // body arrives.
        let mut fb = FrameBuffer::new();
        fb.push(&(DEFAULT_MAX_FRAME_LEN + 1).to_le_bytes());
        assert_eq!(
            fb.next_frame(DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::TooLarge(DEFAULT_MAX_FRAME_LEN + 1))
        );

        // Runt: shorter than its own header.
        let mut fb = FrameBuffer::new();
        fb.push(&5u32.to_le_bytes());
        assert_eq!(
            fb.next_frame(DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::Runt(5))
        );

        // Wrong version: rejected as soon as the version byte arrives.
        let mut fb = FrameBuffer::new();
        fb.push(&10u32.to_le_bytes());
        fb.push(&[9]);
        assert_eq!(
            fb.next_frame(DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::BadVersion(9))
        );
    }

    #[test]
    fn truncated_payloads_fail_closed() {
        let full = Request::Hello {
            document: "wards".into(),
            principal: Principal::Group("nurse".into()),
            auth: Some("token".into()),
        }
        .encode(1);
        // Any strict prefix of the payload must decode to an error, never
        // a panic and never a different request.
        let payload = &full[4 + FRAME_HEADER_LEN..];
        for cut in 0..payload.len() {
            match Request::decode(op::HELLO, &payload[..cut]) {
                Err(Some(ProtoError)) => {}
                other => panic!("prefix of {cut} bytes decoded as {other:?}"),
            }
        }
        // Trailing garbage is rejected too.
        let mut extended = payload.to_vec();
        extended.push(0);
        assert_eq!(Request::decode(op::HELLO, &extended), Err(Some(ProtoError)));
    }

    #[test]
    fn group_names_must_be_bare_identifiers() {
        for good in ["researchers", "g", "_internal", "ward-3_staff", "A1"] {
            assert!(valid_group_name(good), "{good} should be valid");
            assert!(Principal::Group(good.into()).is_valid());
        }
        for bad in [
            "",
            "(admin)",
            "admin)",
            "a b",
            "-lead",
            "1st",
            "g\u{0}",
            "gr/oup",
            "caf\u{e9}",
        ] {
            assert!(!valid_group_name(bad), "{bad:?} should be rejected");
            assert!(!Principal::Group(bad.into()).is_valid());
        }
        assert!(!valid_group_name(&"g".repeat(129)));
        assert!(valid_group_name(&"g".repeat(128)));
        assert!(Principal::Admin.is_valid());
    }

    #[test]
    fn oversized_lengths_fail_encoding_instead_of_wrapping() {
        // A frame whose total length cannot fit the u32 prefix must
        // refuse to encode. (4 GiB strings are not allocatable in a test;
        // exercise the same checked paths directly.)
        assert!(try_encode_frame(op::PING, 1, &[]).is_ok());
        let mut e = Enc::new();
        e.len32(usize::try_from(u32::MAX).unwrap() + 1);
        assert!(e.overflowed());
        assert_eq!(e.try_finish(), Err(EncodeTooLarge));

        // The in-range boundary still encodes.
        let mut e = Enc::new();
        e.len32(usize::try_from(u32::MAX).unwrap());
        assert!(!e.overflowed());

        // And the server-side fallback is a well-formed error frame
        // answering the same request id.
        let fallback = Response::Error {
            code: code::RESPONSE_TOO_LARGE,
            message: "response exceeds the frame length limit".to_string(),
        }
        .encode(9);
        let mut fb = FrameBuffer::new();
        fb.push(&fallback);
        let frame = fb.next_frame(DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(frame.request_id, 9);
        match Response::decode(frame.op, &frame.payload).unwrap() {
            Response::Error { code: c, .. } => assert_eq!(c, code::RESPONSE_TOO_LARGE),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A batch claiming u32::MAX strings with a 4-byte body must be
        // rejected before any reservation.
        let mut e = Enc::new();
        e.u32(u32::MAX);
        assert_eq!(
            Request::decode(op::QUERY_BATCH, &e.finish()),
            Err(Some(ProtoError))
        );
    }

    #[test]
    fn group_answers_are_masked_and_admin_answers_are_verbatim() {
        let answer = Answer {
            nodes: vec![NodeId(5), NodeId(19), NodeId(20)],
            stats: EvalStats {
                nodes_visited: 500,
                subtrees_pruned_tax: 7,
                cans_size: 12,
                answers: 3,
                max_depth: 9,
                tree_passes: 1,
                ..EvalStats::default()
            },
            plan_cached: true,
            mode: ExecMode::Jump,
            xml: Some(vec!["<t/>".into(), "<t/>".into(), "<t/>".into()]),
        };

        let admin = WireAnswer::from_answer(&answer, &Principal::Admin, 11);
        assert_eq!(admin.nodes, vec![5, 19, 20]);
        assert_eq!(admin.stats.nodes_visited, 500);
        assert_eq!(admin.stats.request_id, 11);
        assert_eq!(admin.mode, ExecMode::Jump);

        let group = WireAnswer::from_answer(&answer, &Principal::Group("g".into()), 11);
        // Ordinals, not source ids: id gaps would count hidden nodes.
        assert_eq!(group.nodes, vec![0, 1, 2]);
        // Source-side telemetry is gone; the answer count remains.
        assert_eq!(
            group.stats,
            EvalStats {
                answers: 3,
                request_id: 11,
                ..EvalStats::default()
            }
        );
        assert_eq!(group.mode, ExecMode::Compiled);
        // The payload the user is entitled to — the view image — survives.
        assert_eq!(group.xml.len(), 3);
        assert_eq!(group.plan_cached, answer.plan_cached);
    }

    #[test]
    fn batch_events_and_tax_patched_are_masked_for_groups() {
        let batch = BatchAnswer {
            answers: vec![],
            events: 42_000,
        };
        let g = Principal::Group("g".into());
        match Response::from_batch(&batch, &g, 1) {
            Response::BatchOk { events, .. } => assert_eq!(events, 0),
            other => panic!("unexpected {other:?}"),
        }
        match Response::from_batch(&batch, &Principal::Admin, 1) {
            Response::BatchOk { events, .. } => assert_eq!(events, 42_000),
            other => panic!("unexpected {other:?}"),
        }

        let report = UpdateReport {
            applied: 1,
            nodes_before: 10,
            nodes_after: 9,
            tax_patched: true,
        };
        assert!(!WireUpdateReport::from_report(&report, &g).tax_patched);
        assert!(WireUpdateReport::from_report(&report, &Principal::Admin).tax_patched);
    }

    #[test]
    fn denial_frames_are_byte_identical_hidden_vs_nonexistent() {
        // In-process, both causes collapse to the same payload-free
        // variant; the encoding must not reintroduce a distinction.
        let hidden = Response::engine_error(&EngineError::UpdateDenied);
        let nonexistent = Response::engine_error(&EngineError::UpdateDenied);
        assert_eq!(hidden.encode(99), nonexistent.encode(99));
        // And the code is the stable one pinned in core.
        match hidden {
            Response::Error { code, .. } => assert_eq!(code, EngineError::UpdateDenied.code()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
