//! Direct (syntactic) rewriting — the exponential strawman.
//!
//! Paper §3: *"While it is always possible to rewrite a Regular XPath
//! query Q on a view to an equivalent query Q′ on the underlying document,
//! the size of Q′, if directly represented as Regular XPath expressions,
//! may be exponential in the size of Q."* This module materializes that
//! syntactic representation so experiment E2 can measure the blow-up the
//! MFA representation avoids.
//!
//! The construction reuses the MFA rewriter and then converts the
//! automaton back to Regular XPath by **state elimination**: ε-edges carry
//! `ε`, guarded ε-edges carry `.[q]` (where `q` is the predicate converted
//! back to a qualifier, with `HasPath` sub-automata eliminated
//! recursively), and the elimination order is fixed (highest state id
//! first). The result is a genuine Regular XPath expression equivalent to
//! the input — just potentially enormous.

use smoqe_automata::{Mfa, Nfa, NfaId, Pred, PredId};
use smoqe_rxpath::{Path, Qualifier};
use smoqe_view::ViewSpec;

/// Syntactically rewrites `query` over the view into Regular XPath over
/// the source. Returns `None` when the rewritten language is empty (the
/// query can never match through the view).
pub fn rewrite_direct(query: &Path, spec: &ViewSpec) -> Option<Path> {
    let mfa = crate::rewrite(query, spec);
    mfa_to_path(&mfa)
}

/// Like [`rewrite_direct`], but relative to a view node of type `context`
/// (see [`crate::mfa_rewrite::rewrite_from`]). Used by view composition.
pub fn rewrite_direct_from(
    query: &Path,
    spec: &ViewSpec,
    context: smoqe_xml::Label,
) -> Option<Path> {
    let mfa = crate::rewrite_from(query, spec, context);
    mfa_to_path(&mfa)
}

/// Converts an MFA back into a syntactic Regular XPath expression
/// (`None` = empty language).
pub fn mfa_to_path(mfa: &Mfa) -> Option<Path> {
    nfa_to_path(mfa, mfa.top())
}

fn pred_to_qualifier(mfa: &Mfa, pred: PredId) -> Qualifier {
    match mfa.pred(pred) {
        Pred::True => Qualifier::True,
        Pred::TextEq(c) => Qualifier::TextEq(Path::Empty, c.clone()),
        Pred::HasPath(n) => match nfa_to_path(mfa, *n) {
            Some(p) => Qualifier::Exists(p),
            // Empty language: the predicate can never hold.
            None => Qualifier::not(Qualifier::True),
        },
        Pred::Not(p) => Qualifier::not(pred_to_qualifier(mfa, *p)),
        Pred::And(ps) => ps
            .iter()
            .map(|&p| pred_to_qualifier(mfa, p))
            .reduce(Qualifier::and)
            .unwrap_or(Qualifier::True),
        Pred::Or(ps) => ps
            .iter()
            .map(|&p| pred_to_qualifier(mfa, p))
            .reduce(Qualifier::or)
            .unwrap_or(Qualifier::True),
    }
}

/// State elimination over one NFA with `Path`-weighted edges.
fn nfa_to_path(mfa: &Mfa, nfa_id: NfaId) -> Option<Path> {
    let nfa: &Nfa = mfa.nfa(nfa_id);
    let n = nfa.state_count();
    if n == 0 {
        return None;
    }
    // Matrix with two extra virtual endpoints: n = fresh start, n+1 =
    // fresh end, so the original start/accept can participate in loops.
    let total = n + 2;
    let (vstart, vend) = (n, n + 1);
    let mut m: Vec<Vec<Option<Path>>> = vec![vec![None; total]; total];
    let add = |m: &mut Vec<Vec<Option<Path>>>, i: usize, j: usize, p: Path| {
        let slot = &mut m[i][j];
        *slot = Some(match slot.take() {
            None => p,
            Some(e) => Path::union([e, p]),
        });
    };
    add(&mut m, vstart, nfa.start().index(), Path::Empty);
    add(&mut m, nfa.accept().index(), vend, Path::Empty);
    for s in nfa.states() {
        for e in nfa.eps_edges(s) {
            let w = match e.guard {
                None => Path::Empty,
                Some(g) => Path::qualified(Path::Empty, pred_to_qualifier(mfa, g)),
            };
            add(&mut m, s.index(), e.target.index(), w);
        }
        for t in nfa.transitions(s) {
            let w = match t.test {
                smoqe_automata::LabelTest::Label(l) => Path::Label(l),
                smoqe_automata::LabelTest::Wildcard => Path::Wildcard,
            };
            add(&mut m, s.index(), t.target.index(), w);
        }
    }
    // Eliminate original states 0..n.
    for k in 0..n {
        let self_loop = m[k][k].take().map(Path::star);
        let outs: Vec<(usize, Path)> = (0..total)
            .filter(|&j| j != k)
            .filter_map(|j| m[k][j].clone().map(|p| (j, p)))
            .collect();
        for i in 0..total {
            if i == k {
                continue;
            }
            let Some(into_k) = m[i][k].take() else {
                continue;
            };
            let prefix = match &self_loop {
                Some(l) => Path::seq([into_k.clone(), l.clone()]),
                None => into_k.clone(),
            };
            for (j, q) in &outs {
                add(&mut m, i, *j, Path::seq([prefix.clone(), q.clone()]));
            }
        }
        for slot in m[k].iter_mut() {
            *slot = None;
        }
    }
    // Self-loop on the virtual endpoints cannot arise (no incoming to
    // vstart, no outgoing from vend).
    m[vstart][vend].take()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_rxpath::{evaluate, parse_path};
    use smoqe_view::{derive, AccessPolicy, HOSPITAL_POLICY};
    use smoqe_xml::{Document, Dtd, Vocabulary, HOSPITAL_DTD};

    fn setup() -> (Vocabulary, Dtd, ViewSpec) {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        let policy = AccessPolicy::parse(dtd.clone(), HOSPITAL_POLICY).unwrap();
        (vocab, dtd, derive(&policy))
    }

    #[test]
    fn direct_rewrite_agrees_with_mfa_rewrite() {
        let (vocab, _, spec) = setup();
        let doc = Document::parse_str(
            "<hospital><patient><pname>A</pname>\
             <visit><treatment><medication>autism</medication></treatment><date>d</date></visit>\
             <parent><patient><pname>B</pname>\
               <visit><treatment><medication>autism</medication></treatment><date>d</date></visit>\
             </patient></parent>\
             </patient></hospital>",
            &vocab,
        )
        .unwrap();
        for q in [
            "hospital/patient",
            "hospital/patient/treatment/medication",
            "//medication",
            "hospital/patient[treatment]/parent/patient",
            "hospital/patient/(parent/patient)*",
        ] {
            let path = parse_path(q, &vocab).unwrap();
            let direct = rewrite_direct(&path, &spec).expect("nonempty rewriting");
            let via_syntactic = evaluate(&doc, &direct);
            let mfa = crate::rewrite(&path, &spec);
            let (via_mfa, _) = smoqe_hype::evaluate_mfa(&doc, &mfa);
            assert_eq!(via_syntactic, via_mfa, "mismatch for `{q}`");
        }
    }

    #[test]
    fn empty_language_returns_none() {
        let (vocab, _, spec) = setup();
        // pname is hidden: no path through the view reaches it.
        let path = parse_path("//pname", &vocab).unwrap();
        assert!(rewrite_direct(&path, &spec).is_none());
    }

    #[test]
    fn direct_size_grows_much_faster_than_mfa_size() {
        let (vocab, _, spec) = setup();
        let mut ratio_growth = Vec::new();
        for n in 1..=4 {
            let q = format!(
                "hospital/patient{}/treatment",
                "/(parent/patient)*".repeat(n)
            );
            let path = parse_path(&q, &vocab).unwrap();
            let mfa_size = crate::rewrite(&path, &spec).stats().total();
            let direct_size = rewrite_direct(&path, &spec).map(|p| p.size()).unwrap_or(0);
            ratio_growth.push(direct_size as f64 / mfa_size as f64);
        }
        // The syntactic representation keeps losing ground.
        assert!(
            ratio_growth.last().unwrap() > ratio_growth.first().unwrap(),
            "expected growing ratio, got {ratio_growth:?}"
        );
    }

    #[test]
    fn identity_round_trip_stays_equivalent() {
        let (vocab, dtd, _) = setup();
        let spec = ViewSpec::identity(&dtd);
        let doc = Document::parse_str(
            "<hospital><patient><pname>A</pname>\
             <visit><treatment><test>t</test></treatment><date>d</date></visit>\
             </patient></hospital>",
            &vocab,
        )
        .unwrap();
        for q in [
            "hospital/patient/pname",
            "//test",
            "hospital/patient[visit]",
        ] {
            let path = parse_path(q, &vocab).unwrap();
            let direct = rewrite_direct(&path, &spec).expect("nonempty");
            assert_eq!(
                evaluate(&doc, &direct),
                evaluate(&doc, &path),
                "identity direct rewrite changed `{q}`"
            );
        }
    }
}
