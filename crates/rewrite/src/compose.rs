//! View composition: views defined over views.
//!
//! The paper motivates XML views for *access control* **and** *data
//! integration* (§1); in both settings views stack — a department view is
//! defined over the company view, which is defined over the raw document.
//! Because Regular XPath is closed under rewriting (the property SMOQE is
//! built on), a stack of views collapses into a **single** view over the
//! source: every σ_outer(A, B), a path over the inner view, is rewritten
//! into an equivalent path over the inner view's source. Queries over the
//! composed view then rewrite once, exactly like any other view.
//!
//! The correctness statement extends the paper's:
//! `V_outer(V_inner(T)) = V_composed(T)` for every document T (tested by
//! double materialization).

use crate::direct::rewrite_direct_from;
use smoqe_view::{ViewError, ViewSpec};

/// Composes `outer` (a view over `inner`'s view) with `inner` (a view over
/// the source), producing one view over the source with the *same* view
/// DTD as `outer`.
///
/// Errors with [`ViewError::Unsatisfiable`] if some σ_outer can never
/// produce a node through the inner view (the outer view references data
/// the inner view hides entirely) — a composition bug worth surfacing
/// rather than silently emitting empty subtrees.
pub fn compose_views(outer: &ViewSpec, inner: &ViewSpec) -> Result<ViewSpec, ViewError> {
    let vocab = outer.vocabulary();
    let mut composed = ViewSpec::new(outer.view_dtd().clone());
    for (&(a, b), sigma) in outer.sigmas() {
        // σ_outer(a, b) runs from an `a`-node of the inner view; the
        // composed σ runs from the corresponding source node (same label,
        // views preserve labels).
        match rewrite_direct_from(sigma, inner, a) {
            Some(path) => composed.set_sigma(a, b, path),
            None => {
                return Err(ViewError::Unsatisfiable(
                    vocab.name(a).to_string(),
                    vocab.name(b).to_string(),
                ))
            }
        }
    }
    Ok(composed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_rxpath::{evaluate as naive, parse_path};
    use smoqe_view::{derive, materialize, AccessPolicy, HOSPITAL_POLICY};
    use smoqe_xml::{Document, Dtd, Vocabulary, HOSPITAL_DTD};

    const SAMPLE: &str = "<hospital>\
        <patient><pname>Ann</pname>\
          <visit><treatment><medication>autism</medication></treatment><date>d1</date></visit>\
          <parent><patient><pname>Pa</pname>\
            <visit><treatment><medication>flu</medication></treatment><date>d3</date></visit>\
          </patient></parent>\
        </patient>\
        <patient><pname>Cal</pname>\
          <visit><treatment><medication>autism</medication></treatment><date>d5</date></visit>\
          <visit><treatment><test>blood</test></treatment><date>d6</date></visit>\
        </patient>\
      </hospital>";

    /// inner: the Fig. 3 autism view; outer: additionally hide the
    /// `parent` ancestry chains from that view.
    fn stacked() -> (Vocabulary, ViewSpec, ViewSpec, Document) {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        let inner = derive(&AccessPolicy::parse(dtd.clone(), HOSPITAL_POLICY).unwrap());
        let outer_policy =
            AccessPolicy::parse(inner.view_dtd().clone(), "ann(patient, parent) = N\n").unwrap();
        let outer = derive(&outer_policy);
        let doc = Document::parse_str(SAMPLE, &vocab).unwrap();
        (vocab, inner, outer, doc)
    }

    #[test]
    fn composed_view_equals_double_materialization() {
        let (_, inner, outer, doc) = stacked();
        let composed = compose_views(&outer, &inner).unwrap();
        // Path 1: materialize inner over T, then outer over that.
        let v1 = materialize(&inner, &doc).unwrap();
        let v2 = materialize(&outer, &v1.doc).unwrap();
        // Path 2: materialize the composed view directly over T.
        let vc = materialize(&composed, &doc).unwrap();
        assert_eq!(vc.doc.to_xml(), v2.doc.to_xml());
        // And the composition really hid the ancestry chain.
        assert!(!vc.doc.to_xml().contains("parent"));
        assert!(vc.doc.to_xml().contains("medication"));
    }

    #[test]
    fn queries_over_composed_views_rewrite_once() {
        let (vocab, inner, outer, doc) = stacked();
        let composed = compose_views(&outer, &inner).unwrap();
        for q in [
            "hospital/patient",
            "hospital/patient/treatment/medication",
            "//medication",
            "//patient[treatment]",
        ] {
            let path = parse_path(q, &vocab).unwrap();
            let mfa = crate::rewrite(&path, &composed);
            let (got, _) = smoqe_hype::evaluate_mfa(&doc, &mfa);
            // Ground truth: evaluate over the doubly-materialized view,
            // mapping origins back through both layers.
            let v1 = materialize(&inner, &doc).unwrap();
            let v2 = materialize(&outer, &v1.doc).unwrap();
            let through_inner: Vec<_> = naive(&v2.doc, &path)
                .iter()
                .map(|n| v1.origin(v2.origin(n)))
                .collect();
            let mut expected = through_inner;
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(got.as_slice(), expected.as_slice(), "query `{q}`");
        }
    }

    #[test]
    fn composition_validates_against_the_source() {
        let (vocab, inner, outer, _) = stacked();
        let composed = compose_views(&outer, &inner).unwrap();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        composed.validate(&dtd).unwrap();
    }

    #[test]
    fn composing_with_identity_is_identity() {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        let inner = ViewSpec::identity(&dtd);
        let outer = derive(&AccessPolicy::parse(dtd.clone(), HOSPITAL_POLICY).unwrap());
        let composed = compose_views(&outer, &inner).unwrap();
        // Composition over the identity view must behave exactly like the
        // outer view alone.
        let doc = Document::parse_str(SAMPLE, &vocab).unwrap();
        let a = materialize(&outer, &doc).unwrap();
        let b = materialize(&composed, &doc).unwrap();
        assert_eq!(a.doc.to_xml(), b.doc.to_xml());
    }

    #[test]
    fn unsatisfiable_composition_is_rejected() {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        let inner = derive(&AccessPolicy::parse(dtd.clone(), HOSPITAL_POLICY).unwrap());
        // An outer view that references `pname`, which the inner view
        // hides entirely.
        let outer = ViewSpec::parse(
            "<!ELEMENT hospital (pname*)>\n<!ELEMENT pname (#PCDATA)>\n\
             sigma(hospital, pname) = patient/pname\n",
            &vocab,
        )
        .unwrap();
        assert!(matches!(
            compose_views(&outer, &inner),
            Err(ViewError::Unsatisfiable(_, _))
        ));
    }

    #[test]
    fn three_level_stacks_compose_associatively() {
        let (vocab, inner, outer, doc) = stacked();
        // Third layer over the outer view: only treatments, flattened.
        let third = ViewSpec::parse(
            "<!ELEMENT hospital (treatment*)>\n\
             <!ELEMENT treatment (medication?)>\n\
             <!ELEMENT medication (#PCDATA)>\n\
             sigma(hospital, treatment) = patient/treatment\n\
             sigma(treatment, medication) = medication\n",
            &vocab,
        )
        .unwrap();
        // (third ∘ outer) ∘ inner  ==  third ∘ (outer ∘ inner)
        let left = compose_views(&compose_views(&third, &outer).unwrap(), &inner).unwrap();
        let right = compose_views(&third, &compose_views(&outer, &inner).unwrap()).unwrap();
        let a = materialize(&left, &doc).unwrap();
        let b = materialize(&right, &doc).unwrap();
        assert_eq!(a.doc.to_xml(), b.doc.to_xml());
        assert!(a.doc.to_xml().starts_with("<hospital>"));
    }
}
