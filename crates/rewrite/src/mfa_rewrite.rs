//! Rewriting queries over virtual views into MFAs over the source.
//!
//! This is SMOQE's central algorithm (§3, "Rewriter"): given a Regular
//! XPath query Q over a (possibly recursively defined) view V, produce an
//! automaton Q′ over the underlying document with **Q′(T) = Q(V(T))** for
//! every source T. Representing Q′ as an MFA keeps it *linear* in |Q|
//! (where the syntactic representation can be exponential — see
//! [`crate::direct`] and experiment E2).
//!
//! ## Construction
//!
//! 1. Compile Q into a view-level MFA (Thompson, linear).
//! 2. For every view NFA, build its **typed product** with the view DTD:
//!    product states are `(query state, view type)` (the type of the view
//!    node the run is at; the view alphabet has one type per label, so
//!    typing is exact).
//! 3. Replace every product transition `((s,A)) --B--> ((t,B))` by a fresh
//!    inlined copy of the NFA of σ(A, B) — the source-level path that
//!    computes B-children of an A-node. σ's own qualifiers compile to
//!    ordinary source-level guards, so conditional and recursive views
//!    come out for free.
//! 4. Rewrite Q's qualifiers recursively: a `HasPath` over the view
//!    becomes a `HasPath` over the source, rewritten with the owning
//!    state's view type as context (memoized per `(predicate, type)`).
//!
//! Size: O(|Q| · |D_V| · max|σ|) states — linear in the query.

use smoqe_automata::{Builder, Mfa, Nfa, NfaId, Pred, PredId, StateId};
use smoqe_rxpath::Path;
use smoqe_view::ViewSpec;
use smoqe_xml::Label;
use std::collections::HashMap;

/// Rewrites `query` (over the view of `spec`) into an MFA over the source
/// document.
///
/// ```
/// use smoqe_rewrite::rewrite;
/// use smoqe_rxpath::parse_path;
/// use smoqe_view::{derive, AccessPolicy, HOSPITAL_POLICY};
/// use smoqe_xml::{Dtd, Vocabulary, HOSPITAL_DTD};
/// let vocab = Vocabulary::new();
/// let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
/// let spec = derive(&AccessPolicy::parse(dtd, HOSPITAL_POLICY).unwrap());
/// // A user query over the view: names are hidden, treatments exposed.
/// let q = parse_path("hospital/patient/treatment/medication", &vocab).unwrap();
/// let mfa = rewrite(&q, &spec);
/// // The rewritten automaton navigates the *source* (through `visit`).
/// assert!(mfa.stats().states > 0);
/// ```
pub fn rewrite(query: &Path, spec: &ViewSpec) -> Mfa {
    rewrite_in(query, spec, Ctx::Document)
}

/// Rewrites `query` relative to a **view node of type `context`** instead
/// of the document root: the resulting MFA runs from the corresponding
/// source node. This is the building block of view composition
/// ([`crate::compose`]), where σ paths of an outer view — which start at
/// inner-view nodes — are rewritten against the inner view.
pub fn rewrite_from(query: &Path, spec: &ViewSpec, context: Label) -> Mfa {
    rewrite_in(query, spec, Ctx::Type(context))
}

fn rewrite_in(query: &Path, spec: &ViewSpec, ctx: Ctx) -> Mfa {
    // Phase 1: view-level MFA.
    let vocab = spec.vocabulary().clone();
    let view_mfa = smoqe_automata::compile(query, &vocab);
    // Phase 2-4: typed product with σ inlining.
    let mut rw = Rewriter {
        spec,
        view_mfa: &view_mfa,
        out: Builder::new(),
        pred_memo: HashMap::new(),
    };
    let top = rw.rewrite_nfa(view_mfa.top(), ctx);
    rw.out.finish(top, &vocab)
}

/// The view-type context a sub-rewrite starts from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Ctx {
    /// The virtual document node (above the view root).
    Document,
    /// A view node of the given type.
    Type(Label),
}

struct Rewriter<'a> {
    spec: &'a ViewSpec,
    view_mfa: &'a Mfa,
    out: Builder,
    /// (view predicate, context type) -> rewritten source predicate.
    pred_memo: HashMap<(PredId, Ctx), PredId>,
}

impl Rewriter<'_> {
    /// The view types reachable in one view step from `ctx`, with the σ
    /// path implementing that step on the source.
    fn view_steps(&self, ctx: Ctx) -> Vec<(Label, Path)> {
        match ctx {
            Ctx::Document => {
                // The view root *is* the source root (same label).
                let root = self.spec.view_dtd().root();
                vec![(root, Path::Label(root))]
            }
            Ctx::Type(a) => self
                .spec
                .view_children(a)
                .into_iter()
                .filter_map(|b| self.spec.sigma(a, b).map(|p| (b, p.clone())))
                .collect(),
        }
    }

    /// Builds the typed-product rewrite of one view NFA, returning the new
    /// source NFA's id in the output arena.
    fn rewrite_nfa(&mut self, view_nfa_id: NfaId, start_ctx: Ctx) -> NfaId {
        let vnfa = self.view_mfa.nfa(view_nfa_id);
        let mut out_nfa = Nfa::new();
        // Product-state map.
        let mut map: HashMap<(StateId, Ctx), StateId> = HashMap::new();
        let mut work: Vec<(StateId, Ctx)> = Vec::new();
        let state_of = |out_nfa: &mut Nfa,
                        work: &mut Vec<(StateId, Ctx)>,
                        map: &mut HashMap<(StateId, Ctx), StateId>,
                        key: (StateId, Ctx)| {
            *map.entry(key).or_insert_with(|| {
                work.push(key);
                out_nfa.add_state()
            })
        };
        let start = state_of(&mut out_nfa, &mut work, &mut map, (vnfa.start(), start_ctx));
        out_nfa.set_start(start);
        // One shared accept: every product accept state ε-joins it.
        let accept = out_nfa.add_state();
        out_nfa.set_accept(accept);

        while let Some((s, ctx)) = work.pop() {
            let from = map[&(s, ctx)];
            if vnfa.is_accept(s) {
                out_nfa.add_eps(from, accept);
            }
            // ε-edges stay within the same context; guards are rewritten
            // against it.
            for e in vnfa.eps_edges(s) {
                let to = state_of(&mut out_nfa, &mut work, &mut map, (e.target, ctx));
                match e.guard {
                    None => out_nfa.add_eps(from, to),
                    Some(g) => {
                        let rewritten = self.rewrite_pred(g, ctx);
                        out_nfa.add_guarded_eps(from, to, rewritten);
                    }
                }
            }
            // Consuming view steps: inline σ.
            let steps = self.view_steps(ctx);
            for t in vnfa.transitions(s) {
                for (b, sigma) in &steps {
                    if !t.test.matches(*b) {
                        continue;
                    }
                    let to = state_of(&mut out_nfa, &mut work, &mut map, (t.target, Ctx::Type(*b)));
                    // A fresh copy of σ's fragment between `from` and `to`;
                    // its qualifiers become source-level predicates in the
                    // output arena.
                    self.out.fragment(&mut out_nfa, sigma, from, to);
                }
            }
        }
        self.out.nfas.push(out_nfa);
        NfaId((self.out.nfas.len() - 1) as u32)
    }

    /// Rewrites a view-level predicate in the given context (memoized).
    fn rewrite_pred(&mut self, pred: PredId, ctx: Ctx) -> PredId {
        if let Some(&p) = self.pred_memo.get(&(pred, ctx)) {
            return p;
        }
        let result = match self.view_mfa.pred(pred) {
            Pred::True => self.out.add_pred(Pred::True),
            // Exposed view nodes carry exactly their source node's direct
            // text, so text comparisons transfer verbatim.
            Pred::TextEq(c) => self.out.add_pred(Pred::TextEq(c.clone())),
            Pred::HasPath(n) => {
                let n = *n;
                let rewritten = self.rewrite_nfa(n, ctx);
                self.out.add_pred(Pred::HasPath(rewritten))
            }
            Pred::Not(p) => {
                let p = *p;
                let sub = self.rewrite_pred(p, ctx);
                self.out.add_pred(Pred::Not(sub))
            }
            Pred::And(ps) => {
                let ps = ps.clone();
                let subs = ps.iter().map(|&p| self.rewrite_pred(p, ctx)).collect();
                self.out.add_pred(Pred::And(subs))
            }
            Pred::Or(ps) => {
                let ps = ps.clone();
                let subs = ps.iter().map(|&p| self.rewrite_pred(p, ctx)).collect();
                self.out.add_pred(Pred::Or(subs))
            }
        };
        self.pred_memo.insert((pred, ctx), result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_hype::evaluate_mfa;
    use smoqe_rxpath::{evaluate, parse_path};
    use smoqe_view::{derive, materialize, AccessPolicy, HOSPITAL_POLICY};
    use smoqe_xml::{Document, Dtd, Vocabulary, HOSPITAL_DTD};

    const SAMPLE: &str = "<hospital>\
        <patient><pname>Ann</pname>\
          <visit><treatment><medication>autism</medication></treatment><date>d1</date></visit>\
          <visit><treatment><test>blood</test></treatment><date>d2</date></visit>\
          <parent><patient><pname>Pa</pname>\
            <visit><treatment><medication>flu</medication></treatment><date>d3</date></visit>\
          </patient></parent>\
        </patient>\
        <patient><pname>Bob</pname>\
          <visit><treatment><medication>flu</medication></treatment><date>d4</date></visit>\
        </patient>\
        <patient><pname>Cal</pname>\
          <visit><treatment><medication>autism</medication></treatment><date>d5</date></visit>\
          <visit><treatment><medication>flu</medication></treatment><date>d6</date></visit>\
        </patient>\
      </hospital>";

    fn setup() -> (Vocabulary, Dtd, ViewSpec, Document) {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        let policy = AccessPolicy::parse(dtd.clone(), HOSPITAL_POLICY).unwrap();
        let spec = derive(&policy);
        let doc = Document::parse_str(SAMPLE, &vocab).unwrap();
        (vocab, dtd, spec, doc)
    }

    /// The paper's correctness statement: Q'(T) == Q(V(T)).
    fn assert_equivalent(query: &str, spec: &ViewSpec, doc: &Document, vocab: &Vocabulary) {
        let q = parse_path(query, vocab).unwrap();
        // Left side: rewrite, evaluate on the source.
        let mfa = rewrite(&q, spec);
        let (rewritten_answers, _) = evaluate_mfa(doc, &mfa);
        // Right side: materialize, evaluate on the view, map to origins.
        let view = materialize(spec, doc).unwrap();
        let view_answers = evaluate(&view.doc, &q);
        let expected = view.origins_of(view_answers.iter());
        assert_eq!(
            rewritten_answers.as_slice(),
            expected.as_slice(),
            "Q'(T) != Q(V(T)) for `{query}`"
        );
    }

    #[test]
    fn rewriting_is_equivalent_on_simple_queries() {
        let (vocab, _, spec, doc) = setup();
        for q in [
            "hospital",
            "hospital/patient",
            "hospital/patient/treatment",
            "hospital/patient/treatment/medication",
            "hospital/patient/parent/patient",
            "//medication",
            "//patient",
            "//treatment",
        ] {
            assert_equivalent(q, &spec, &doc, &vocab);
        }
    }

    #[test]
    fn rewriting_is_equivalent_on_predicates() {
        let (vocab, _, spec, doc) = setup();
        for q in [
            "hospital/patient[treatment]",
            "hospital/patient[treatment/medication = 'autism']",
            "hospital/patient[not(parent)]",
            "hospital/patient[parent/patient/treatment]",
            "//patient[treatment[medication = 'flu']]",
            "//treatment[medication and not(medication = 'flu')]",
            "hospital/patient[treatment and parent]/treatment/medication",
        ] {
            assert_equivalent(q, &spec, &doc, &vocab);
        }
    }

    #[test]
    fn rewriting_is_equivalent_on_closures() {
        let (vocab, _, spec, doc) = setup();
        for q in [
            "hospital/patient/(parent/patient)*",
            "hospital/patient/(parent/patient)*/treatment",
            "hospital/(patient)*",
            "(hospital | hospital/patient)*",
            "hospital/patient/(parent/patient)*[treatment/medication = 'flu']",
        ] {
            assert_equivalent(q, &spec, &doc, &vocab);
        }
    }

    #[test]
    fn identity_view_rewriting_preserves_queries() {
        let (vocab, dtd, _, doc) = setup();
        let spec = ViewSpec::identity(&dtd);
        for q in [
            "hospital/patient/pname",
            "//medication",
            "hospital/patient[visit/treatment/medication = 'autism']/pname",
            "hospital/patient/(parent/patient)*/visit/date",
        ] {
            let path = parse_path(q, &vocab).unwrap();
            let mfa = rewrite(&path, &spec);
            let (got, _) = evaluate_mfa(&doc, &mfa);
            let want = evaluate(&doc, &path);
            assert_eq!(got, want, "identity rewrite changed `{q}`");
        }
    }

    #[test]
    fn hidden_labels_never_leak() {
        let (vocab, _, spec, doc) = setup();
        // Queries over hidden types return nothing through the view.
        for q in [
            "//pname",
            "//visit",
            "//date",
            "//test",
            "hospital/patient/pname",
        ] {
            let path = parse_path(q, &vocab).unwrap();
            let mfa = rewrite(&path, &spec);
            let (got, _) = evaluate_mfa(&doc, &mfa);
            assert!(got.is_empty(), "`{q}` leaked {} nodes", got.len());
        }
    }

    #[test]
    fn rewritten_size_is_linear_in_query() {
        let (vocab, _, spec, _) = setup();
        let mut sizes = Vec::new();
        for n in 1..=8 {
            let q = format!(
                "hospital/patient{}",
                "/(parent/patient)*[treatment]".repeat(n)
            );
            let path = parse_path(&q, &vocab).unwrap();
            let mfa = rewrite(&path, &spec);
            sizes.push((path.size() as f64, mfa.stats().total() as f64));
        }
        for w in sizes.windows(2) {
            let growth = w[1].1 / w[0].1;
            let q_growth = w[1].0 / w[0].0;
            assert!(
                growth <= q_growth * 1.6 + 0.6,
                "superlinear rewrite growth: {growth:.2} vs query {q_growth:.2}"
            );
        }
    }

    #[test]
    fn wildcard_steps_expand_over_view_children() {
        let (vocab, _, spec, doc) = setup();
        assert_equivalent("hospital/*", &spec, &doc, &vocab);
        assert_equivalent("hospital/patient/*", &spec, &doc, &vocab);
        assert_equivalent("//*", &spec, &doc, &vocab);
    }

    #[test]
    fn conditional_sigma_filters_in_rewrite() {
        let (vocab, _, spec, doc) = setup();
        // Bob has flu only: not exposed; Ann and Cal are.
        let q = parse_path("hospital/patient", &vocab).unwrap();
        let mfa = rewrite(&q, &spec);
        let (got, _) = evaluate_mfa(&doc, &mfa);
        // Top-level patients only (Ann, Cal) - Pa is nested under parent.
        let names: Vec<String> = got
            .iter()
            .map(|n| {
                doc.children(n)
                    .find_map(|c| {
                        (doc.label(c) == vocab.lookup("pname")).then(|| doc.string_value(c))
                    })
                    .unwrap_or_default()
            })
            .collect();
        assert_eq!(names, vec!["Ann", "Cal"]);
    }
}
