//! # smoqe-rewrite — answering queries on virtual XML views
//!
//! The reason SMOQE exists (paper §1): views used for access control are
//! *virtual*, so a user query Q over a view V must be rewritten into an
//! equivalent query Q′ over the underlying document T with
//! **Q′(T) = Q(V(T))** — without ever materializing V.
//!
//! * [`rewrite`] — the production path: Q ↦ an [`Mfa`](smoqe_automata::Mfa)
//!   over the source, linear in |Q| (typed product with σ inlining);
//! * [`direct`] — the syntactic rewriting (state elimination back to
//!   Regular XPath), worst-case exponential; kept as the strawman that
//!   experiment E2 measures;
//! * [`compose`] — stacked views (a view over a view) collapsed into one
//!   view over the source, the data-integration use the intro motivates.
//!
//! Regular XPath is *closed* under this rewriting even for recursively
//! defined views — closures in σ (from recursive hidden regions) and
//! closures in Q compose inside the automaton.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
pub mod direct;
pub mod mfa_rewrite;

pub use compose::compose_views;
pub use direct::{mfa_to_path, rewrite_direct, rewrite_direct_from};
pub use mfa_rewrite::{rewrite, rewrite_from};
