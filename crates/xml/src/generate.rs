//! Synthetic document generation from a DTD.
//!
//! The original demo ran on hospital documents that were never published;
//! per the reproduction plan (DESIGN.md §4) we substitute a seeded
//! generator that expands a (possibly recursive) DTD into conforming
//! documents of controllable size and depth. Every generated document
//! validates against its DTD (tested), so workloads exercise exactly the
//! code paths real data would.
//!
//! Generation can target a DOM [`Document`] or stream straight to a writer
//! (for the StAX-mode experiments, where the point is not holding the tree
//! in memory).

use crate::dtd::{ContentModel, Dtd};
use crate::error::XmlError;
use crate::label::{Label, Vocabulary};
use crate::serialize::XmlWriter;
use crate::tree::{Document, TreeBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::Write;

/// Tuning knobs for the generator. All randomness is derived from `seed`,
/// so equal configs produce byte-identical documents.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// RNG seed; equal seeds give equal documents.
    pub seed: u64,
    /// Soft depth budget: once an expansion would exceed it, the generator
    /// picks the shallowest derivation available.
    pub max_depth: usize,
    /// Probability of adding one more repetition inside `*` / `+`.
    pub star_continue: f64,
    /// Hard cap on repetitions of a single starred particle.
    pub max_repeat: usize,
    /// Probability that an optional (`?`) particle is present.
    pub opt_present: f64,
    /// Fallback pool for text content.
    pub text_pool: Vec<String>,
    /// Per-element-type text pools (e.g. medication values).
    pub text_overrides: HashMap<Label, Vec<String>>,
    /// Stop expanding repetitions once roughly this many nodes exist.
    pub target_nodes: Option<usize>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 0xD0C5EED,
            max_depth: 12,
            star_continue: 0.6,
            max_repeat: 8,
            opt_present: 0.5,
            text_pool: vec![
                "alpha".into(),
                "beta".into(),
                "gamma".into(),
                "delta".into(),
            ],
            text_overrides: HashMap::new(),
            target_nodes: None,
        }
    }
}

impl GeneratorConfig {
    /// Convenience: a config with the given seed and node-count target.
    pub fn sized(seed: u64, target_nodes: usize) -> Self {
        GeneratorConfig {
            seed,
            target_nodes: Some(target_nodes),
            ..Default::default()
        }
    }

    /// Sets the text pool for a specific element type.
    pub fn with_text_pool(mut self, label: Label, pool: Vec<String>) -> Self {
        self.text_overrides.insert(label, pool);
        self
    }
}

/// Sink abstraction letting one generator feed both DOM building and
/// streaming serialization.
trait GenSink {
    fn start(&mut self, label: Label) -> Result<(), XmlError>;
    fn text(&mut self, content: &str) -> Result<(), XmlError>;
    fn end(&mut self, label: Label) -> Result<(), XmlError>;
}

struct DomSink {
    builder: TreeBuilder,
}

impl GenSink for DomSink {
    fn start(&mut self, label: Label) -> Result<(), XmlError> {
        self.builder.start_element(label);
        Ok(())
    }
    fn text(&mut self, content: &str) -> Result<(), XmlError> {
        self.builder.text(content);
        Ok(())
    }
    fn end(&mut self, _label: Label) -> Result<(), XmlError> {
        self.builder.end_element();
        Ok(())
    }
}

struct WriterSink<W: Write> {
    writer: XmlWriter<W>,
    names: Vec<std::sync::Arc<str>>,
    vocab: Vocabulary,
}

impl<W: Write> GenSink for WriterSink<W> {
    fn start(&mut self, label: Label) -> Result<(), XmlError> {
        if label.index() >= self.names.len() {
            self.names = self.vocab.snapshot();
        }
        self.writer.start_element(&self.names[label.index()])
    }
    fn text(&mut self, content: &str) -> Result<(), XmlError> {
        self.writer.text(content)
    }
    fn end(&mut self, label: Label) -> Result<(), XmlError> {
        let _ = label;
        self.writer.end_element()
    }
}

struct Generator<'a, S: GenSink> {
    dtd: &'a Dtd,
    config: &'a GeneratorConfig,
    rng: StdRng,
    min_heights: HashMap<Label, usize>,
    nodes_emitted: usize,
    sink: S,
}

impl<'a, S: GenSink> Generator<'a, S> {
    fn new(dtd: &'a Dtd, config: &'a GeneratorConfig, sink: S) -> Result<Self, XmlError> {
        let min_heights = dtd.min_heights();
        if !min_heights.contains_key(&dtd.root()) {
            return Err(XmlError::Invalid(format!(
                "element type <{}> has no finite expansion; cannot generate",
                dtd.vocabulary().name(dtd.root())
            )));
        }
        Ok(Generator {
            dtd,
            config,
            rng: StdRng::seed_from_u64(config.seed),
            min_heights,
            nodes_emitted: 0,
            sink,
        })
    }

    fn budget_exhausted(&self) -> bool {
        self.config
            .target_nodes
            .map(|t| self.nodes_emitted >= t)
            .unwrap_or(false)
    }

    /// Depth still available below the current element.
    fn fits(&self, label: Label, remaining_depth: usize) -> bool {
        self.min_heights
            .get(&label)
            .map(|&h| h <= remaining_depth)
            .unwrap_or(false)
    }

    fn emit_element(&mut self, label: Label, remaining_depth: usize) -> Result<(), XmlError> {
        self.emit_element_inner(label, remaining_depth, false)
    }

    fn emit_element_inner(
        &mut self,
        label: Label,
        remaining_depth: usize,
        at_root: bool,
    ) -> Result<(), XmlError> {
        self.nodes_emitted += 1;
        self.sink.start(label)?;
        let model = self
            .dtd
            .production(label)
            .cloned()
            .unwrap_or(ContentModel::Empty);
        self.emit_model(&model, label, remaining_depth.saturating_sub(1), at_root)?;
        self.sink.end(label)
    }

    fn emit_text_for(&mut self, label: Label) -> Result<(), XmlError> {
        self.nodes_emitted += 1;
        let pool = self
            .config
            .text_overrides
            .get(&label)
            .unwrap_or(&self.config.text_pool);
        if pool.is_empty() {
            let n: u32 = self.rng.random_range(0..1_000_000);
            let v = format!("v{n}");
            self.sink.text(&v)
        } else {
            let i = self.rng.random_range(0..pool.len());
            // Clone to release the borrow on config before using sink.
            let v = pool[i].clone();
            self.sink.text(&v)
        }
    }

    /// How many repetitions of a starred particle to emit.
    fn repetitions(&mut self, at_least_one: bool) -> usize {
        let mut n = usize::from(at_least_one);
        while n < self.config.max_repeat
            && !self.budget_exhausted()
            && self.rng.random_bool(self.config.star_continue)
        {
            n += 1;
        }
        n
    }

    fn emit_model(
        &mut self,
        model: &ContentModel,
        context: Label,
        remaining_depth: usize,
        at_root: bool,
    ) -> Result<(), XmlError> {
        match model {
            ContentModel::Empty => Ok(()),
            // ANY: keep generated documents simple - emit text.
            ContentModel::Any | ContentModel::Text => self.emit_text_for(context),
            ContentModel::Elem(l) => self.emit_element(*l, remaining_depth),
            ContentModel::Seq(cs) => {
                for c in cs {
                    self.emit_model(c, context, remaining_depth, at_root)?;
                }
                Ok(())
            }
            ContentModel::Choice(cs) => {
                if cs.is_empty() {
                    return Ok(());
                }
                // Candidates that fit the depth budget; if none, take the
                // globally shallowest arm.
                let fitting: Vec<&ContentModel> = cs
                    .iter()
                    .filter(|c| self.model_fits(c, remaining_depth))
                    .collect();
                let chosen = if fitting.is_empty() {
                    cs.iter()
                        .min_by_key(|c| self.model_min_height(c).unwrap_or(usize::MAX))
                        .expect("non-empty choice")
                } else {
                    fitting[self.rng.random_range(0..fitting.len())]
                };
                let chosen = chosen.clone();
                self.emit_model(&chosen, context, remaining_depth, at_root)
            }
            ContentModel::Star(c) => {
                if !self.model_fits(c, remaining_depth) || self.budget_exhausted() {
                    return Ok(());
                }
                if at_root && self.config.target_nodes.is_some() {
                    // Root-level repetition is the budget driver: keep
                    // appending independent subtrees until the node
                    // target is met.
                    while !self.budget_exhausted() {
                        self.emit_model(c, context, remaining_depth, false)?;
                    }
                    return Ok(());
                }
                let n = self.repetitions(false);
                for _ in 0..n {
                    self.emit_model(c, context, remaining_depth, false)?;
                }
                Ok(())
            }
            ContentModel::Plus(c) => {
                if at_root && self.config.target_nodes.is_some() {
                    self.emit_model(c, context, remaining_depth, false)?;
                    while !self.budget_exhausted() {
                        self.emit_model(c, context, remaining_depth, false)?;
                    }
                    return Ok(());
                }
                let n = if self.model_fits(c, remaining_depth) && !self.budget_exhausted() {
                    self.repetitions(true).max(1)
                } else {
                    1 // must emit one even past budget to stay valid
                };
                for _ in 0..n {
                    self.emit_model(c, context, remaining_depth, false)?;
                }
                Ok(())
            }
            ContentModel::Opt(c) => {
                if self.model_fits(c, remaining_depth)
                    && !self.budget_exhausted()
                    && self.rng.random_bool(self.config.opt_present)
                {
                    self.emit_model(c, context, remaining_depth, false)?;
                }
                Ok(())
            }
            ContentModel::Mixed(ls) => {
                // A small alternation of text and allowed elements.
                let n = self.repetitions(false);
                for _ in 0..n {
                    let pick_text = ls.is_empty() || self.rng.random_bool(0.5);
                    if pick_text {
                        self.emit_text_for(context)?;
                    } else {
                        let l = ls[self.rng.random_range(0..ls.len())];
                        if self.fits(l, remaining_depth) {
                            self.emit_element(l, remaining_depth)?;
                        } else {
                            self.emit_text_for(context)?;
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn model_min_height(&self, m: &ContentModel) -> Option<usize> {
        match m {
            ContentModel::Empty
            | ContentModel::Any
            | ContentModel::Text
            | ContentModel::Mixed(_) => Some(0),
            ContentModel::Elem(l) => self.min_heights.get(l).copied(),
            ContentModel::Seq(cs) => {
                let mut max = 0;
                for c in cs {
                    max = max.max(self.model_min_height(c)?);
                }
                Some(max)
            }
            ContentModel::Choice(cs) => cs.iter().filter_map(|c| self.model_min_height(c)).min(),
            ContentModel::Star(_) | ContentModel::Opt(_) => Some(0),
            ContentModel::Plus(c) => self.model_min_height(c),
        }
    }

    fn model_fits(&self, m: &ContentModel, remaining_depth: usize) -> bool {
        self.model_min_height(m)
            .map(|h| h <= remaining_depth)
            .unwrap_or(false)
    }
}

/// Generates a DOM document conforming to `dtd`.
pub fn generate(dtd: &Dtd, config: &GeneratorConfig) -> Result<Document, XmlError> {
    let sink = DomSink {
        builder: TreeBuilder::new(dtd.vocabulary().clone()),
    };
    let mut g = Generator::new(dtd, config, sink)?;
    let root = dtd.root();
    let depth = config.max_depth.max(g.min_heights[&root]);
    g.emit_element_inner(root, depth, true)?;
    g.sink.builder.finish()
}

/// Generates a document conforming to `dtd`, streaming it to `writer`
/// without building a tree. Returns the number of nodes emitted.
pub fn generate_to_writer<W: Write>(
    dtd: &Dtd,
    config: &GeneratorConfig,
    writer: W,
) -> Result<usize, XmlError> {
    let sink = WriterSink {
        writer: XmlWriter::new(writer),
        names: dtd.vocabulary().snapshot(),
        vocab: dtd.vocabulary().clone(),
    };
    let mut g = Generator::new(dtd, config, sink)?;
    let root = dtd.root();
    let depth = config.max_depth.max(g.min_heights[&root]);
    g.emit_element_inner(root, depth, true)?;
    g.sink.writer.flush()?;
    Ok(g.nodes_emitted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::HOSPITAL_DTD;

    fn hospital() -> (Vocabulary, Dtd) {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        (vocab, dtd)
    }

    #[test]
    fn generated_documents_validate() {
        let (_, dtd) = hospital();
        for seed in 0..20 {
            let config = GeneratorConfig {
                seed,
                ..Default::default()
            };
            let doc = generate(&dtd, &config).unwrap();
            dtd.validate(&doc)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, dtd) = hospital();
        let config = GeneratorConfig::sized(42, 500);
        let a = generate(&dtd, &config).unwrap();
        let b = generate(&dtd, &config).unwrap();
        assert_eq!(a.to_xml(), b.to_xml());
    }

    #[test]
    fn different_seeds_differ() {
        let (_, dtd) = hospital();
        let a = generate(&dtd, &GeneratorConfig::sized(1, 500)).unwrap();
        let b = generate(&dtd, &GeneratorConfig::sized(2, 500)).unwrap();
        assert_ne!(a.to_xml(), b.to_xml());
    }

    #[test]
    fn target_nodes_is_roughly_respected() {
        let (_, dtd) = hospital();
        let config = GeneratorConfig {
            star_continue: 0.9,
            max_repeat: 20,
            ..GeneratorConfig::sized(7, 2_000)
        };
        let doc = generate(&dtd, &config).unwrap();
        let n = doc.node_count();
        assert!(n >= 2_000, "got {n}");
        // Overshoot is bounded by one subtree worth of nodes.
        assert!(n < 6_000, "got {n}");
    }

    #[test]
    fn depth_budget_bounds_recursion() {
        let (_, dtd) = hospital();
        let config = GeneratorConfig {
            max_depth: 6,
            star_continue: 0.95,
            ..GeneratorConfig::sized(3, 5_000)
        };
        let doc = generate(&dtd, &config).unwrap();
        // patient needs height 2; allow a small excess for forced Plus arms.
        assert!(doc.max_depth() <= 10, "depth {}", doc.max_depth());
    }

    #[test]
    fn streaming_and_dom_generation_agree() {
        let (vocab, dtd) = hospital();
        let config = GeneratorConfig::sized(11, 300);
        let doc = generate(&dtd, &config).unwrap();
        let mut out = Vec::new();
        let n = generate_to_writer(&dtd, &config, &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), doc.to_xml());
        assert_eq!(n, doc.node_count());
        let _ = vocab;
    }

    #[test]
    fn text_overrides_are_used() {
        let (vocab, dtd) = hospital();
        let medication = vocab.lookup("medication").unwrap();
        let config = GeneratorConfig {
            star_continue: 0.8,
            ..GeneratorConfig::sized(5, 1_000)
        }
        .with_text_pool(medication, vec!["autism".into()]);
        let doc = generate(&dtd, &config).unwrap();
        let mut saw = false;
        for n in doc.nodes_labeled(medication) {
            assert_eq!(doc.string_value(n), "autism");
            saw = true;
        }
        assert!(saw, "no medication nodes generated");
    }

    #[test]
    fn nonterminating_dtd_rejected() {
        let vocab = Vocabulary::new();
        // a -> b, b -> a: no finite expansion.
        let dtd = Dtd::parse("<!ELEMENT a (b)><!ELEMENT b (a)>", &vocab).unwrap();
        assert!(generate(&dtd, &GeneratorConfig::default()).is_err());
    }
}
