//! The one low-level XML tokenizer shared by every consumer.
//!
//! Historically the DOM builder ([`crate::parse`]) and the StAX pull parser
//! ([`crate::stax`]) each carried their own scanning logic; this module is
//! the single SWAR-accelerated scan both are built on, so DOM mode, stream
//! mode and the batched stream driver agree on tokenization *by
//! construction*. [`Scanner`] pulls [`ScanToken`]s on demand; push-style
//! consumers implement [`ScanSink`] and call [`scan`].
//!
//! Every token carries the **byte span** it occupies in the input stream
//! (global offsets, stable across chunked reads), which is what lets the
//! span-based [`crate::tree::Document`] reference the raw buffer instead of
//! copying names and text out of it. Text and attribute-value tokens also
//! report whether their decoded form equals the raw source bytes ("clean"),
//! so entity-free content — the overwhelming majority in data-centric
//! documents — needs no owned copy at all.
//!
//! Supported syntax: elements, attributes (single or double quoted),
//! character data, the five predefined entities plus numeric character
//! references, CDATA sections, comments, processing instructions and a
//! DOCTYPE declaration (with optional internal subset), all of which except
//! elements/text/attributes are skipped.

use crate::error::XmlError;
use std::io::BufRead;

/// A single attribute on an element, as scanned (entities resolved).
///
/// This is the stream-level attribute representation used by
/// [`crate::stax::RawEvent`] / [`crate::stax::XmlEvent`]; the DOM stores
/// attributes more compactly (interned name + value span, see
/// [`crate::tree::Document::attributes`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written.
    pub name: String,
    /// Attribute value with entities resolved.
    pub value: String,
}

/// Source span of an attribute *value* (the bytes between the quotes),
/// parallel to the scanner's attribute list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttrSpan {
    /// First byte of the value (just past the opening quote).
    pub value_start: u64,
    /// One past the last byte of the value (the closing quote).
    pub value_end: u64,
    /// Whether the raw value bytes equal the decoded value (no entities).
    pub clean: bool,
}

/// A piece of character data: one chardata run or one CDATA section.
///
/// Adjacent pieces (e.g. text split by a comment or a CDATA boundary)
/// are distinct tokens; tree builders merge them into one text node.
#[derive(Clone, Copy, Debug)]
pub struct TextPiece<'a> {
    /// The decoded text (entities resolved, CDATA unwrapped).
    pub decoded: &'a str,
    /// First byte of the piece in the source (for CDATA: the `<`).
    pub start: u64,
    /// One past the last byte of the piece (for CDATA: past the `]]>`).
    pub end: u64,
    /// A span whose raw bytes equal `decoded` verbatim: the full piece for
    /// entity-free chardata, the inner content for CDATA, `None` when
    /// entities were resolved.
    pub clean: Option<(u64, u64)>,
}

/// A token pulled from the scanner. Borrowed data lives in scanner-owned
/// scratch reused token to token.
#[derive(Debug)]
pub enum ScanToken<'a> {
    /// `<name attr="v" ...>` (also emitted for self-closing elements,
    /// immediately followed by a matching [`ScanToken::EndElement`]).
    StartElement {
        /// Element name as written.
        name: &'a str,
        /// Attributes in source order, entities resolved.
        attributes: &'a [Attribute],
        /// Value spans parallel to `attributes`.
        attr_spans: &'a [AttrSpan],
        /// Offset of the `<` of this start tag.
        tag_start: u64,
    },
    /// One piece of character data.
    Text(TextPiece<'a>),
    /// `</name>` (or the synthetic end of a self-closing tag).
    EndElement {
        /// Element name as written.
        name: &'a str,
        /// One past the `>` that closed this element.
        tag_end: u64,
    },
    /// End of input after the root element closed.
    EndDocument,
}

/// Push-style consumer of a document scan (see [`scan`]).
pub trait ScanSink {
    /// A start tag was scanned.
    fn start_element(
        &mut self,
        name: &str,
        attributes: &[Attribute],
        attr_spans: &[AttrSpan],
        tag_start: u64,
    ) -> Result<(), XmlError>;
    /// A piece of character data was scanned.
    fn text(&mut self, piece: TextPiece<'_>) -> Result<(), XmlError>;
    /// An end tag (possibly synthetic, for self-closing tags) was scanned.
    fn end_element(&mut self, name: &str, tag_end: u64) -> Result<(), XmlError>;
}

/// Drives `scanner` to completion, pushing every token into `sink`.
pub fn scan<R: BufRead, S: ScanSink>(
    scanner: &mut Scanner<R>,
    sink: &mut S,
) -> Result<(), XmlError> {
    loop {
        match scanner.next_token()? {
            ScanToken::StartElement {
                name,
                attributes,
                attr_spans,
                tag_start,
            } => sink.start_element(name, attributes, attr_spans, tag_start)?,
            ScanToken::Text(piece) => sink.text(piece)?,
            ScanToken::EndElement { name, tag_end } => sink.end_element(name, tag_end)?,
            ScanToken::EndDocument => return Ok(()),
        }
    }
}

/// Cap on bytes copied out of the reader per refill. Bounds the scanner's
/// own buffer even when the underlying `BufRead` (e.g. a whole in-memory
/// slice) offers arbitrarily large chunks.
const CHUNK_CAP: usize = 64 * 1024;

/// The streaming tokenizer over any [`BufRead`].
///
/// Never buffers more than the current token, so peak memory is
/// O(token + open-element stack) regardless of document size.
pub struct Scanner<R: BufRead> {
    reader: R,
    /// Current input chunk (copied out of the reader's buffer so scans
    /// can run without holding a borrow of the reader).
    buf: Vec<u8>,
    /// Next unread byte within `buf`.
    pos: usize,
    offset: u64,
    line: u64,
    /// Names of currently open elements (well-formedness checking):
    /// concatenated name bytes plus per-element lengths — no per-element
    /// allocation.
    open_names: Vec<u8>,
    open_lens: Vec<u32>,
    seen_root: bool,
    finished: bool,
    /// Pending EndElement for a self-closing tag.
    pending_end: bool,
    /// Offset just past the `/>` of that self-closing tag.
    pending_end_pos: u64,
    keep_whitespace: bool,
    /// Reusable scratch for the current token's name / text / attributes.
    name_buf: Vec<u8>,
    end_name_buf: Vec<u8>,
    text_buf: Vec<u8>,
    attr_buf: Vec<Attribute>,
    attr_spans: Vec<AttrSpan>,
}

impl Scanner<&[u8]> {
    /// Scans an in-memory string.
    #[allow(clippy::should_implement_trait)] // not fallible-parse semantics
    pub fn from_str(input: &str) -> Scanner<&[u8]> {
        Scanner::new(input.as_bytes())
    }
}

impl<R: BufRead> Scanner<R> {
    /// Creates a scanner over `reader`. Whitespace-only character data
    /// between elements is skipped by default (see
    /// [`Scanner::keep_whitespace`]).
    pub fn new(reader: R) -> Self {
        Scanner {
            reader,
            buf: Vec::new(),
            pos: 0,
            offset: 0,
            line: 1,
            open_names: Vec::new(),
            open_lens: Vec::new(),
            seen_root: false,
            finished: false,
            pending_end: false,
            pending_end_pos: 0,
            keep_whitespace: false,
            name_buf: Vec::new(),
            end_name_buf: Vec::new(),
            text_buf: Vec::new(),
            attr_buf: Vec::new(),
            attr_spans: Vec::new(),
        }
    }

    /// Controls whether whitespace-only text tokens are reported
    /// (default: `false`, matching data-centric processing).
    pub fn keep_whitespace(mut self, keep: bool) -> Self {
        self.keep_whitespace = keep;
        self
    }

    /// Current nesting depth (number of open elements).
    pub fn depth(&self) -> usize {
        self.open_lens.len()
    }

    /// Bytes consumed so far.
    pub fn byte_offset(&self) -> u64 {
        self.offset
    }

    fn err(&self, msg: impl std::fmt::Display) -> XmlError {
        XmlError::Malformed(format!(
            "{msg} at offset {} (line {})",
            self.offset, self.line
        ))
    }

    /// Replaces the exhausted chunk with the reader's next one. Returns
    /// `false` at end of input. Copying the chunk keeps byte scans free of
    /// any borrow of the reader (one memcpy per chunk, not per byte).
    fn refill(&mut self) -> Result<bool, XmlError> {
        debug_assert!(self.pos >= self.buf.len());
        self.buf.clear();
        self.pos = 0;
        loop {
            match self.reader.fill_buf() {
                Ok(chunk) => {
                    if chunk.is_empty() {
                        return Ok(false);
                    }
                    let n = chunk.len().min(CHUNK_CAP);
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.reader.consume(n);
                    return Ok(true);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(XmlError::Io(e)),
            }
        }
    }

    #[inline]
    fn peek(&mut self) -> Result<Option<u8>, XmlError> {
        if self.pos < self.buf.len() {
            return Ok(Some(self.buf[self.pos]));
        }
        if self.refill()? {
            Ok(Some(self.buf[self.pos]))
        } else {
            Ok(None)
        }
    }

    #[inline]
    fn bump(&mut self) -> Result<Option<u8>, XmlError> {
        let b = self.peek()?;
        if let Some(c) = b {
            self.pos += 1;
            self.offset += 1;
            if c == b'\n' {
                self.line += 1;
            }
        }
        Ok(b)
    }

    /// Bulk-consumes bytes while `pred` holds, appending them to `out`.
    /// Scans whole chunks at a time instead of going byte-by-byte through
    /// `peek`/`bump` — this is what makes the sequential scan IO-bound
    /// rather than dispatch-bound.
    fn take_while_into(
        &mut self,
        out: &mut Vec<u8>,
        pred: impl Fn(u8) -> bool,
    ) -> Result<(), XmlError> {
        loop {
            if self.pos >= self.buf.len() && !self.refill()? {
                return Ok(()); // end of input
            }
            let chunk = &self.buf[self.pos..];
            let n = chunk.iter().position(|&b| !pred(b)).unwrap_or(chunk.len());
            self.consume_into(out, n);
            if self.pos < self.buf.len() {
                return Ok(()); // stopped at a non-matching byte
            }
        }
    }

    /// Bulk-consumes bytes until `a` or `b` is seen, appending them to
    /// `out`. Word-at-a-time (SWAR) search: character data is the bulk of
    /// a document, so this is the single hottest scan of stream mode.
    fn take_until2(&mut self, out: &mut Vec<u8>, a: u8, b: u8) -> Result<(), XmlError> {
        loop {
            if self.pos >= self.buf.len() && !self.refill()? {
                return Ok(());
            }
            let n = memchr2(a, b, &self.buf[self.pos..]);
            self.consume_into(out, n);
            if self.pos < self.buf.len() {
                return Ok(());
            }
        }
    }

    /// Like [`Scanner::take_until2`] with three delimiters (attribute
    /// values stop at the quote, `&`, or `<`).
    fn take_until3(&mut self, out: &mut Vec<u8>, a: u8, b: u8, c: u8) -> Result<(), XmlError> {
        loop {
            if self.pos >= self.buf.len() && !self.refill()? {
                return Ok(());
            }
            let n = memchr3(a, b, c, &self.buf[self.pos..]);
            self.consume_into(out, n);
            if self.pos < self.buf.len() {
                return Ok(());
            }
        }
    }

    #[inline]
    fn consume_into(&mut self, out: &mut Vec<u8>, n: usize) {
        if n == 0 {
            return;
        }
        let consumed = &self.buf[self.pos..self.pos + n];
        out.extend_from_slice(consumed);
        self.line += count_newlines(consumed);
        self.offset += n as u64;
        self.pos += n;
    }

    /// Bulk-skips bytes while `pred` holds.
    fn skip_while(&mut self, pred: impl Fn(u8) -> bool) -> Result<(), XmlError> {
        loop {
            if self.pos >= self.buf.len() && !self.refill()? {
                return Ok(());
            }
            let chunk = &self.buf[self.pos..];
            let n = chunk.iter().position(|&b| !pred(b)).unwrap_or(chunk.len());
            if n > 0 {
                let consumed = &self.buf[self.pos..self.pos + n];
                self.line += count_newlines(consumed);
                self.offset += n as u64;
                self.pos += n;
            }
            if self.pos < self.buf.len() {
                return Ok(());
            }
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), XmlError> {
        match self.bump()? {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(self.err(format_args!(
                "expected '{}', found '{}'",
                want as char, b as char
            ))),
            None => Err(self.err(format_args!(
                "expected '{}', found end of input",
                want as char
            ))),
        }
    }

    fn skip_ws(&mut self) -> Result<(), XmlError> {
        self.skip_while(|b| b.is_ascii_whitespace())
    }

    /// Reads a name into `out` (cleared first). `out` is typically one of
    /// the scanner's scratch buffers, temporarily moved out to satisfy
    /// borrows.
    fn read_name_buf(&mut self, out: &mut Vec<u8>) -> Result<(), XmlError> {
        out.clear();
        // Fast path: the whole name sits inside the current chunk (names
        // contain no newlines, so no line bookkeeping either).
        let start = self.pos;
        let mut i = start;
        while i < self.buf.len() && is_name_byte(self.buf[i]) {
            i += 1;
        }
        out.extend_from_slice(&self.buf[start..i]);
        self.offset += (i - start) as u64;
        self.pos = i;
        if i >= self.buf.len() {
            // The name may continue into the next chunk.
            self.take_while_into(out, is_name_byte)?;
        }
        if out.is_empty() {
            return Err(self.err("expected a name"));
        }
        Ok(())
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let mut name = Vec::new();
        self.read_name_buf(&mut name)?;
        self.utf8(name)
    }

    fn utf8(&self, bytes: Vec<u8>) -> Result<String, XmlError> {
        String::from_utf8(bytes).map_err(|_| self.err("invalid UTF-8"))
    }

    /// Reads `&...;` after the '&' has been peeked (not consumed).
    fn read_entity(&mut self, out: &mut Vec<u8>) -> Result<(), XmlError> {
        self.expect(b'&')?;
        let mut ent = String::new();
        loop {
            match self.bump()? {
                Some(b';') => break,
                Some(b) if ent.len() < 16 => ent.push(b as char),
                Some(_) => return Err(self.err("entity reference too long")),
                None => return Err(self.err("unterminated entity reference")),
            }
        }
        match resolve_entity(&ent) {
            Some(c) => {
                let mut tmp = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut tmp).as_bytes());
            }
            None => return Err(self.err(format_args!("unknown entity '&{ent};'"))),
        }
        Ok(())
    }

    /// Skips `<!-- ... -->`; the leading `<!` has been consumed and the next
    /// bytes are `--`.
    fn skip_comment(&mut self) -> Result<(), XmlError> {
        self.expect(b'-')?;
        self.expect(b'-')?;
        let mut dashes = 0;
        loop {
            match self.bump()? {
                Some(b'-') => dashes += 1,
                Some(b'>') if dashes >= 2 => return Ok(()),
                Some(_) => dashes = 0,
                None => return Err(self.err("unterminated comment")),
            }
        }
    }

    /// Skips `<?...?>`; the leading `<?` has been consumed.
    fn skip_pi(&mut self) -> Result<(), XmlError> {
        let mut question = false;
        loop {
            match self.bump()? {
                Some(b'?') => question = true,
                Some(b'>') if question => return Ok(()),
                Some(_) => question = false,
                None => return Err(self.err("unterminated processing instruction")),
            }
        }
    }

    /// Skips `<!DOCTYPE ...>` including a bracketed internal subset; the
    /// leading `<!` has been consumed.
    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        let mut depth = 0i32;
        loop {
            match self.bump()? {
                Some(b'[') => depth += 1,
                Some(b']') => depth -= 1,
                Some(b'>') if depth <= 0 => return Ok(()),
                Some(_) => {}
                None => return Err(self.err("unterminated DOCTYPE")),
            }
        }
    }

    /// Reads `<![CDATA[ ... ]]>` content; `<!` consumed, next byte is `[`.
    /// Returns the span of the *content* (between `<![CDATA[` and `]]>`),
    /// whose raw bytes always equal what was appended to `out`.
    fn read_cdata(&mut self, out: &mut Vec<u8>) -> Result<(u64, u64), XmlError> {
        for want in *b"[CDATA[" {
            self.expect(want)?;
        }
        let content_start = self.offset;
        let mut brackets: u32 = 0;
        loop {
            match self.bump()? {
                Some(b']') => brackets += 1,
                Some(b'>') if brackets >= 2 => {
                    // `]]]>`-style runs: everything before the final `]]` is
                    // content.
                    for _ in 0..brackets - 2 {
                        out.push(b']');
                    }
                    return Ok((content_start, self.offset - 3));
                }
                Some(b) => {
                    for _ in 0..brackets {
                        out.push(b']');
                    }
                    brackets = 0;
                    out.push(b);
                }
                None => return Err(self.err("unterminated CDATA section")),
            }
        }
    }

    /// Reads the attribute list into `self.attr_buf` / `self.attr_spans`
    /// (cleared first), returning whether the tag was self-closing.
    fn read_attributes(&mut self) -> Result<bool, XmlError> {
        let mut attrs = std::mem::take(&mut self.attr_buf);
        let mut spans = std::mem::take(&mut self.attr_spans);
        attrs.clear();
        spans.clear();
        let self_closing = self.read_attributes_into(&mut attrs, &mut spans);
        self.attr_buf = attrs;
        self.attr_spans = spans;
        self_closing
    }

    fn read_attributes_into(
        &mut self,
        attrs: &mut Vec<Attribute>,
        spans: &mut Vec<AttrSpan>,
    ) -> Result<bool, XmlError> {
        // Fast path: `<name>` with no attributes and no whitespace — the
        // overwhelming shape in data-centric documents.
        if self.pos < self.buf.len() && self.buf[self.pos] == b'>' {
            self.pos += 1;
            self.offset += 1;
            return Ok(false);
        }
        loop {
            self.skip_ws()?;
            match self.peek()? {
                Some(b'>') => {
                    self.bump()?;
                    return Ok(false);
                }
                Some(b'/') => {
                    self.bump()?;
                    self.expect(b'>')?;
                    return Ok(true);
                }
                Some(b) if is_name_byte(b) => {
                    let name = self.read_name()?;
                    self.skip_ws()?;
                    self.expect(b'=')?;
                    self.skip_ws()?;
                    let quote = match self.bump()? {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    let value_start = self.offset;
                    let mut clean = true;
                    let mut value = Vec::new();
                    loop {
                        self.take_until3(&mut value, quote, b'&', b'<')?;
                        match self.peek()? {
                            Some(q) if q == quote => break,
                            Some(b'&') => {
                                clean = false;
                                self.read_entity(&mut value)?;
                            }
                            Some(b'<') => return Err(self.err("'<' in attribute value")),
                            Some(_) => unreachable!("take_until3 stops on delimiters"),
                            None => return Err(self.err("unterminated attribute value")),
                        }
                    }
                    let value_end = self.offset;
                    self.bump()?; // closing quote
                    let value = self.utf8(value)?;
                    attrs.push(Attribute { name, value });
                    spans.push(AttrSpan {
                        value_start,
                        value_end,
                        clean,
                    });
                }
                Some(b) => return Err(self.err(format_args!("unexpected '{}' in tag", b as char))),
                None => return Err(self.err("unterminated start tag")),
            }
        }
    }

    /// Pops the innermost open element into `end_name_buf`.
    fn pop_open(&mut self) {
        let len = *self.open_lens.last().expect("pop with an open element") as usize;
        let start = self.open_names.len() - len;
        self.end_name_buf.clear();
        self.end_name_buf
            .extend_from_slice(&self.open_names[start..]);
        self.open_lens.pop();
        self.open_names.truncate(start);
        if self.open_lens.is_empty() {
            self.finished = true;
        }
    }

    /// Validates scratch bytes as UTF-8 for a borrowed return.
    fn utf8_ref<'b>(&self, bytes: &'b [u8]) -> Result<&'b str, XmlError> {
        std::str::from_utf8(bytes).map_err(|_| self.err("invalid UTF-8"))
    }

    /// Pulls the next token. Names, text and the attribute list are
    /// borrowed from scanner-owned scratch reused token to token.
    pub fn next_token(&mut self) -> Result<ScanToken<'_>, XmlError> {
        if self.pending_end {
            self.pending_end = false;
            self.pop_open();
            let name = std::str::from_utf8(&self.end_name_buf).expect("was validated on open");
            return Ok(ScanToken::EndElement {
                name,
                tag_end: self.pending_end_pos,
            });
        }
        if self.finished {
            // Allow trailing whitespace / comments / PIs after the root.
            loop {
                self.skip_ws()?;
                match self.peek()? {
                    None => return Ok(ScanToken::EndDocument),
                    Some(b'<') => {
                        self.bump()?;
                        match self.peek()? {
                            Some(b'!') => {
                                self.bump()?;
                                self.skip_comment()?;
                            }
                            Some(b'?') => {
                                self.bump()?;
                                self.skip_pi()?;
                            }
                            _ => return Err(self.err("content after root element")),
                        }
                    }
                    Some(_) => return Err(self.err("content after root element")),
                }
            }
        }
        loop {
            if self.open_lens.is_empty() {
                self.skip_ws()?;
            }
            let Some(b) = self.peek()? else {
                return Err(if self.open_lens.is_empty() && !self.seen_root {
                    self.err("empty document")
                } else {
                    self.err(format_args!(
                        "end of input with {} unclosed element(s)",
                        self.open_lens.len()
                    ))
                });
            };
            if b == b'<' {
                let tag_start = self.offset;
                self.bump()?;
                match self.peek()? {
                    Some(b'/') => {
                        self.bump()?;
                        let mut name = std::mem::take(&mut self.end_name_buf);
                        let res = self.read_name_buf(&mut name);
                        self.end_name_buf = name;
                        res?;
                        // Fast path: `</name>` with no trailing whitespace.
                        if self.pos < self.buf.len() && self.buf[self.pos] == b'>' {
                            self.pos += 1;
                            self.offset += 1;
                        } else {
                            self.skip_ws()?;
                            self.expect(b'>')?;
                        }
                        let Some(&len) = self.open_lens.last() else {
                            let name = String::from_utf8_lossy(&self.end_name_buf).into_owned();
                            return Err(self.err(format_args!("unmatched end tag </{name}>")));
                        };
                        let start = self.open_names.len() - len as usize;
                        if self.open_names[start..] != self.end_name_buf[..] {
                            let open = String::from_utf8_lossy(&self.open_names[start..]);
                            let name = String::from_utf8_lossy(&self.end_name_buf);
                            return Err(self.err(format_args!(
                                "mismatched end tag </{name}>, expected </{open}>"
                            )));
                        }
                        self.open_lens.pop();
                        self.open_names.truncate(start);
                        if self.open_lens.is_empty() {
                            self.finished = true;
                        }
                        let name =
                            std::str::from_utf8(&self.end_name_buf).expect("was validated on open");
                        return Ok(ScanToken::EndElement {
                            name,
                            tag_end: self.offset,
                        });
                    }
                    Some(b'!') => {
                        self.bump()?;
                        match self.peek()? {
                            Some(b'-') => self.skip_comment()?,
                            Some(b'[') => {
                                if self.open_lens.is_empty() {
                                    return Err(self.err("CDATA outside root element"));
                                }
                                let mut text = std::mem::take(&mut self.text_buf);
                                text.clear();
                                let res = self.read_cdata(&mut text);
                                self.text_buf = text;
                                let (content_start, content_end) = res?;
                                if !self.text_buf.is_empty() {
                                    let text = self.utf8_ref(&self.text_buf)?;
                                    return Ok(ScanToken::Text(TextPiece {
                                        decoded: text,
                                        start: tag_start,
                                        end: self.offset,
                                        clean: Some((content_start, content_end)),
                                    }));
                                }
                            }
                            Some(b'D' | b'd') => self.skip_doctype()?,
                            _ => return Err(self.err("unsupported '<!' construct")),
                        }
                    }
                    Some(b'?') => {
                        self.bump()?;
                        self.skip_pi()?;
                    }
                    _ => {
                        if self.open_lens.is_empty() && self.seen_root {
                            return Err(self.err("multiple root elements"));
                        }
                        let mut name = std::mem::take(&mut self.name_buf);
                        let res = self.read_name_buf(&mut name);
                        self.name_buf = name;
                        res?;
                        let self_closing = self.read_attributes()?;
                        self.seen_root = true;
                        self.open_names.extend_from_slice(&self.name_buf);
                        self.open_lens.push(self.name_buf.len() as u32);
                        self.pending_end = self_closing;
                        self.pending_end_pos = self.offset;
                        // Validate now so End tokens can borrow unchecked.
                        let name = self.utf8_ref(&self.name_buf)?;
                        return Ok(ScanToken::StartElement {
                            name,
                            attributes: &self.attr_buf,
                            attr_spans: &self.attr_spans,
                            tag_start,
                        });
                    }
                }
            } else {
                // Character data.
                if self.open_lens.is_empty() {
                    return Err(self.err(format_args!(
                        "unexpected character '{}' outside root element",
                        b as char
                    )));
                }
                let piece_start = self.offset;
                let mut clean = true;
                let mut text = std::mem::take(&mut self.text_buf);
                text.clear();
                let res = (|| -> Result<(), XmlError> {
                    loop {
                        self.take_until2(&mut text, b'<', b'&')?;
                        match self.peek()? {
                            Some(b'<') | None => return Ok(()),
                            Some(b'&') => {
                                clean = false;
                                self.read_entity(&mut text)?;
                            }
                            Some(_) => unreachable!("take_until2 stops on delimiters"),
                        }
                    }
                })();
                self.text_buf = text;
                res?;
                let piece_end = self.offset;
                if self.keep_whitespace || !self.text_buf.iter().all(|c| c.is_ascii_whitespace()) {
                    let text = self.utf8_ref(&self.text_buf)?;
                    return Ok(ScanToken::Text(TextPiece {
                        decoded: text,
                        start: piece_start,
                        end: piece_end,
                        clean: if clean {
                            Some((piece_start, piece_end))
                        } else {
                            None
                        },
                    }));
                }
                // Whitespace-only: loop for the next real token.
            }
        }
    }
}

/// Resolves a predefined or numeric character entity (the part between
/// `&` and `;`).
pub(crate) fn resolve_entity(ent: &str) -> Option<char> {
    Some(match ent {
        "lt" => '<',
        "gt" => '>',
        "amp" => '&',
        "apos" => '\'',
        "quot" => '"',
        _ => {
            let code = if let Some(hex) = ent.strip_prefix("#x") {
                u32::from_str_radix(hex, 16).ok()
            } else if let Some(dec) = ent.strip_prefix('#') {
                dec.parse::<u32>().ok()
            } else {
                None
            };
            return code.and_then(char::from_u32);
        }
    })
}

/// Decodes one chardata run (no markup) into `out`, resolving entities.
/// If the decoded run is whitespace-only it is dropped (truncated back),
/// matching the scanner's data-centric default.
fn decode_chardata_run(run: &str, out: &mut String) {
    let mark = out.len();
    let mut rest = run;
    while let Some(p) = rest.find('&') {
        out.push_str(&rest[..p]);
        let after = &rest[p + 1..];
        match after.find(';') {
            Some(semi) => {
                match resolve_entity(&after[..semi]) {
                    Some(c) => out.push(c),
                    None => {
                        // Unreachable for spans produced by a successful
                        // scan; preserve the raw bytes defensively.
                        debug_assert!(false, "invalid entity in scanned span");
                        out.push('&');
                        out.push_str(&after[..=semi]);
                    }
                }
                rest = &after[semi + 1..];
            }
            None => {
                debug_assert!(false, "unterminated entity in scanned span");
                out.push('&');
                out.push_str(after);
                rest = "";
            }
        }
    }
    out.push_str(rest);
    if out.as_bytes()[mark..]
        .iter()
        .all(|c| c.is_ascii_whitespace())
    {
        out.truncate(mark);
    }
}

/// Decodes a raw text *region* — the source bytes spanned by one (possibly
/// merged) text node: chardata runs, entities, CDATA sections, and any
/// comments / processing instructions between them. Produces exactly the
/// concatenation of the pieces the scanner would have emitted for this
/// region, so lazily-decoded spans agree with eagerly-scanned text.
pub(crate) fn decode_text_region(region: &str) -> String {
    let bytes = region.as_bytes();
    let mut out = String::with_capacity(region.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            if bytes[i..].starts_with(b"<![CDATA[") {
                let content_start = i + 9;
                let rel = region[content_start..].find("]]>");
                let content_end = rel.map(|p| content_start + p).unwrap_or(bytes.len());
                // CDATA content is verbatim and kept even if whitespace-only.
                out.push_str(&region[content_start..content_end]);
                i = (content_end + 3).min(bytes.len());
            } else if bytes[i..].starts_with(b"<!--") {
                let rel = region[i + 4..].find("-->");
                i = rel.map(|p| i + 4 + p + 3).unwrap_or(bytes.len());
            } else if bytes[i..].starts_with(b"<?") {
                let rel = region[i + 2..].find("?>");
                i = rel.map(|p| i + 2 + p + 2).unwrap_or(bytes.len());
            } else {
                // Element markup cannot occur inside a text region.
                debug_assert!(false, "element markup inside text region");
                break;
            }
        } else {
            let run_end = region[i..].find('<').map(|p| i + p).unwrap_or(bytes.len());
            decode_chardata_run(&region[i..run_end], &mut out);
            i = run_end;
        }
    }
    out
}

const NAME_BYTE: [bool; 256] = {
    let mut t = [false; 256];
    let mut i = 0;
    while i < 256 {
        let b = i as u8;
        t[i] = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
        i += 1;
    }
    t
};

/// Whether `b` may occur in an element or attribute name.
#[inline]
pub(crate) fn is_name_byte(b: u8) -> bool {
    NAME_BYTE[b as usize]
}

const SWAR_LO: u64 = 0x0101_0101_0101_0101;
const SWAR_HI: u64 = 0x8080_8080_8080_8080;

/// Bytes of `w` equal to `byte` get their high bit set.
#[inline]
fn swar_eq(w: u64, byte: u64) -> u64 {
    let x = w ^ (SWAR_LO.wrapping_mul(byte));
    x.wrapping_sub(SWAR_LO) & !x & SWAR_HI
}

/// Index of the first `a` or `b` in `hay` (or `hay.len()`), eight bytes at
/// a time.
#[inline]
fn memchr2(a: u8, b: u8, hay: &[u8]) -> usize {
    let mut i = 0;
    while i + 8 <= hay.len() {
        let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8 bytes"));
        let m = swar_eq(w, a as u64) | swar_eq(w, b as u64);
        if m != 0 {
            return i + (m.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < hay.len() {
        if hay[i] == a || hay[i] == b {
            return i;
        }
        i += 1;
    }
    hay.len()
}

/// Index of the first `a`, `b` or `c` in `hay` (or `hay.len()`).
#[inline]
fn memchr3(a: u8, b: u8, c: u8, hay: &[u8]) -> usize {
    let mut i = 0;
    while i + 8 <= hay.len() {
        let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8 bytes"));
        let m = swar_eq(w, a as u64) | swar_eq(w, b as u64) | swar_eq(w, c as u64);
        if m != 0 {
            return i + (m.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < hay.len() {
        if hay[i] == a || hay[i] == b || hay[i] == c {
            return i;
        }
        i += 1;
    }
    hay.len()
}

/// Newline count, eight bytes at a time (error-position bookkeeping must
/// not slow the bulk scans down).
#[inline]
fn count_newlines(bytes: &[u8]) -> u64 {
    let mut n = 0u64;
    let mut i = 0;
    while i + 8 <= bytes.len() {
        let w = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
        n += (swar_eq(w, b'\n' as u64).count_ones()) as u64;
        i += 8;
    }
    while i < bytes.len() {
        n += (bytes[i] == b'\n') as u64;
        i += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(input: &str) -> Vec<String> {
        let mut s = Scanner::from_str(input);
        let mut out = vec![];
        loop {
            match s.next_token().expect("scan ok") {
                ScanToken::StartElement {
                    name, tag_start, ..
                } => out.push(format!("start {name} @{tag_start}")),
                ScanToken::Text(p) => out.push(format!(
                    "text {:?} [{}..{}] clean={:?}",
                    p.decoded, p.start, p.end, p.clean
                )),
                ScanToken::EndElement { name, tag_end } => {
                    out.push(format!("end {name} @{tag_end}"))
                }
                ScanToken::EndDocument => break,
            }
        }
        out
    }

    #[test]
    fn spans_cover_the_source() {
        let src = "<a><b>hi</b></a>";
        assert_eq!(
            tokens(src),
            vec![
                "start a @0",
                "start b @3",
                "text \"hi\" [6..8] clean=Some((6, 8))",
                "end b @12",
                "end a @16",
            ]
        );
    }

    #[test]
    fn self_closing_end_span_points_past_the_tag() {
        let src = "<a><b/></a>";
        assert_eq!(
            tokens(src),
            vec!["start a @0", "start b @3", "end b @7", "end a @11"]
        );
    }

    #[test]
    fn entity_text_is_dirty() {
        let toks = tokens("<a>x&amp;y</a>");
        assert_eq!(toks[1], "text \"x&y\" [3..10] clean=None");
    }

    #[test]
    fn cdata_clean_span_is_the_inner_content() {
        let toks = tokens("<a><![CDATA[x < y]]></a>");
        assert_eq!(toks[1], "text \"x < y\" [3..20] clean=Some((12, 17))");
    }

    #[test]
    fn cdata_trailing_brackets_are_content() {
        // `]]]>` terminates with the final `]]>`; earlier `]`s are content.
        let toks = tokens("<a><![CDATA[x]]]></a>");
        assert!(toks[1].starts_with("text \"x]\""), "{}", toks[1]);
        let toks = tokens("<a><![CDATA[]]]]></a>");
        assert!(toks[1].starts_with("text \"]]\""), "{}", toks[1]);
    }

    #[test]
    fn attr_value_spans_and_cleanliness() {
        let mut s = Scanner::from_str(r#"<a k="v1" q='x &amp; y'/>"#);
        match s.next_token().unwrap() {
            ScanToken::StartElement {
                attributes,
                attr_spans,
                ..
            } => {
                assert_eq!(attributes[0].value, "v1");
                assert!(attr_spans[0].clean);
                assert_eq!((attr_spans[0].value_start, attr_spans[0].value_end), (6, 8));
                assert_eq!(attributes[1].value, "x & y");
                assert!(!attr_spans[1].clean);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decode_text_region_matches_scan() {
        for src in [
            "x&amp;y",
            "  \n ",
            "a<!-- c -->b",
            "a<!-- c --> \n <?pi?>b",
            "<![CDATA[ ]]>",
            "x<![CDATA[a]]b]]>y&lt;",
            "&#65;&#x42;",
        ] {
            let doc = format!("<r>{src}</r>");
            let mut s = Scanner::from_str(&doc);
            let mut scanned = String::new();
            loop {
                match s.next_token().unwrap() {
                    ScanToken::Text(p) => scanned.push_str(p.decoded),
                    ScanToken::EndDocument => break,
                    _ => {}
                }
            }
            assert_eq!(decode_text_region(src), scanned, "region {src:?}");
        }
    }

    #[test]
    fn sink_receives_all_tokens() {
        struct Count {
            starts: usize,
            texts: usize,
            ends: usize,
        }
        impl ScanSink for Count {
            fn start_element(
                &mut self,
                _: &str,
                _: &[Attribute],
                _: &[AttrSpan],
                _: u64,
            ) -> Result<(), XmlError> {
                self.starts += 1;
                Ok(())
            }
            fn text(&mut self, _: TextPiece<'_>) -> Result<(), XmlError> {
                self.texts += 1;
                Ok(())
            }
            fn end_element(&mut self, _: &str, _: u64) -> Result<(), XmlError> {
                self.ends += 1;
                Ok(())
            }
        }
        let mut c = Count {
            starts: 0,
            texts: 0,
            ends: 0,
        };
        let mut s = Scanner::from_str("<a><b>t</b><c/></a>");
        scan(&mut s, &mut c).unwrap();
        assert_eq!((c.starts, c.texts, c.ends), (3, 1, 3));
    }
}
