//! Arena-based XML document trees (the engine's "DOM mode" representation).
//!
//! Nodes live in a flat arena indexed by [`NodeId`]. Sibling/child links are
//! stored as compact `u32` fields. Documents built through [`TreeBuilder`]
//! (which includes everything produced by the parser, the generator and the
//! view materializer) satisfy the invariant that **`NodeId` order equals
//! document order**, which the evaluators rely on to emit answers in
//! document order without sorting.

use crate::label::{Label, Vocabulary};
use std::fmt;

/// Index of a node in a [`Document`] arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

const NIL: u32 = u32::MAX;

/// What a node is: an element with an interned label, or a text node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// An element node such as `<patient>`.
    Element(Label),
    /// A text node; the index points into the document's text table.
    Text(u32),
}

/// A single attribute on an element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written (attributes are not interned: the query
    /// language of the paper selects elements and text only).
    pub name: String,
    /// Attribute value with entities resolved.
    pub value: String,
}

#[derive(Clone)]
struct NodeData {
    parent: u32,
    first_child: u32,
    last_child: u32,
    next_sibling: u32,
    kind: NodeKind,
}

/// An immutable-after-build XML document tree.
///
/// ```
/// use smoqe_xml::{Document, Vocabulary};
/// let vocab = Vocabulary::new();
/// let doc = Document::parse_str("<a><b>hi</b><b/></a>", &vocab).unwrap();
/// let root = doc.root();
/// assert_eq!(&*vocab.name(doc.label(root).unwrap()), "a");
/// assert_eq!(doc.children(root).count(), 2);
/// ```
#[derive(Clone)]
pub struct Document {
    vocab: Vocabulary,
    nodes: Vec<NodeData>,
    texts: Vec<String>,
    /// Sparse: most elements have no attributes.
    attrs: std::collections::HashMap<u32, Vec<Attribute>>,
    root: u32,
}

impl Document {
    /// The vocabulary labels in this document were interned against.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The root element of the document.
    pub fn root(&self) -> NodeId {
        debug_assert_ne!(self.root, NIL, "document has a root by construction");
        NodeId(self.root)
    }

    /// Total number of nodes (elements + text nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of element nodes.
    pub fn element_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Element(_)))
            .count()
    }

    /// The kind of `node`.
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.nodes[node.index()].kind
    }

    /// The element label of `node`, or `None` for text nodes.
    #[inline]
    pub fn label(&self, node: NodeId) -> Option<Label> {
        match self.nodes[node.index()].kind {
            NodeKind::Element(l) => Some(l),
            NodeKind::Text(_) => None,
        }
    }

    /// Whether `node` is an element.
    #[inline]
    pub fn is_element(&self, node: NodeId) -> bool {
        matches!(self.nodes[node.index()].kind, NodeKind::Element(_))
    }

    /// The text of a text node, or `None` for elements.
    pub fn text(&self, node: NodeId) -> Option<&str> {
        match self.nodes[node.index()].kind {
            NodeKind::Text(t) => Some(&self.texts[t as usize]),
            NodeKind::Element(_) => None,
        }
    }

    /// The attributes of `node` (empty slice for text nodes / no attributes).
    pub fn attributes(&self, node: NodeId) -> &[Attribute] {
        self.attrs.get(&node.0).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Value of the attribute `name` on `node`, if present.
    pub fn attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        self.attributes(node)
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// The parent of `node` (`None` for the root).
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        wrap(self.nodes[node.index()].parent)
    }

    /// The first child of `node`.
    #[inline]
    pub fn first_child(&self, node: NodeId) -> Option<NodeId> {
        wrap(self.nodes[node.index()].first_child)
    }

    /// The next sibling of `node`.
    #[inline]
    pub fn next_sibling(&self, node: NodeId) -> Option<NodeId> {
        wrap(self.nodes[node.index()].next_sibling)
    }

    /// Iterates over the children of `node` in document order.
    pub fn children(&self, node: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.nodes[node.index()].first_child,
        }
    }

    /// Iterates over the element children of `node` in document order.
    pub fn child_elements(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(node).filter(move |&c| self.is_element(c))
    }

    /// Iterates over `node` and all its descendants in pre-order
    /// (document order).
    pub fn descendants_or_self(&self, node: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            next: node.0,
            stop_above: self.nodes[node.index()].parent,
            done: false,
        }
    }

    /// Iterates over the strict descendants of `node` in document order.
    pub fn descendants(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.descendants_or_self(node).skip(1)
    }

    /// Iterates over the strict ancestors of `node`, nearest first.
    pub fn ancestors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        std::iter::successors(self.parent(node), move |&n| self.parent(n))
    }

    /// Depth of `node` (root has depth 0).
    pub fn depth(&self, node: NodeId) -> usize {
        self.ancestors(node).count()
    }

    /// Maximum node depth in the document.
    pub fn max_depth(&self) -> usize {
        let mut max = 0;
        let mut depths = vec![0u32; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if n.parent != NIL {
                depths[i] = depths[n.parent as usize] + 1;
                max = max.max(depths[i] as usize);
            }
        }
        max
    }

    /// Number of nodes in the subtree rooted at `node` (including it).
    pub fn subtree_size(&self, node: NodeId) -> usize {
        self.descendants_or_self(node).count()
    }

    /// The XPath string-value of `node`: for a text node its text, for an
    /// element the concatenation of all descendant text in document order.
    pub fn string_value(&self, node: NodeId) -> String {
        self.string_value_cow(node).into_owned()
    }

    /// [`Document::string_value`] without the unconditional allocation:
    /// text nodes and elements whose subtree holds at most one text node
    /// borrow straight from the arena.
    pub fn string_value_cow(&self, node: NodeId) -> std::borrow::Cow<'_, str> {
        use std::borrow::Cow;
        if let NodeKind::Text(t) = self.nodes[node.index()].kind {
            return Cow::Borrowed(&self.texts[t as usize]);
        }
        let mut single: Option<&str> = None;
        for d in self.descendants_or_self(node) {
            if let Some(t) = self.text(d) {
                if single.is_some() {
                    // Two or more pieces: concatenate.
                    let mut out = String::new();
                    for d in self.descendants_or_self(node) {
                        if let Some(t) = self.text(d) {
                            out.push_str(t);
                        }
                    }
                    return Cow::Owned(out);
                }
                single = Some(t);
            }
        }
        Cow::Borrowed(single.unwrap_or(""))
    }

    /// The concatenation of the *direct* text children of `node` (empty
    /// for text nodes; use [`Document::text`] for those). This is the
    /// value `text() = 'c'` comparisons test: unlike the full
    /// string-value, it is preserved exactly by security views, which may
    /// hide text-bearing descendants but always copy a visible node's own
    /// text.
    pub fn direct_text(&self, node: NodeId) -> String {
        self.direct_text_cow(node).into_owned()
    }

    /// [`Document::direct_text`] without the unconditional allocation: the
    /// overwhelmingly common shapes — no text child, or exactly one —
    /// borrow straight from the arena, so per-predicate-check resolution
    /// in the evaluator allocates nothing.
    pub fn direct_text_cow(&self, node: NodeId) -> std::borrow::Cow<'_, str> {
        use std::borrow::Cow;
        let mut single: Option<&str> = None;
        for c in self.children(node) {
            if let Some(t) = self.text(c) {
                if single.is_some() {
                    // Split direct text (text around child elements or
                    // merged CDATA runs): concatenate.
                    let mut out = String::new();
                    for c in self.children(node) {
                        if let Some(t) = self.text(c) {
                            out.push_str(t);
                        }
                    }
                    return Cow::Owned(out);
                }
                single = Some(t);
            }
        }
        Cow::Borrowed(single.unwrap_or(""))
    }

    /// All nodes of the document in document order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Nodes with the given element label, in document order.
    pub fn nodes_labeled(&self, label: Label) -> impl Iterator<Item = NodeId> + '_ {
        self.all_nodes()
            .filter(move |&n| self.label(n) == Some(label))
    }

    /// Parses a document from a string slice. Convenience wrapper around
    /// [`crate::parse::parse_document`].
    pub fn parse_str(input: &str, vocab: &Vocabulary) -> Result<Document, crate::XmlError> {
        crate::parse::parse_document(input, vocab)
    }

    /// Serializes the document to compact XML text. Convenience wrapper
    /// around [`crate::serialize::to_string`].
    pub fn to_xml(&self) -> String {
        crate::serialize::to_string(self)
    }
}

#[inline]
fn wrap(raw: u32) -> Option<NodeId> {
    if raw == NIL {
        None
    } else {
        Some(NodeId(raw))
    }
}

/// Iterator over the children of a node.
pub struct Children<'a> {
    doc: &'a Document,
    next: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = wrap(self.next)?;
        self.next = self.doc.nodes[cur.index()].next_sibling;
        Some(cur)
    }
}

/// Pre-order iterator over a subtree.
pub struct Descendants<'a> {
    doc: &'a Document,
    next: u32,
    /// Parent of the subtree root: ascending past it terminates iteration.
    stop_above: u32,
    done: bool,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.done {
            return None;
        }
        let cur = self.next;
        let nodes = &self.doc.nodes;
        // Advance: first child, else next sibling, else climb.
        let data = &nodes[cur as usize];
        if data.first_child != NIL {
            self.next = data.first_child;
        } else {
            let mut up = cur;
            loop {
                if nodes[up as usize].parent == self.stop_above {
                    self.done = true;
                    break;
                }
                if nodes[up as usize].next_sibling != NIL {
                    self.next = nodes[up as usize].next_sibling;
                    break;
                }
                up = nodes[up as usize].parent;
            }
        }
        Some(NodeId(cur))
    }
}

/// Incrementally builds a [`Document`] in document order.
///
/// The builder enforces well-formedness: exactly one root element, matched
/// start/end calls, text only inside elements.
///
/// ```
/// use smoqe_xml::{TreeBuilder, Vocabulary};
/// let vocab = Vocabulary::new();
/// let mut b = TreeBuilder::new(vocab.clone());
/// let a = vocab.intern("a");
/// let bl = vocab.intern("b");
/// b.start_element(a);
/// b.start_element(bl);
/// b.text("hi");
/// b.end_element();
/// b.end_element();
/// let doc = b.finish().unwrap();
/// assert_eq!(doc.node_count(), 3);
/// ```
pub struct TreeBuilder {
    doc: Document,
    stack: Vec<u32>,
    finished_root: bool,
}

impl TreeBuilder {
    /// Creates a builder producing a document over `vocab`.
    pub fn new(vocab: Vocabulary) -> Self {
        TreeBuilder {
            doc: Document {
                vocab,
                nodes: Vec::new(),
                texts: Vec::new(),
                attrs: std::collections::HashMap::new(),
                root: NIL,
            },
            stack: Vec::new(),
            finished_root: false,
        }
    }

    /// Pre-allocates space for `n` nodes.
    pub fn reserve(&mut self, n: usize) {
        self.doc.nodes.reserve(n);
    }

    fn push_node(&mut self, kind: NodeKind) -> u32 {
        let id = self.doc.nodes.len() as u32;
        let parent = self.stack.last().copied().unwrap_or(NIL);
        self.doc.nodes.push(NodeData {
            parent,
            first_child: NIL,
            last_child: NIL,
            next_sibling: NIL,
            kind,
        });
        if parent != NIL {
            let p = &mut self.doc.nodes[parent as usize];
            if p.first_child == NIL {
                p.first_child = id;
            } else {
                let last = p.last_child;
                self.doc.nodes[last as usize].next_sibling = id;
            }
            self.doc.nodes[parent as usize].last_child = id;
        }
        id
    }

    /// Opens an element with the given label.
    pub fn start_element(&mut self, label: Label) -> NodeId {
        assert!(
            !(self.stack.is_empty() && self.finished_root),
            "document may only have one root element"
        );
        let id = self.push_node(NodeKind::Element(label));
        if self.stack.is_empty() {
            self.doc.root = id;
        }
        self.stack.push(id);
        NodeId(id)
    }

    /// Opens an element, interning `name` in the document's vocabulary.
    pub fn start_element_named(&mut self, name: &str) -> NodeId {
        let l = self.doc.vocab.intern(name);
        self.start_element(l)
    }

    /// Adds an attribute to the currently open element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn attribute(&mut self, name: &str, value: &str) {
        let cur = *self.stack.last().expect("attribute outside of element");
        self.doc.attrs.entry(cur).or_default().push(Attribute {
            name: name.to_string(),
            value: value.to_string(),
        });
    }

    /// Appends a text node to the currently open element. Empty strings are
    /// ignored; adjacent text is merged.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn text(&mut self, content: &str) {
        if content.is_empty() {
            return;
        }
        let cur = *self.stack.last().expect("text outside of root element");
        // Merge with a trailing text sibling to keep the tree canonical.
        let last = self.doc.nodes[cur as usize].last_child;
        if last != NIL {
            if let NodeKind::Text(t) = self.doc.nodes[last as usize].kind {
                self.doc.texts[t as usize].push_str(content);
                return;
            }
        }
        let t = self.doc.texts.len() as u32;
        self.doc.texts.push(content.to_string());
        self.push_node(NodeKind::Text(t));
    }

    /// Closes the most recently opened element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn end_element(&mut self) {
        self.stack.pop().expect("end_element without start_element");
        if self.stack.is_empty() {
            self.finished_root = true;
        }
    }

    /// Number of currently open elements.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// The vocabulary the built document interns labels against.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.doc.vocab
    }

    /// The id the *next* created node will receive (document order).
    pub fn next_node_id(&self) -> NodeId {
        NodeId(self.doc.nodes.len() as u32)
    }

    /// Finishes the build, returning the document.
    pub fn finish(self) -> Result<Document, crate::XmlError> {
        if !self.stack.is_empty() {
            return Err(crate::XmlError::Malformed(format!(
                "{} unclosed element(s) at end of document",
                self.stack.len()
            )));
        }
        if self.doc.root == NIL {
            return Err(crate::XmlError::Malformed(
                "document has no root element".to_string(),
            ));
        }
        Ok(self.doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vocabulary, Document) {
        let vocab = Vocabulary::new();
        let mut b = TreeBuilder::new(vocab.clone());
        b.start_element_named("a");
        b.start_element_named("b");
        b.text("one");
        b.end_element();
        b.start_element_named("c");
        b.start_element_named("b");
        b.text("two");
        b.end_element();
        b.end_element();
        b.end_element();
        (vocab.clone(), b.finish().unwrap())
    }

    #[test]
    fn builder_links_children_in_order() {
        let (vocab, doc) = sample();
        let root = doc.root();
        let kids: Vec<String> = doc
            .children(root)
            .map(|c| vocab.name(doc.label(c).unwrap()).to_string())
            .collect();
        assert_eq!(kids, vec!["b", "c"]);
    }

    #[test]
    fn node_ids_are_document_order() {
        let (_, doc) = sample();
        let pre: Vec<NodeId> = doc.descendants_or_self(doc.root()).collect();
        let mut sorted = pre.clone();
        sorted.sort();
        assert_eq!(pre, sorted);
        assert_eq!(pre.len(), doc.node_count());
    }

    #[test]
    fn descendants_of_subtree_stay_inside() {
        let (vocab, doc) = sample();
        let c = vocab.lookup("c").unwrap();
        let c_node = doc.nodes_labeled(c).next().unwrap();
        let subtree: Vec<NodeId> = doc.descendants_or_self(c_node).collect();
        assert_eq!(subtree.len(), 3); // c, b, text
        for n in subtree {
            assert!(n == c_node || doc.ancestors(n).any(|a| a == c_node));
        }
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let (_, doc) = sample();
        assert_eq!(doc.string_value(doc.root()), "onetwo");
    }

    #[test]
    fn text_nodes_merge() {
        let vocab = Vocabulary::new();
        let mut b = TreeBuilder::new(vocab);
        b.start_element_named("a");
        b.text("x");
        b.text("y");
        b.end_element();
        let doc = b.finish().unwrap();
        assert_eq!(doc.node_count(), 2);
        let t = doc.first_child(doc.root()).unwrap();
        assert_eq!(doc.text(t), Some("xy"));
    }

    #[test]
    fn unclosed_element_is_an_error() {
        let vocab = Vocabulary::new();
        let mut b = TreeBuilder::new(vocab);
        b.start_element_named("a");
        assert!(b.finish().is_err());
    }

    #[test]
    fn depth_and_ancestors() {
        let (_, doc) = sample();
        let deepest = doc.all_nodes().max_by_key(|&n| doc.depth(n)).unwrap();
        assert_eq!(doc.depth(deepest), 3);
        assert_eq!(doc.max_depth(), 3);
        assert_eq!(doc.ancestors(deepest).count(), 3);
        assert_eq!(doc.depth(doc.root()), 0);
    }

    #[test]
    fn attributes_are_retrievable() {
        let vocab = Vocabulary::new();
        let mut b = TreeBuilder::new(vocab);
        b.start_element_named("a");
        b.attribute("id", "7");
        b.end_element();
        let doc = b.finish().unwrap();
        assert_eq!(doc.attribute(doc.root(), "id"), Some("7"));
        assert_eq!(doc.attribute(doc.root(), "nope"), None);
    }

    #[test]
    #[should_panic(expected = "one root")]
    fn second_root_panics() {
        let vocab = Vocabulary::new();
        let mut b = TreeBuilder::new(vocab);
        b.start_element_named("a");
        b.end_element();
        b.start_element_named("b");
    }
}
