//! Span-based XML document trees (the engine's "DOM mode" representation).
//!
//! A parsed [`Document`] holds the raw input buffer once (a shared
//! `Arc<str>`) plus a flat arena of compact per-node records. Element
//! names and attribute names are interned [`Label`]s; text and attribute
//! values are **byte spans** into the buffer, so the parse path stores no
//! per-node owned `String` at all. Content containing entities (or text
//! merged across CDATA/comment boundaries) keeps its raw span and is
//! decoded lazily on first access, with the decoded form cached.
//!
//! Nodes live in a flat arena indexed by [`NodeId`]. Sibling/child links
//! are stored as compact `u32` fields. Documents built through
//! [`TreeBuilder`] (which includes everything produced by the parser, the
//! generator and the view materializer) satisfy the invariant that
//! **`NodeId` order equals document order**, which the evaluators rely on
//! to emit answers in document order without sorting.
//!
//! Buffer offsets are `u32`, capping a single parsed document at 4 GB;
//! the parser rejects larger inputs.

use crate::label::{Label, Vocabulary};
use std::fmt;
use std::sync::{Arc, OnceLock};

pub use crate::scanner::Attribute;

/// Index of a node in a [`Document`] arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

const NIL: u32 = u32::MAX;

/// What a node is: an element with an interned label, or a text node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// An element node such as `<patient>`.
    Element(Label),
    /// A text node; the index points into the document's text table.
    Text(u32),
}

/// How one text node's content is stored. The common case (an
/// entity-free span) is inline; the rare heap-backed cases live behind
/// one pointer so the table entry stays at 16 bytes.
#[derive(Clone, Debug)]
enum TextRepr {
    /// Entity-free span: the buffer bytes *are* the text (for CDATA, the
    /// inner content span).
    Span { start: u32, end: u32 },
    /// Entity-bearing or programmatic text (see [`HeapText`]).
    Heap(Box<HeapText>),
}

/// The out-of-line text representations.
#[derive(Clone, Debug)]
enum HeapText {
    /// Raw source region containing entities, CDATA wrappers or interior
    /// comments/PIs (merged pieces); decoded lazily, cached once.
    Dirty {
        start: u32,
        end: u32,
        cache: OnceLock<Box<str>>,
    },
    /// Programmatically built text (no backing buffer).
    Owned(Box<str>),
}

/// How one attribute value is stored.
#[derive(Clone, Debug)]
enum AttrValue {
    /// Entity-free span between the quotes.
    Span { start: u32, end: u32 },
    /// Entity-containing or programmatic value, already decoded.
    Owned(Box<str>),
}

/// A stored attribute: interned name + span-or-owned value.
#[derive(Clone, Debug)]
struct AttrRecord {
    name: Label,
    value: AttrValue,
}

/// One arena node: tree links and kind — the data every traversal
/// touches, kept at 24 bytes for cache density. The node's source extent
/// lives in the parallel cold array [`Extent`] (only edit splicing and
/// `node_extent` read it).
#[derive(Clone)]
struct NodeData {
    parent: u32,
    first_child: u32,
    last_child: u32,
    next_sibling: u32,
    kind: NodeKind,
}

/// The raw source extent of one node (for elements: from `<` to past the
/// closing `>`; for text: the full raw region). Parallel to the node
/// arena; 8 bytes.
#[derive(Clone, Copy)]
struct Extent {
    start: u32,
    end: u32,
}

/// Memory accounting for a [`Document`] (see
/// [`Document::memory_summary`]). All figures in bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemorySummary {
    /// The shared raw input buffer (0 for programmatic documents).
    pub buffer_bytes: usize,
    /// The node arena plus the parallel extent table (32 bytes per node
    /// combined: 24 hot + 8 cold).
    pub node_table_bytes: usize,
    /// The text-representation table (spans, not content).
    pub text_table_bytes: usize,
    /// The attribute tables (records, not content).
    pub attr_table_bytes: usize,
    /// Heap bytes of owned (programmatic or entity-bearing-attribute)
    /// strings.
    pub owned_bytes: usize,
    /// Heap bytes of lazily-materialized entity-decode caches.
    pub entity_cache_bytes: usize,
}

impl MemorySummary {
    /// Total of all accounted bytes.
    pub fn total(&self) -> usize {
        self.buffer_bytes
            + self.node_table_bytes
            + self.text_table_bytes
            + self.attr_table_bytes
            + self.owned_bytes
            + self.entity_cache_bytes
    }
}

impl fmt::Display for MemorySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer {} B, nodes {} B, text spans {} B, attrs {} B, owned {} B, entity caches {} B (total {} B)",
            self.buffer_bytes,
            self.node_table_bytes,
            self.text_table_bytes,
            self.attr_table_bytes,
            self.owned_bytes,
            self.entity_cache_bytes,
            self.total()
        )
    }
}

/// An immutable-after-build XML document tree.
///
/// ```
/// use smoqe_xml::{Document, Vocabulary};
/// let vocab = Vocabulary::new();
/// let doc = Document::parse_str("<a><b>hi</b><b/></a>", &vocab).unwrap();
/// let root = doc.root();
/// assert_eq!(doc.name(root), Some("a"));
/// assert_eq!(doc.children(root).count(), 2);
/// ```
#[derive(Clone)]
pub struct Document {
    vocab: Vocabulary,
    /// The raw source the spans point into; `None` for programmatic
    /// documents. Shared (not copied) across snapshots and clones.
    buffer: Option<Arc<str>>,
    nodes: Vec<NodeData>,
    /// Source extents, parallel to `nodes` (cold: only edits and
    /// `node_extent` read them).
    extents: Vec<Extent>,
    texts: Vec<TextRepr>,
    /// Sparse: most elements have no attributes.
    attrs: std::collections::HashMap<u32, Vec<AttrRecord>>,
    /// Label-indexed name snapshot taken at build time, so
    /// [`Document::name`] borrows without taking the vocabulary lock.
    names: Arc<[Arc<str>]>,
    root: u32,
}

impl Document {
    /// The vocabulary labels in this document were interned against.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The root element of the document.
    pub fn root(&self) -> NodeId {
        debug_assert_ne!(self.root, NIL, "document has a root by construction");
        NodeId(self.root)
    }

    /// Total number of nodes (elements + text nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of element nodes.
    pub fn element_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Element(_)))
            .count()
    }

    /// The kind of `node`.
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.nodes[node.index()].kind
    }

    /// The element label of `node`, or `None` for text nodes.
    #[inline]
    pub fn label(&self, node: NodeId) -> Option<Label> {
        match self.nodes[node.index()].kind {
            NodeKind::Element(l) => Some(l),
            NodeKind::Text(_) => None,
        }
    }

    /// The element name of `node` (borrowed from the document's label
    /// snapshot — no lock, no allocation), or `None` for text nodes.
    #[inline]
    pub fn name(&self, node: NodeId) -> Option<&str> {
        self.label(node).map(|l| &*self.names[l.index()])
    }

    /// The interned name of `label` per this document's build-time
    /// snapshot.
    #[inline]
    pub fn label_name(&self, label: Label) -> &str {
        &self.names[label.index()]
    }

    /// Whether `node` is an element.
    #[inline]
    pub fn is_element(&self, node: NodeId) -> bool {
        matches!(self.nodes[node.index()].kind, NodeKind::Element(_))
    }

    #[inline]
    fn buffer_str(&self) -> &str {
        self.buffer
            .as_deref()
            .expect("span representation implies a backing buffer")
    }

    fn resolve_text(&self, t: u32) -> &str {
        match &self.texts[t as usize] {
            TextRepr::Span { start, end } => &self.buffer_str()[*start as usize..*end as usize],
            TextRepr::Heap(h) => match h.as_ref() {
                HeapText::Owned(s) => s,
                HeapText::Dirty { start, end, cache } => cache.get_or_init(|| {
                    crate::scanner::decode_text_region(
                        &self.buffer_str()[*start as usize..*end as usize],
                    )
                    .into_boxed_str()
                }),
            },
        }
    }

    fn resolve_attr<'a>(&'a self, a: &'a AttrValue) -> &'a str {
        match a {
            AttrValue::Owned(s) => s,
            AttrValue::Span { start, end } => &self.buffer_str()[*start as usize..*end as usize],
        }
    }

    /// The text of a text node, or `None` for elements. Entity-bearing
    /// spans are decoded on first access and cached.
    pub fn text(&self, node: NodeId) -> Option<&str> {
        match self.nodes[node.index()].kind {
            NodeKind::Text(t) => Some(self.resolve_text(t)),
            NodeKind::Element(_) => None,
        }
    }

    /// The attributes of `node` as `(name, value)` pairs in source order
    /// (empty for text nodes / elements without attributes).
    pub fn attributes(&self, node: NodeId) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.attr_records(node)
            .iter()
            .map(move |r| (self.label_name(r.name), self.resolve_attr(&r.value)))
    }

    /// Number of attributes on `node`.
    pub fn attribute_count(&self, node: NodeId) -> usize {
        self.attr_records(node).len()
    }

    fn attr_records(&self, node: NodeId) -> &[AttrRecord] {
        self.attrs.get(&node.0).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Value of the attribute `name` on `node`, if present.
    pub fn attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        // Attribute names are interned: an un-interned name occurs nowhere.
        let label = self.vocab.lookup(name)?;
        self.attr_records(node)
            .iter()
            .find(|r| r.name == label)
            .map(|r| self.resolve_attr(&r.value))
    }

    /// The parent of `node` (`None` for the root).
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        wrap(self.nodes[node.index()].parent)
    }

    /// The first child of `node`.
    #[inline]
    pub fn first_child(&self, node: NodeId) -> Option<NodeId> {
        wrap(self.nodes[node.index()].first_child)
    }

    /// The next sibling of `node`.
    #[inline]
    pub fn next_sibling(&self, node: NodeId) -> Option<NodeId> {
        wrap(self.nodes[node.index()].next_sibling)
    }

    /// Iterates over the children of `node` in document order.
    pub fn children(&self, node: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.nodes[node.index()].first_child,
        }
    }

    /// Iterates over the element children of `node` in document order.
    pub fn child_elements(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(node).filter(move |&c| self.is_element(c))
    }

    /// Iterates over `node` and all its descendants in pre-order
    /// (document order).
    pub fn descendants_or_self(&self, node: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            next: node.0,
            stop_above: self.nodes[node.index()].parent,
            done: false,
        }
    }

    /// Iterates over the strict descendants of `node` in document order.
    pub fn descendants(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.descendants_or_self(node).skip(1)
    }

    /// Iterates over the strict ancestors of `node`, nearest first.
    pub fn ancestors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        std::iter::successors(self.parent(node), move |&n| self.parent(n))
    }

    /// Depth of `node` (root has depth 0).
    pub fn depth(&self, node: NodeId) -> usize {
        self.ancestors(node).count()
    }

    /// Maximum node depth in the document.
    pub fn max_depth(&self) -> usize {
        let mut max = 0;
        let mut depths = vec![0u32; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if n.parent != NIL {
                depths[i] = depths[n.parent as usize] + 1;
                max = max.max(depths[i] as usize);
            }
        }
        max
    }

    /// Number of nodes in the subtree rooted at `node` (including it).
    pub fn subtree_size(&self, node: NodeId) -> usize {
        self.descendants_or_self(node).count()
    }

    /// The XPath string-value of `node`: for a text node its text, for an
    /// element the concatenation of all descendant text in document order.
    pub fn string_value(&self, node: NodeId) -> String {
        self.string_value_cow(node).into_owned()
    }

    /// [`Document::string_value`] without the unconditional allocation:
    /// text nodes and elements whose subtree holds at most one text node
    /// borrow straight from the buffer (or decode cache).
    pub fn string_value_cow(&self, node: NodeId) -> std::borrow::Cow<'_, str> {
        use std::borrow::Cow;
        if let NodeKind::Text(t) = self.nodes[node.index()].kind {
            return Cow::Borrowed(self.resolve_text(t));
        }
        let mut single: Option<&str> = None;
        for d in self.descendants_or_self(node) {
            if let Some(t) = self.text(d) {
                if let Some(first) = single {
                    // Two or more pieces: concatenate.
                    let mut out = String::with_capacity(first.len() + t.len());
                    for d in self.descendants_or_self(node) {
                        if let Some(t) = self.text(d) {
                            out.push_str(t);
                        }
                    }
                    return Cow::Owned(out);
                }
                single = Some(t);
            }
        }
        Cow::Borrowed(single.unwrap_or(""))
    }

    /// The concatenation of the *direct* text children of `node` (empty
    /// for text nodes; use [`Document::text`] for those). This is the
    /// value `text() = 'c'` comparisons test: unlike the full
    /// string-value, it is preserved exactly by security views, which may
    /// hide text-bearing descendants but always copy a visible node's own
    /// text.
    pub fn direct_text(&self, node: NodeId) -> String {
        self.direct_text_cow(node).into_owned()
    }

    /// [`Document::direct_text`] without the unconditional allocation: the
    /// overwhelmingly common shapes — no text child, or exactly one —
    /// borrow straight from the buffer, so per-predicate-check resolution
    /// in the evaluator allocates nothing.
    pub fn direct_text_cow(&self, node: NodeId) -> std::borrow::Cow<'_, str> {
        use std::borrow::Cow;
        let mut single: Option<&str> = None;
        for c in self.children(node) {
            if let Some(t) = self.text(c) {
                if let Some(first) = single {
                    // Split direct text (text around child elements):
                    // concatenate.
                    let mut out = String::with_capacity(first.len() + t.len());
                    for c in self.children(node) {
                        if let Some(t) = self.text(c) {
                            out.push_str(t);
                        }
                    }
                    return Cow::Owned(out);
                }
                single = Some(t);
            }
        }
        Cow::Borrowed(single.unwrap_or(""))
    }

    /// All nodes of the document in document order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Nodes with the given element label, in document order.
    pub fn nodes_labeled(&self, label: Label) -> impl Iterator<Item = NodeId> + '_ {
        self.all_nodes()
            .filter(move |&n| self.label(n) == Some(label))
    }

    /// The shared raw source buffer this document's spans point into
    /// (`None` for programmatic documents). Cloning is an `Arc` bump:
    /// snapshots and spliced generations share the bytes.
    pub fn shared_buffer(&self) -> Option<Arc<str>> {
        self.buffer.clone()
    }

    /// The raw source text (`None` for programmatic documents).
    pub fn raw_source(&self) -> Option<&str> {
        self.buffer.as_deref()
    }

    /// The source extent of `node` — for elements, from the `<` of the
    /// start tag to one past the `>` of the end tag (or `/>`); for text
    /// nodes, the full raw region. `None` for programmatic documents.
    pub fn node_extent(&self, node: NodeId) -> Option<(usize, usize)> {
        self.buffer.as_ref()?;
        let e = &self.extents[node.index()];
        if e.end == 0 {
            return None;
        }
        Some((e.start as usize, e.end as usize))
    }

    /// Byte-level memory accounting: the shared buffer, the compact span
    /// tables, and any lazily-materialized entity caches.
    pub fn memory_summary(&self) -> MemorySummary {
        let mut s = MemorySummary {
            buffer_bytes: self.buffer.as_deref().map_or(0, str::len),
            node_table_bytes: self.nodes.capacity() * std::mem::size_of::<NodeData>()
                + self.extents.capacity() * std::mem::size_of::<Extent>(),
            text_table_bytes: self.texts.capacity() * std::mem::size_of::<TextRepr>(),
            ..MemorySummary::default()
        };
        for t in &self.texts {
            match t {
                TextRepr::Span { .. } => {}
                TextRepr::Heap(h) => {
                    s.text_table_bytes += std::mem::size_of::<HeapText>();
                    match h.as_ref() {
                        HeapText::Owned(b) => s.owned_bytes += b.len(),
                        HeapText::Dirty { cache, .. } => {
                            if let Some(b) = cache.get() {
                                s.entity_cache_bytes += b.len();
                            }
                        }
                    }
                }
            }
        }
        for recs in self.attrs.values() {
            s.attr_table_bytes += recs.capacity() * std::mem::size_of::<AttrRecord>();
            for r in recs {
                if let AttrValue::Owned(b) = &r.value {
                    s.owned_bytes += b.len();
                }
            }
        }
        s
    }

    /// Parses a document from a string slice. Convenience wrapper around
    /// [`crate::parse::parse_document`].
    pub fn parse_str(input: &str, vocab: &Vocabulary) -> Result<Document, crate::XmlError> {
        crate::parse::parse_document(input, vocab)
    }

    /// Serializes the document to compact XML text. Convenience wrapper
    /// around [`crate::serialize::to_string`].
    pub fn to_xml(&self) -> String {
        crate::serialize::to_string(self)
    }
}

#[inline]
fn wrap(raw: u32) -> Option<NodeId> {
    if raw == NIL {
        None
    } else {
        Some(NodeId(raw))
    }
}

/// Iterator over the children of a node.
pub struct Children<'a> {
    doc: &'a Document,
    next: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = wrap(self.next)?;
        self.next = self.doc.nodes[cur.index()].next_sibling;
        Some(cur)
    }
}

/// Pre-order iterator over a subtree.
pub struct Descendants<'a> {
    doc: &'a Document,
    next: u32,
    /// Parent of the subtree root: ascending past it terminates iteration.
    stop_above: u32,
    done: bool,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.done {
            return None;
        }
        let cur = self.next;
        let nodes = &self.doc.nodes;
        // Advance: first child, else next sibling, else climb.
        let data = &nodes[cur as usize];
        if data.first_child != NIL {
            self.next = data.first_child;
        } else {
            let mut up = cur;
            loop {
                if nodes[up as usize].parent == self.stop_above {
                    self.done = true;
                    break;
                }
                if nodes[up as usize].next_sibling != NIL {
                    self.next = nodes[up as usize].next_sibling;
                    break;
                }
                up = nodes[up as usize].parent;
            }
        }
        Some(NodeId(cur))
    }
}

/// Incrementally builds a [`Document`] in document order.
///
/// The builder enforces well-formedness: exactly one root element, matched
/// start/end calls, text only inside elements. The plain
/// `start_element`/`text`/`attribute` methods build programmatic (owned)
/// documents; the parser uses the `*_spanned` / `text_piece` variants
/// against a backing buffer installed with [`TreeBuilder::with_buffer`].
///
/// ```
/// use smoqe_xml::{TreeBuilder, Vocabulary};
/// let vocab = Vocabulary::new();
/// let mut b = TreeBuilder::new(vocab.clone());
/// let a = vocab.intern("a");
/// let bl = vocab.intern("b");
/// b.start_element(a);
/// b.start_element(bl);
/// b.text("hi");
/// b.end_element();
/// b.end_element();
/// let doc = b.finish().unwrap();
/// assert_eq!(doc.node_count(), 3);
/// ```
pub struct TreeBuilder {
    doc: Document,
    stack: Vec<u32>,
    finished_root: bool,
}

impl TreeBuilder {
    /// Creates a builder producing a programmatic (bufferless) document
    /// over `vocab`.
    pub fn new(vocab: Vocabulary) -> Self {
        Self::build(vocab, None)
    }

    /// Creates a builder whose span-based nodes reference `buffer`.
    pub fn with_buffer(vocab: Vocabulary, buffer: Arc<str>) -> Self {
        Self::build(vocab, Some(buffer))
    }

    fn build(vocab: Vocabulary, buffer: Option<Arc<str>>) -> Self {
        TreeBuilder {
            doc: Document {
                vocab,
                buffer,
                nodes: Vec::new(),
                extents: Vec::new(),
                texts: Vec::new(),
                attrs: std::collections::HashMap::new(),
                names: Arc::from(Vec::new()),
                root: NIL,
            },
            stack: Vec::new(),
            finished_root: false,
        }
    }

    /// Pre-allocates space for `n` nodes.
    pub fn reserve(&mut self, n: usize) {
        self.doc.nodes.reserve(n);
        self.doc.extents.reserve(n);
    }

    fn push_node(&mut self, kind: NodeKind, span_start: u32, span_end: u32) -> u32 {
        let id = self.doc.nodes.len() as u32;
        let parent = self.stack.last().copied().unwrap_or(NIL);
        self.doc.nodes.push(NodeData {
            parent,
            first_child: NIL,
            last_child: NIL,
            next_sibling: NIL,
            kind,
        });
        self.doc.extents.push(Extent {
            start: span_start,
            end: span_end,
        });
        if parent != NIL {
            let p = &mut self.doc.nodes[parent as usize];
            if p.first_child == NIL {
                p.first_child = id;
            } else {
                let last = p.last_child;
                self.doc.nodes[last as usize].next_sibling = id;
            }
            self.doc.nodes[parent as usize].last_child = id;
        }
        id
    }

    /// Opens an element with the given label.
    pub fn start_element(&mut self, label: Label) -> NodeId {
        self.start_element_spanned(label, 0)
    }

    /// Opens an element whose start tag begins at buffer offset `start`.
    pub fn start_element_spanned(&mut self, label: Label, start: u32) -> NodeId {
        assert!(
            !(self.stack.is_empty() && self.finished_root),
            "document may only have one root element"
        );
        let id = self.push_node(NodeKind::Element(label), start, 0);
        if self.stack.is_empty() {
            self.doc.root = id;
        }
        self.stack.push(id);
        NodeId(id)
    }

    /// Opens an element, interning `name` in the document's vocabulary.
    pub fn start_element_named(&mut self, name: &str) -> NodeId {
        let l = self.doc.vocab.intern(name);
        self.start_element(l)
    }

    /// [`TreeBuilder::start_element_named`] with the start tag's buffer
    /// offset.
    pub fn start_element_named_spanned(&mut self, name: &str, start: u32) -> NodeId {
        let l = self.doc.vocab.intern(name);
        self.start_element_spanned(l, start)
    }

    /// Adds an attribute to the currently open element. The name is
    /// interned; the value is stored owned (use
    /// [`TreeBuilder::attribute_spanned`] on the parse path).
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn attribute(&mut self, name: &str, value: &str) {
        self.push_attr(name, AttrValue::Owned(value.into()));
    }

    /// Adds an attribute whose entity-free value occupies
    /// `span` = `(start, end)` in the backing buffer; `None` stores the
    /// decoded value owned (entity-bearing values).
    pub fn attribute_spanned(&mut self, name: &str, value: &str, span: Option<(u32, u32)>) {
        let v = match span {
            Some((start, end)) => {
                debug_assert!(self.doc.buffer.is_some(), "span attribute without buffer");
                AttrValue::Span { start, end }
            }
            None => AttrValue::Owned(value.into()),
        };
        self.push_attr(name, v);
    }

    fn push_attr(&mut self, name: &str, value: AttrValue) {
        let cur = *self.stack.last().expect("attribute outside of element");
        let name = self.doc.vocab.intern(name);
        self.doc
            .attrs
            .entry(cur)
            .or_default()
            .push(AttrRecord { name, value });
    }

    /// Appends a text node to the currently open element. Empty strings are
    /// ignored; adjacent text is merged.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn text(&mut self, content: &str) {
        if content.is_empty() {
            return;
        }
        let cur = *self.stack.last().expect("text outside of root element");
        // Merge with a trailing text sibling to keep the tree canonical.
        let last = self.doc.nodes[cur as usize].last_child;
        if last != NIL {
            if let NodeKind::Text(t) = self.doc.nodes[last as usize].kind {
                match &mut self.doc.texts[t as usize] {
                    TextRepr::Heap(h) => match h.as_mut() {
                        HeapText::Owned(s) => {
                            let mut owned = std::mem::take(s).into_string();
                            owned.push_str(content);
                            *s = owned.into_boxed_str();
                        }
                        HeapText::Dirty { .. } => {
                            unreachable!("owned and span text building do not mix")
                        }
                    },
                    TextRepr::Span { .. } => {
                        unreachable!("owned and span text building do not mix")
                    }
                }
                return;
            }
        }
        let t = self.doc.texts.len() as u32;
        self.doc
            .texts
            .push(TextRepr::Heap(Box::new(HeapText::Owned(content.into()))));
        self.push_node(NodeKind::Text(t), 0, 0);
    }

    /// Appends one scanned text piece (see
    /// [`crate::scanner::TextPiece`]): `decoded` is the resolved text,
    /// `start..end` its raw extent, and `clean` a sub-span whose raw bytes
    /// equal `decoded` (entity-free). Adjacent pieces merge into one text
    /// node whose raw region covers both; merged or entity-bearing nodes
    /// decode lazily on first access.
    pub fn text_piece(&mut self, decoded: &str, start: u32, end: u32, clean: Option<(u32, u32)>) {
        debug_assert!(self.doc.buffer.is_some(), "text_piece without buffer");
        if decoded.is_empty() {
            return;
        }
        let cur = *self.stack.last().expect("text outside of root element");
        let last = self.doc.nodes[cur as usize].last_child;
        if last != NIL {
            if let NodeKind::Text(t) = self.doc.nodes[last as usize].kind {
                // Merge: the node's raw region grows to cover both pieces
                // (its outer extent, so region decode never starts inside
                // a CDATA wrapper); decoding becomes lazy.
                let outer_start = self.doc.extents[last as usize].start;
                self.doc.texts[t as usize] = TextRepr::Heap(Box::new(HeapText::Dirty {
                    start: outer_start,
                    end,
                    cache: OnceLock::new(),
                }));
                self.doc.extents[last as usize].end = end;
                return;
            }
        }
        let t = self.doc.texts.len() as u32;
        let repr = match clean {
            Some((cs, ce)) => TextRepr::Span { start: cs, end: ce },
            None => TextRepr::Heap(Box::new(HeapText::Dirty {
                start,
                end,
                cache: OnceLock::new(),
            })),
        };
        self.doc.texts.push(repr);
        self.push_node(NodeKind::Text(t), start, end);
    }

    /// Closes the most recently opened element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn end_element(&mut self) {
        self.end_element_spanned(0);
    }

    /// Closes the most recently opened element, recording one past the
    /// `>` of its end tag as the element's extent end.
    pub fn end_element_spanned(&mut self, end: u32) {
        let id = self.stack.pop().expect("end_element without start_element");
        self.doc.extents[id as usize].end = end;
        if self.stack.is_empty() {
            self.finished_root = true;
        }
    }

    /// Number of currently open elements.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// The vocabulary the built document interns labels against.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.doc.vocab
    }

    /// The id the *next* created node will receive (document order).
    pub fn next_node_id(&self) -> NodeId {
        NodeId(self.doc.nodes.len() as u32)
    }

    /// Finishes the build, returning the document.
    pub fn finish(mut self) -> Result<Document, crate::XmlError> {
        if !self.stack.is_empty() {
            return Err(crate::XmlError::Malformed(format!(
                "{} unclosed element(s) at end of document",
                self.stack.len()
            )));
        }
        if self.doc.root == NIL {
            return Err(crate::XmlError::Malformed(
                "document has no root element".to_string(),
            ));
        }
        self.doc.names = self.doc.vocab.snapshot().into();
        // Drop the doubling slack: the tables are immutable from here on
        // (edits build a fresh document), so capacity == length.
        self.doc.nodes.shrink_to_fit();
        self.doc.extents.shrink_to_fit();
        self.doc.texts.shrink_to_fit();
        for recs in self.doc.attrs.values_mut() {
            recs.shrink_to_fit();
        }
        Ok(self.doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vocabulary, Document) {
        let vocab = Vocabulary::new();
        let mut b = TreeBuilder::new(vocab.clone());
        b.start_element_named("a");
        b.start_element_named("b");
        b.text("one");
        b.end_element();
        b.start_element_named("c");
        b.start_element_named("b");
        b.text("two");
        b.end_element();
        b.end_element();
        b.end_element();
        (vocab.clone(), b.finish().unwrap())
    }

    #[test]
    fn text_records_are_16_bytes() {
        assert_eq!(std::mem::size_of::<TextRepr>(), 16);
    }

    #[test]
    fn node_records_are_32_bytes() {
        // 24 hot (links + kind) plus 8 cold (source extent).
        assert_eq!(std::mem::size_of::<NodeData>(), 24);
        assert_eq!(std::mem::size_of::<Extent>(), 8);
    }

    #[test]
    fn builder_links_children_in_order() {
        let (vocab, doc) = sample();
        let root = doc.root();
        let kids: Vec<String> = doc
            .children(root)
            .map(|c| vocab.name(doc.label(c).unwrap()).to_string())
            .collect();
        assert_eq!(kids, vec!["b", "c"]);
    }

    #[test]
    fn borrowed_names_match_vocabulary() {
        let (vocab, doc) = sample();
        for n in doc.all_nodes() {
            if let Some(l) = doc.label(n) {
                assert_eq!(doc.name(n), Some(&*vocab.name(l)));
            } else {
                assert_eq!(doc.name(n), None);
            }
        }
    }

    #[test]
    fn node_ids_are_document_order() {
        let (_, doc) = sample();
        let pre: Vec<NodeId> = doc.descendants_or_self(doc.root()).collect();
        let mut sorted = pre.clone();
        sorted.sort();
        assert_eq!(pre, sorted);
        assert_eq!(pre.len(), doc.node_count());
    }

    #[test]
    fn descendants_of_subtree_stay_inside() {
        let (vocab, doc) = sample();
        let c = vocab.lookup("c").unwrap();
        let c_node = doc.nodes_labeled(c).next().unwrap();
        let subtree: Vec<NodeId> = doc.descendants_or_self(c_node).collect();
        assert_eq!(subtree.len(), 3); // c, b, text
        for n in subtree {
            assert!(n == c_node || doc.ancestors(n).any(|a| a == c_node));
        }
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let (_, doc) = sample();
        assert_eq!(doc.string_value(doc.root()), "onetwo");
    }

    #[test]
    fn text_nodes_merge() {
        let vocab = Vocabulary::new();
        let mut b = TreeBuilder::new(vocab);
        b.start_element_named("a");
        b.text("x");
        b.text("y");
        b.end_element();
        let doc = b.finish().unwrap();
        assert_eq!(doc.node_count(), 2);
        let t = doc.first_child(doc.root()).unwrap();
        assert_eq!(doc.text(t), Some("xy"));
    }

    #[test]
    fn unclosed_element_is_an_error() {
        let vocab = Vocabulary::new();
        let mut b = TreeBuilder::new(vocab);
        b.start_element_named("a");
        assert!(b.finish().is_err());
    }

    #[test]
    fn depth_and_ancestors() {
        let (_, doc) = sample();
        let deepest = doc.all_nodes().max_by_key(|&n| doc.depth(n)).unwrap();
        assert_eq!(doc.depth(deepest), 3);
        assert_eq!(doc.max_depth(), 3);
        assert_eq!(doc.ancestors(deepest).count(), 3);
        assert_eq!(doc.depth(doc.root()), 0);
    }

    #[test]
    fn attributes_are_retrievable() {
        let vocab = Vocabulary::new();
        let mut b = TreeBuilder::new(vocab);
        b.start_element_named("a");
        b.attribute("id", "7");
        b.end_element();
        let doc = b.finish().unwrap();
        assert_eq!(doc.attribute(doc.root(), "id"), Some("7"));
        assert_eq!(doc.attribute(doc.root(), "nope"), None);
        let pairs: Vec<(String, String)> = doc
            .attributes(doc.root())
            .map(|(n, v)| (n.to_string(), v.to_string()))
            .collect();
        assert_eq!(pairs, vec![("id".to_string(), "7".to_string())]);
    }

    #[test]
    fn programmatic_documents_have_no_buffer() {
        let (_, doc) = sample();
        assert!(doc.raw_source().is_none());
        assert!(doc.node_extent(doc.root()).is_none());
        let s = doc.memory_summary();
        assert_eq!(s.buffer_bytes, 0);
        assert!(s.owned_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "one root")]
    fn second_root_panics() {
        let vocab = Vocabulary::new();
        let mut b = TreeBuilder::new(vocab);
        b.start_element_named("a");
        b.end_element();
        b.start_element_named("b");
    }
}
