//! DTDs: element productions, parsing, validation, recursion analysis.
//!
//! SMOQE views are defined by *annotating a schema* (a DTD, Fig. 3 of the
//! paper), and a "unique feature of the SMOQE view language is that it
//! allows the schema to be recursive". This module provides the schema
//! substrate: a [`Dtd`] maps each element type to a [`ContentModel`]
//! (a regular expression over child element types and `#PCDATA`), can be
//! parsed from standard `<!ELEMENT ...>` syntax, validates documents, and
//! reports structural facts (child alphabets, reachability, recursion) that
//! the view-derivation and rewriting algorithms consume.

use crate::error::XmlError;
use crate::label::{Label, Vocabulary};
use crate::tree::{Document, NodeId};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

/// A regular expression over child content, as written in a DTD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContentModel {
    /// `EMPTY` — no children at all.
    Empty,
    /// `ANY` — any sequence of declared elements and text.
    Any,
    /// `(#PCDATA)` — zero or more text nodes.
    Text,
    /// A single child element type.
    Elem(Label),
    /// `(a, b, c)` — concatenation.
    Seq(Vec<ContentModel>),
    /// `(a | b | c)` — alternation.
    Choice(Vec<ContentModel>),
    /// `cp*`.
    Star(Box<ContentModel>),
    /// `cp+`.
    Plus(Box<ContentModel>),
    /// `cp?`.
    Opt(Box<ContentModel>),
    /// `(#PCDATA | a | b)*` — mixed content.
    Mixed(Vec<Label>),
}

impl ContentModel {
    /// All element labels mentioned in this model.
    pub fn labels(&self, out: &mut BTreeSet<Label>) {
        match self {
            ContentModel::Empty | ContentModel::Any | ContentModel::Text => {}
            ContentModel::Elem(l) => {
                out.insert(*l);
            }
            ContentModel::Seq(cs) | ContentModel::Choice(cs) => {
                for c in cs {
                    c.labels(out);
                }
            }
            ContentModel::Star(c) | ContentModel::Plus(c) | ContentModel::Opt(c) => c.labels(out),
            ContentModel::Mixed(ls) => out.extend(ls.iter().copied()),
        }
    }

    /// Whether the model permits text children.
    pub fn allows_text(&self) -> bool {
        matches!(
            self,
            ContentModel::Text | ContentModel::Mixed(_) | ContentModel::Any
        )
    }

    /// Renders the model in DTD syntax (without the outer `<!ELEMENT>`).
    pub fn display<'a>(&'a self, vocab: &'a Vocabulary) -> ContentModelDisplay<'a> {
        ContentModelDisplay { model: self, vocab }
    }
}

/// [`fmt::Display`] adapter for [`ContentModel`].
pub struct ContentModelDisplay<'a> {
    model: &'a ContentModel,
    vocab: &'a Vocabulary,
}

impl fmt::Display for ContentModelDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(m: &ContentModel, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match m {
                ContentModel::Empty => write!(f, "EMPTY"),
                ContentModel::Any => write!(f, "ANY"),
                ContentModel::Text => write!(f, "(#PCDATA)"),
                ContentModel::Elem(l) => write!(f, "{}", vocab.name(*l)),
                ContentModel::Seq(cs) => {
                    write!(f, "(")?;
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        go(c, vocab, f)?;
                    }
                    write!(f, ")")
                }
                ContentModel::Choice(cs) => {
                    write!(f, "(")?;
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " | ")?;
                        }
                        go(c, vocab, f)?;
                    }
                    write!(f, ")")
                }
                ContentModel::Star(c) => {
                    go(c, vocab, f)?;
                    write!(f, "*")
                }
                ContentModel::Plus(c) => {
                    go(c, vocab, f)?;
                    write!(f, "+")
                }
                ContentModel::Opt(c) => {
                    go(c, vocab, f)?;
                    write!(f, "?")
                }
                ContentModel::Mixed(ls) => {
                    write!(f, "(#PCDATA")?;
                    for l in ls {
                        write!(f, " | {}", vocab.name(*l))?;
                    }
                    write!(f, ")*")
                }
            }
        }
        go(self.model, self.vocab, f)
    }
}

/// A document type definition: a root element type plus one production per
/// declared element type.
#[derive(Clone, Debug)]
pub struct Dtd {
    vocab: Vocabulary,
    root: Label,
    productions: BTreeMap<Label, ContentModel>,
}

impl Dtd {
    /// Creates a DTD with the given root and no productions yet.
    pub fn new(vocab: Vocabulary, root: Label) -> Self {
        Dtd {
            vocab,
            root,
            productions: BTreeMap::new(),
        }
    }

    /// The vocabulary element types are interned against.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The root element type.
    pub fn root(&self) -> Label {
        self.root
    }

    /// Overrides the root element type.
    pub fn set_root(&mut self, root: Label) {
        self.root = root;
    }

    /// Adds (or replaces) the production for `label`.
    pub fn add_production(&mut self, label: Label, model: ContentModel) {
        self.productions.insert(label, model);
    }

    /// The content model of `label`, if declared.
    pub fn production(&self, label: Label) -> Option<&ContentModel> {
        self.productions.get(&label)
    }

    /// All declared element types, in label order.
    pub fn element_types(&self) -> impl Iterator<Item = Label> + '_ {
        self.productions.keys().copied()
    }

    /// Number of declared element types.
    pub fn len(&self) -> usize {
        self.productions.len()
    }

    /// Whether no production has been declared.
    pub fn is_empty(&self) -> bool {
        self.productions.is_empty()
    }

    /// The set of element types that may appear as children of `label`.
    pub fn child_types(&self, label: Label) -> BTreeSet<Label> {
        let mut out = BTreeSet::new();
        if let Some(m) = self.productions.get(&label) {
            if matches!(m, ContentModel::Any) {
                return self.element_types().collect();
            }
            m.labels(&mut out);
        }
        out
    }

    /// Whether elements of type `label` may contain text.
    pub fn allows_text(&self, label: Label) -> bool {
        self.productions
            .get(&label)
            .map(|m| m.allows_text())
            .unwrap_or(false)
    }

    /// Element types reachable from the root (including the root).
    pub fn reachable_types(&self) -> BTreeSet<Label> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(self.root);
        queue.push_back(self.root);
        while let Some(l) = queue.pop_front() {
            for c in self.child_types(l) {
                if seen.insert(c) {
                    queue.push_back(c);
                }
            }
        }
        seen
    }

    /// Whether the element-type graph has a cycle reachable from the root
    /// (i.e. the DTD is *recursive*, the case SMOQE uniquely supports).
    pub fn is_recursive(&self) -> bool {
        // DFS with colors over the reachable subgraph.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: HashMap<Label, Color> = HashMap::new();
        let mut stack = vec![(self.root, false)];
        while let Some((l, processed)) = stack.pop() {
            if processed {
                color.insert(l, Color::Black);
                continue;
            }
            match color.get(&l).copied().unwrap_or(Color::White) {
                Color::Grey => return true,
                Color::Black => continue,
                Color::White => {}
            }
            color.insert(l, Color::Grey);
            stack.push((l, true));
            for c in self.child_types(l) {
                match color.get(&c).copied().unwrap_or(Color::White) {
                    Color::Grey => return true,
                    Color::Black => {}
                    Color::White => stack.push((c, false)),
                }
            }
        }
        false
    }

    /// Minimum derivation height per element type: the height of the
    /// shallowest document subtree an element of that type can root.
    /// Types that cannot terminate (pathological DTDs) get `None`.
    pub fn min_heights(&self) -> HashMap<Label, usize> {
        let mut h: HashMap<Label, usize> = HashMap::new();
        // Fixpoint: a type's height is 1 + min over a completing expansion.
        loop {
            let mut changed = false;
            for (&l, m) in &self.productions {
                if let Some(cost) = model_min_height(m, &h) {
                    let entry = h.get(&l).copied();
                    let new = cost + 1;
                    if entry.map(|e| new < e).unwrap_or(true) {
                        h.insert(l, new);
                        changed = true;
                    }
                }
            }
            if !changed {
                return h;
            }
        }
    }

    /// Validates `doc` against this DTD: the root label matches, every
    /// element is declared, and every element's child sequence matches its
    /// content model.
    pub fn validate(&self, doc: &Document) -> Result<(), XmlError> {
        if doc.label(doc.root()) != Some(self.root) {
            return Err(XmlError::Invalid(format!(
                "root element is <{}>, DTD requires <{}>",
                doc.label(doc.root())
                    .map(|l| self.vocab.name(l).to_string())
                    .unwrap_or_default(),
                self.vocab.name(self.root)
            )));
        }
        let mut matchers: HashMap<Label, Matcher> = HashMap::new();
        for n in doc.all_nodes() {
            let Some(l) = doc.label(n) else { continue };
            let Some(model) = self.productions.get(&l) else {
                return Err(XmlError::Invalid(format!(
                    "element <{}> is not declared in the DTD",
                    self.vocab.name(l)
                )));
            };
            let matcher = matchers.entry(l).or_insert_with(|| Matcher::compile(model));
            if !matcher.matches(doc, n) {
                return Err(XmlError::Invalid(format!(
                    "children of <{}> do not match content model {}",
                    self.vocab.name(l),
                    model.display(&self.vocab)
                )));
            }
        }
        Ok(())
    }

    /// Parses standard DTD syntax: a sequence of `<!ELEMENT name (model)>`
    /// declarations (comments allowed). The first declaration names the
    /// root type.
    pub fn parse(input: &str, vocab: &Vocabulary) -> Result<Dtd, XmlError> {
        DtdParser {
            bytes: input.as_bytes(),
            pos: 0,
            vocab,
        }
        .parse_all()
    }

    /// Renders the DTD in standard syntax (parseable by [`Dtd::parse`]).
    pub fn to_dtd_string(&self) -> String {
        let mut out = String::new();
        // Emit the root production first so parse(to_dtd_string()) keeps
        // the same root.
        let mut order: Vec<Label> = vec![self.root];
        order.extend(self.productions.keys().copied().filter(|&l| l != self.root));
        for l in order {
            if let Some(m) = self.productions.get(&l) {
                let name = self.vocab.name(l);
                let body = match m {
                    ContentModel::Empty => "EMPTY".to_string(),
                    ContentModel::Any => "ANY".to_string(),
                    // DTD requires the content model to be parenthesized;
                    // Seq/Choice/Text/Mixed already render with parens.
                    ContentModel::Elem(_)
                    | ContentModel::Star(_)
                    | ContentModel::Plus(_)
                    | ContentModel::Opt(_) => format!("({})", m.display(&self.vocab)),
                    _ => m.display(&self.vocab).to_string(),
                };
                out.push_str(&format!("<!ELEMENT {name} {body}>\n"));
            }
        }
        out
    }
}

fn model_min_height(m: &ContentModel, h: &HashMap<Label, usize>) -> Option<usize> {
    match m {
        ContentModel::Empty | ContentModel::Text | ContentModel::Any | ContentModel::Mixed(_) => {
            Some(0)
        }
        ContentModel::Elem(l) => h.get(l).copied(),
        ContentModel::Seq(cs) => {
            let mut max = 0;
            for c in cs {
                max = max.max(model_min_height(c, h)?);
            }
            Some(max)
        }
        ContentModel::Choice(cs) => cs.iter().filter_map(|c| model_min_height(c, h)).min(),
        // Star/Opt can expand to nothing.
        ContentModel::Star(_) | ContentModel::Opt(_) => Some(0),
        ContentModel::Plus(c) => model_min_height(c, h),
    }
}

// ---------------------------------------------------------------------------
// Content-model matching (Thompson NFA over child symbols)
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Sym {
    Elem(Label),
    Text,
}

/// Compiled content model: a small epsilon-NFA over child symbols.
struct Matcher {
    /// eps[s] = states reachable from s via one epsilon edge.
    eps: Vec<Vec<u32>>,
    /// steps[s] = (symbol, target) consuming edges.
    steps: Vec<Vec<(Sym, u32)>>,
    start: u32,
    accept: u32,
    any: bool,
}

impl Matcher {
    fn new_state(&mut self) -> u32 {
        self.eps.push(Vec::new());
        self.steps.push(Vec::new());
        (self.eps.len() - 1) as u32
    }

    fn compile(model: &ContentModel) -> Matcher {
        let mut m = Matcher {
            eps: Vec::new(),
            steps: Vec::new(),
            start: 0,
            accept: 0,
            any: matches!(model, ContentModel::Any),
        };
        let start = m.new_state();
        let accept = m.new_state();
        m.start = start;
        m.accept = accept;
        m.build(model, start, accept);
        m
    }

    /// Wires `model` between states `from` and `to`.
    fn build(&mut self, model: &ContentModel, from: u32, to: u32) {
        match model {
            ContentModel::Empty | ContentModel::Any => self.eps[from as usize].push(to),
            ContentModel::Text => {
                // Zero or more text nodes.
                self.eps[from as usize].push(to);
                self.steps[from as usize].push((Sym::Text, from));
            }
            ContentModel::Elem(l) => self.steps[from as usize].push((Sym::Elem(*l), to)),
            ContentModel::Seq(cs) => {
                let mut cur = from;
                for (i, c) in cs.iter().enumerate() {
                    let next = if i + 1 == cs.len() {
                        to
                    } else {
                        self.new_state()
                    };
                    self.build(c, cur, next);
                    cur = next;
                }
                if cs.is_empty() {
                    self.eps[from as usize].push(to);
                }
            }
            ContentModel::Choice(cs) => {
                for c in cs {
                    self.build(c, from, to);
                }
                if cs.is_empty() {
                    self.eps[from as usize].push(to);
                }
            }
            ContentModel::Star(c) => {
                let hub = self.new_state();
                self.eps[from as usize].push(hub);
                self.eps[hub as usize].push(to);
                let back = self.new_state();
                self.build(c, hub, back);
                self.eps[back as usize].push(hub);
            }
            ContentModel::Plus(c) => {
                let hub = self.new_state();
                self.build(c, from, hub);
                self.eps[hub as usize].push(to);
                let back = self.new_state();
                self.build(c, hub, back);
                self.eps[back as usize].push(hub);
            }
            ContentModel::Opt(c) => {
                self.eps[from as usize].push(to);
                self.build(c, from, to);
            }
            ContentModel::Mixed(ls) => {
                self.eps[from as usize].push(to);
                self.steps[from as usize].push((Sym::Text, from));
                for l in ls {
                    self.steps[from as usize].push((Sym::Elem(*l), from));
                }
            }
        }
    }

    fn closure(&self, set: &mut [bool]) {
        let mut work: Vec<u32> = (0..set.len() as u32).filter(|&s| set[s as usize]).collect();
        while let Some(s) = work.pop() {
            for &t in &self.eps[s as usize] {
                if !set[t as usize] {
                    set[t as usize] = true;
                    work.push(t);
                }
            }
        }
    }

    fn matches(&self, doc: &Document, node: NodeId) -> bool {
        if self.any {
            return true;
        }
        let mut cur = vec![false; self.eps.len()];
        cur[self.start as usize] = true;
        self.closure(&mut cur);
        for child in doc.children(node) {
            let sym = match doc.label(child) {
                Some(l) => Sym::Elem(l),
                None => Sym::Text,
            };
            let mut next = vec![false; self.eps.len()];
            let mut moved = false;
            for (s, &active) in cur.iter().enumerate() {
                if !active {
                    continue;
                }
                for &(edge_sym, t) in &self.steps[s] {
                    if edge_sym == sym {
                        next[t as usize] = true;
                        moved = true;
                    }
                }
            }
            if !moved {
                return false;
            }
            self.closure(&mut next);
            cur = next;
        }
        cur[self.accept as usize]
    }
}

// ---------------------------------------------------------------------------
// DTD syntax parser
// ---------------------------------------------------------------------------

struct DtdParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    vocab: &'a Vocabulary,
}

impl DtdParser<'_> {
    fn err(&self, msg: impl fmt::Display) -> XmlError {
        XmlError::DtdSyntax(format!("{msg} at offset {}", self.pos))
    }

    fn skip_trivia(&mut self) {
        loop {
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.bytes[self.pos..].starts_with(b"<!--") {
                if let Some(end) = find(self.bytes, self.pos + 4, b"-->") {
                    self.pos = end + 3;
                    continue;
                }
                self.pos = self.bytes.len();
            }
            break;
        }
    }

    fn eat(&mut self, token: &[u8]) -> bool {
        if self.bytes[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &[u8]) -> Result<(), XmlError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format_args!(
                "expected '{}'",
                String::from_utf8_lossy(token)
            )))
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_dtd_name_byte(self.bytes[self.pos]) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_all(mut self) -> Result<Dtd, XmlError> {
        let mut root: Option<Label> = None;
        let mut productions = BTreeMap::new();
        loop {
            self.skip_trivia();
            if self.pos >= self.bytes.len() {
                break;
            }
            self.expect(b"<!ELEMENT")?;
            self.skip_trivia();
            let name = self.name()?;
            let label = self.vocab.intern(&name);
            self.skip_trivia();
            let model = self.content_model()?;
            self.skip_trivia();
            self.expect(b">")?;
            if productions.insert(label, model).is_some() {
                return Err(self.err(format_args!("duplicate declaration for '{name}'")));
            }
            root.get_or_insert(label);
        }
        let root = root.ok_or_else(|| self.err("no element declarations"))?;
        Ok(Dtd {
            vocab: self.vocab.clone(),
            root,
            productions,
        })
    }

    fn content_model(&mut self) -> Result<ContentModel, XmlError> {
        self.skip_trivia();
        if self.eat(b"EMPTY") {
            return Ok(ContentModel::Empty);
        }
        if self.eat(b"ANY") {
            return Ok(ContentModel::Any);
        }
        self.expect(b"(")?;
        self.skip_trivia();
        if self.eat(b"#PCDATA") {
            self.skip_trivia();
            if self.eat(b")") {
                // Optional trailing '*' on (#PCDATA)*.
                self.eat(b"*");
                return Ok(ContentModel::Text);
            }
            let mut labels = Vec::new();
            while self.eat(b"|") {
                self.skip_trivia();
                let n = self.name()?;
                labels.push(self.vocab.intern(&n));
                self.skip_trivia();
            }
            self.expect(b")")?;
            self.expect(b"*")?;
            return Ok(ContentModel::Mixed(labels));
        }
        // Rewind the '(' and parse a grouped particle.
        self.pos -= 1;
        let cp = self.particle()?;
        Ok(cp)
    }

    /// Parses one content particle (name or group, with quantifier).
    fn particle(&mut self) -> Result<ContentModel, XmlError> {
        self.skip_trivia();
        let base = if self.eat(b"(") {
            let first = self.particle()?;
            self.skip_trivia();
            let model = if self.eat(b"|") {
                let mut items = vec![first];
                loop {
                    items.push(self.particle()?);
                    self.skip_trivia();
                    if !self.eat(b"|") {
                        break;
                    }
                }
                ContentModel::Choice(items)
            } else if self.eat(b",") {
                let mut items = vec![first];
                loop {
                    items.push(self.particle()?);
                    self.skip_trivia();
                    if !self.eat(b",") {
                        break;
                    }
                }
                ContentModel::Seq(items)
            } else {
                first
            };
            self.skip_trivia();
            self.expect(b")")?;
            model
        } else {
            let n = self.name()?;
            ContentModel::Elem(self.vocab.intern(&n))
        };
        Ok(if self.eat(b"*") {
            ContentModel::Star(Box::new(base))
        } else if self.eat(b"+") {
            ContentModel::Plus(Box::new(base))
        } else if self.eat(b"?") {
            ContentModel::Opt(Box::new(base))
        } else {
            base
        })
    }
}

fn is_dtd_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':')
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| i + from)
}

/// The hospital DTD of Fig. 3(a) in standard syntax, used across tests,
/// examples and benchmarks.
pub const HOSPITAL_DTD: &str = r#"
<!-- Fig. 3(a): document DTD D -->
<!ELEMENT hospital (patient*)>
<!ELEMENT patient  (pname, visit*, parent*)>
<!ELEMENT pname    (#PCDATA)>
<!ELEMENT parent   (patient)>
<!ELEMENT visit    (treatment, date)>
<!ELEMENT treatment (test | medication)>
<!ELEMENT test     (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT date     (#PCDATA)>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn hospital() -> (Vocabulary, Dtd) {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        (vocab, dtd)
    }

    #[test]
    fn parses_hospital_dtd() {
        let (vocab, dtd) = hospital();
        assert_eq!(dtd.len(), 9);
        assert_eq!(&*vocab.name(dtd.root()), "hospital");
        let patient = vocab.lookup("patient").unwrap();
        let kids = dtd.child_types(patient);
        assert!(kids.contains(&vocab.lookup("pname").unwrap()));
        assert!(kids.contains(&vocab.lookup("visit").unwrap()));
        assert!(kids.contains(&vocab.lookup("parent").unwrap()));
        assert_eq!(kids.len(), 3);
    }

    #[test]
    fn hospital_is_recursive() {
        let (_, dtd) = hospital();
        assert!(dtd.is_recursive()); // patient -> parent -> patient
    }

    #[test]
    fn non_recursive_dtd() {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse("<!ELEMENT a (b*)><!ELEMENT b (#PCDATA)>", &vocab).unwrap();
        assert!(!dtd.is_recursive());
    }

    #[test]
    fn min_heights_terminate_on_recursion() {
        let (vocab, dtd) = hospital();
        let h = dtd.min_heights();
        // patient can terminate: (pname, visit*, parent*) with zero visits
        // and parents -> height 2 (patient -> pname -> text).
        assert_eq!(h[&vocab.lookup("pname").unwrap()], 1);
        assert_eq!(h[&vocab.lookup("patient").unwrap()], 2);
    }

    #[test]
    fn validates_conforming_document() {
        let (vocab, dtd) = hospital();
        let doc = Document::parse_str(
            "<hospital><patient><pname>Ann</pname>\
             <visit><treatment><medication>autism</medication></treatment><date>d1</date></visit>\
             <parent><patient><pname>Bob</pname></patient></parent>\
             </patient></hospital>",
            &vocab,
        )
        .unwrap();
        dtd.validate(&doc).unwrap();
    }

    #[test]
    fn rejects_wrong_child_order() {
        let (vocab, dtd) = hospital();
        let doc = Document::parse_str(
            "<hospital><patient><visit><treatment><test>t</test></treatment><date>d</date></visit>\
             <pname>Ann</pname></patient></hospital>",
            &vocab,
        )
        .unwrap();
        assert!(dtd.validate(&doc).is_err());
    }

    #[test]
    fn rejects_undeclared_element() {
        let (vocab, dtd) = hospital();
        let doc = Document::parse_str("<hospital><intruder/></hospital>", &vocab).unwrap();
        assert!(dtd.validate(&doc).is_err());
    }

    #[test]
    fn rejects_wrong_root() {
        let (vocab, dtd) = hospital();
        let doc = Document::parse_str("<patient><pname>A</pname></patient>", &vocab).unwrap();
        assert!(dtd.validate(&doc).is_err());
    }

    #[test]
    fn choice_matches_either_arm() {
        let (vocab, dtd) = hospital();
        for content in ["<test>x</test>", "<medication>m</medication>"] {
            let doc = Document::parse_str(
                &format!(
                    "<hospital><patient><pname>A</pname><visit><treatment>{content}</treatment>\
                     <date>d</date></visit></patient></hospital>"
                ),
                &vocab,
            )
            .unwrap();
            dtd.validate(&doc).unwrap();
        }
    }

    #[test]
    fn empty_and_any_models() {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(
            "<!ELEMENT a (b, c)><!ELEMENT b EMPTY><!ELEMENT c ANY>",
            &vocab,
        )
        .unwrap();
        let ok = Document::parse_str("<a><b/><c><b/><b/>text</c></a>", &vocab).unwrap();
        dtd.validate(&ok).unwrap();
        let bad = Document::parse_str("<a><b>t</b><c/></a>", &vocab).unwrap();
        assert!(dtd.validate(&bad).is_err());
    }

    #[test]
    fn mixed_content() {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse("<!ELEMENT a (#PCDATA | b)*><!ELEMENT b (#PCDATA)>", &vocab).unwrap();
        let doc = Document::parse_str("<a>x<b>y</b>z</a>", &vocab).unwrap();
        dtd.validate(&doc).unwrap();
    }

    #[test]
    fn dtd_round_trips_through_text() {
        let (vocab, dtd) = hospital();
        let text = dtd.to_dtd_string();
        let dtd2 = Dtd::parse(&text, &vocab).unwrap();
        assert_eq!(dtd2.root(), dtd.root());
        assert_eq!(dtd2.len(), dtd.len());
        for l in dtd.element_types() {
            assert_eq!(
                dtd2.production(l),
                dtd.production(l),
                "production {}",
                vocab.name(l)
            );
        }
    }

    #[test]
    fn reachability() {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(
            "<!ELEMENT a (b)><!ELEMENT b (#PCDATA)><!ELEMENT orphan (#PCDATA)>",
            &vocab,
        )
        .unwrap();
        let reach = dtd.reachable_types();
        assert!(reach.contains(&vocab.lookup("a").unwrap()));
        assert!(reach.contains(&vocab.lookup("b").unwrap()));
        assert!(!reach.contains(&vocab.lookup("orphan").unwrap()));
    }

    #[test]
    fn nested_groups_parse() {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(
            "<!ELEMENT a ((b | c)+, d?)><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>",
            &vocab,
        )
        .unwrap();
        let ok = Document::parse_str("<a><c/><b/><d/></a>", &vocab).unwrap();
        dtd.validate(&ok).unwrap();
        let bad = Document::parse_str("<a><d/></a>", &vocab).unwrap();
        assert!(dtd.validate(&bad).is_err());
    }
}
