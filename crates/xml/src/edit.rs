//! Structural document edits — the tree-mutation substrate of the update
//! subsystem.
//!
//! [`Document`]s are immutable after build (evaluators rely on the
//! "`NodeId` order = document order" invariant and readers share them as
//! `Arc` snapshots), so an edit produces a **new** document. For
//! buffer-backed (parsed) documents the new document is built by **buffer
//! splicing**: the new raw buffer is composed of the span ranges around
//! the edit point plus the serialized fragment bytes, then re-scanned
//! once — so regenerating the serialized form after an update is a byte
//! splice, not a full tree re-serialize. Programmatic documents (no
//! backing buffer) are re-emitted through [`TreeBuilder`] with the edited
//! subtree skipped, replaced or extended in place. Either way every
//! invariant holds by construction — the part that must *not* be
//! recomputed from scratch (the TAX index) is maintained incrementally
//! from the returned [`EditSpan`] instead (see
//! `smoqe_tax::TaxIndex::patched`).
//!
//! Because node ids are pre-order positions, every supported edit changes
//! one **contiguous id window**: nodes before the window keep their ids,
//! nodes after it shift by `inserted - removed`, and the only nodes whose
//! *descendant structure* changes are the ancestors of the splice point.
//! [`EditSpan`] records exactly that.

use crate::label::Label;
use crate::tree::{Document, NodeId, NodeKind, TreeBuilder};
use std::fmt;

/// The contiguous pre-order id window an edit changed.
///
/// Old node ids `< start` are unchanged in the new document; old ids
/// `>= start + removed` map to `id - removed + inserted`. The descendant
/// sets of nodes outside the window can only change along the ancestor
/// chain of `parent`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EditSpan {
    /// First node id of the window (same position in old and new ids).
    pub start: u32,
    /// Number of old nodes the window replaced (includes a trailing text
    /// node swallowed by a boundary merge — deleting an element between
    /// two text siblings joins them into one node).
    pub removed: u32,
    /// Number of new nodes the window now holds.
    pub inserted: u32,
    /// Parent of the splice point, in **new**-document ids (`None` when
    /// the root itself was replaced). Always `< start`, so the id is
    /// valid in both documents.
    pub parent: Option<NodeId>,
}

/// Where an inserted fragment lands relative to the target node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplicePlace {
    /// As the last child of the target.
    Into,
    /// As the immediately preceding sibling of the target.
    Before,
    /// As the immediately following sibling of the target.
    After,
}

/// Structural reasons an edit cannot be applied. Schema conformance is
/// *not* checked here — callers validate the result against their DTD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditError {
    /// Deleting the root would leave no document.
    RootRemoval,
    /// Inserting before/after the root would create a second root.
    RootSibling,
    /// The target node id does not exist in the document.
    UnknownTarget(NodeId),
    /// The target is a text node; edits target elements.
    TextTarget(NodeId),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::RootRemoval => write!(f, "cannot delete the document root"),
            EditError::RootSibling => {
                write!(f, "cannot insert a sibling of the document root")
            }
            EditError::UnknownTarget(n) => write!(f, "edit target {n:?} is not in the document"),
            EditError::TextTarget(n) => {
                write!(f, "edit target {n:?} is a text node, not an element")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// The edit to perform at a target node. Fragments are stand-alone
/// documents (their root element is what gets spliced in); their labels
/// are re-interned into the edited document's vocabulary, so a fragment
/// parsed against any vocabulary is safe to splice.
enum Op<'a> {
    Delete,
    Replace(&'a Document),
    Insert(SplicePlace, &'a Document),
}

/// Deletes the subtree rooted at `target`.
pub fn delete_subtree(doc: &Document, target: NodeId) -> Result<(Document, EditSpan), EditError> {
    splice(doc, target, Op::Delete)
}

/// Replaces the subtree rooted at `target` with `fragment` (replacing the
/// root is allowed — the fragment becomes the new root).
pub fn replace_subtree(
    doc: &Document,
    target: NodeId,
    fragment: &Document,
) -> Result<(Document, EditSpan), EditError> {
    splice(doc, target, Op::Replace(fragment))
}

/// Inserts `fragment` into/before/after `target`.
pub fn insert_fragment(
    doc: &Document,
    target: NodeId,
    place: SplicePlace,
    fragment: &Document,
) -> Result<(Document, EditSpan), EditError> {
    splice(doc, target, Op::Insert(place, fragment))
}

fn splice(doc: &Document, target: NodeId, op: Op<'_>) -> Result<(Document, EditSpan), EditError> {
    if target.index() >= doc.node_count() {
        return Err(EditError::UnknownTarget(target));
    }
    if !doc.is_element(target) {
        return Err(EditError::TextTarget(target));
    }
    match op {
        Op::Delete if target == doc.root() => return Err(EditError::RootRemoval),
        Op::Insert(SplicePlace::Before | SplicePlace::After, _) if target == doc.root() => {
            return Err(EditError::RootSibling)
        }
        _ => {}
    }

    let subtree = doc.subtree_size(target) as u32;
    let (start, removed, inserted) = match &op {
        Op::Delete => (target.0, subtree, 0),
        Op::Replace(f) => (target.0, subtree, f.node_count() as u32),
        Op::Insert(SplicePlace::Before, f) => (target.0, 0, f.node_count() as u32),
        Op::Insert(SplicePlace::After | SplicePlace::Into, f) => {
            (target.0 + subtree, 0, f.node_count() as u32)
        }
    };
    let parent = match &op {
        Op::Insert(SplicePlace::Into, _) => Some(target),
        _ => doc.parent(target),
    };

    let new_doc = match splice_via_buffer(doc, target, &op) {
        Some(d) => d,
        None => {
            let mut builder = TreeBuilder::new(doc.vocabulary().clone());
            builder.reserve(doc.node_count() - removed as usize + inserted as usize);
            copy_edited(doc, doc.root(), target, &op, &mut builder);
            builder
                .finish()
                .expect("splice emits balanced events over a non-empty tree")
        }
    };

    // A delete can make two text siblings adjacent; the builder merges
    // them into the prefix node, swallowing one extra old node. Charge it
    // to the span so the suffix mapping stays exact.
    let expected = doc.node_count() as u32 - removed + inserted;
    let actual = new_doc.node_count() as u32;
    debug_assert!(
        actual == expected || actual + 1 == expected,
        "splice count drift"
    );
    let removed = removed + (expected - actual);

    Ok((
        new_doc,
        EditSpan {
            start,
            removed,
            inserted,
            parent,
        },
    ))
}

/// Builds the edited document by splicing the raw buffer and re-scanning
/// it — the span-based fast path. Returns `None` (falling back to the
/// [`TreeBuilder`] rebuild) for programmatic documents or when the buffer
/// geometry cannot be resolved.
///
/// The composed buffer is `old[..cut_start] + insert + old[cut_end..]`.
/// For deletes, the cut also swallows the *invisible gap* between the
/// target and its siblings (comments, processing instructions and
/// whitespace-only runs that produced no node), so that a dropped
/// whitespace run can never concatenate with kept text and resurface.
fn splice_via_buffer(doc: &Document, target: NodeId, op: &Op<'_>) -> Option<Document> {
    let buf = doc.raw_source()?;
    let (ext_s, ext_e) = doc.node_extent(target)?;
    let (cut_start, cut_end, insert) = match op {
        Op::Delete => {
            let parent = doc.parent(target)?;
            let (par_s, par_e) = doc.node_extent(parent)?;
            let mut prev = None;
            for c in doc.children(parent) {
                if c == target {
                    break;
                }
                prev = Some(c);
            }
            let cut_start = match prev {
                Some(p) => doc.node_extent(p)?.1,
                None => tag_content_start(buf, par_s)?,
            };
            let cut_end = match doc.next_sibling(target) {
                Some(n) => doc.node_extent(n)?.0,
                None => close_tag_start(buf, par_e)?,
            };
            (cut_start, cut_end, String::new())
        }
        Op::Replace(f) => (ext_s, ext_e, f.to_xml()),
        Op::Insert(SplicePlace::Before, f) => (ext_s, ext_s, f.to_xml()),
        Op::Insert(SplicePlace::After, f) => (ext_e, ext_e, f.to_xml()),
        Op::Insert(SplicePlace::Into, f) => {
            if buf.as_bytes().get(ext_e.wrapping_sub(2)) == Some(&b'/') {
                // Self-closing target: rewrite `<b .../>` as
                // `<b ...>fragment</b>`.
                let name = doc.name(target)?;
                (ext_e - 2, ext_e, format!(">{}</{}>", f.to_xml(), name))
            } else {
                let pos = close_tag_start(buf, ext_e)?;
                (pos, pos, f.to_xml())
            }
        }
    };
    let mut src = String::with_capacity(buf.len() - (cut_end - cut_start) + insert.len());
    src.push_str(&buf[..cut_start]);
    src.push_str(&insert);
    src.push_str(&buf[cut_end..]);
    crate::parse::parse_buffer(std::sync::Arc::from(src), doc.vocabulary()).ok()
}

/// Offset just past the `>` closing the start tag that begins at
/// `tag_start` (quote-aware: a `>` inside a quoted attribute value does
/// not close the tag).
fn tag_content_start(buf: &str, tag_start: usize) -> Option<usize> {
    let b = buf.as_bytes();
    debug_assert_eq!(b.get(tag_start), Some(&b'<'));
    let mut i = tag_start + 1;
    while i < b.len() {
        match b[i] {
            b'"' | b'\'' => {
                let q = b[i];
                i += 1;
                while i < b.len() && b[i] != q {
                    i += 1;
                }
                i += 1;
            }
            b'>' => return Some(i + 1),
            _ => i += 1,
        }
    }
    None
}

/// Offset of the `<` of the end tag whose `>` sits at `extent_end - 1`
/// (reverse scan over `</ name ws* >`). `None` for self-closing tags.
fn close_tag_start(buf: &str, extent_end: usize) -> Option<usize> {
    let b = buf.as_bytes();
    let mut i = extent_end.checked_sub(1)?;
    if b[i] != b'>' {
        return None;
    }
    i = i.checked_sub(1)?;
    while b[i].is_ascii_whitespace() {
        i = i.checked_sub(1)?;
    }
    while crate::scanner::is_name_byte(b[i]) {
        i = i.checked_sub(1)?;
    }
    if b[i] == b'/' && i >= 1 && b[i - 1] == b'<' {
        Some(i - 1)
    } else {
        None
    }
}

/// Re-emits `node`'s subtree into `builder`, applying `op` at `target`.
fn copy_edited(
    src: &Document,
    node: NodeId,
    target: NodeId,
    op: &Op<'_>,
    builder: &mut TreeBuilder,
) {
    if node == target {
        match op {
            Op::Delete => return,
            Op::Replace(fragment) => {
                copy_fragment(fragment, fragment.root(), builder);
                return;
            }
            Op::Insert(SplicePlace::Before, fragment) => {
                copy_fragment(fragment, fragment.root(), builder);
            }
            Op::Insert(SplicePlace::After | SplicePlace::Into, _) => {}
        }
    }
    match src.kind(node) {
        NodeKind::Text(_) => builder.text(src.text(node).expect("text kind")),
        NodeKind::Element(label) => {
            builder.start_element(*label);
            for (name, value) in src.attributes(node) {
                builder.attribute(name, value);
            }
            for child in src.children(node) {
                copy_edited(src, child, target, op, builder);
            }
            if node == target {
                if let Op::Insert(SplicePlace::Into, fragment) = op {
                    copy_fragment(fragment, fragment.root(), builder);
                }
            }
            builder.end_element();
        }
    }
    if node == target {
        if let Op::Insert(SplicePlace::After, fragment) = op {
            copy_fragment(fragment, fragment.root(), builder);
        }
    }
}

/// Copies a fragment subtree, re-interning labels by name so fragments
/// parsed against a foreign vocabulary splice correctly (a shared
/// vocabulary makes this a cheap identity lookup).
fn copy_fragment(frag: &Document, node: NodeId, builder: &mut TreeBuilder) {
    match frag.kind(node) {
        NodeKind::Text(_) => builder.text(frag.text(node).expect("text kind")),
        NodeKind::Element(label) => {
            let label = intern_into(builder, frag, *label);
            builder.start_element(label);
            for (name, value) in frag.attributes(node) {
                builder.attribute(name, value);
            }
            for child in frag.children(node) {
                copy_fragment(frag, child, builder);
            }
            builder.end_element();
        }
    }
}

fn intern_into(builder: &TreeBuilder, frag: &Document, label: Label) -> Label {
    if builder.vocabulary().same_as(frag.vocabulary()) {
        label
    } else {
        builder.vocabulary().intern(&frag.vocabulary().name(label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Vocabulary;

    fn doc(xml: &str) -> (Vocabulary, Document) {
        let vocab = Vocabulary::new();
        let d = Document::parse_str(xml, &vocab).unwrap();
        (vocab, d)
    }

    fn frag(vocab: &Vocabulary, xml: &str) -> Document {
        Document::parse_str(xml, vocab).unwrap()
    }

    fn nth_labeled(d: &Document, vocab: &Vocabulary, name: &str, n: usize) -> NodeId {
        let label = vocab.lookup(name).unwrap();
        d.nodes_labeled(label).nth(n).unwrap()
    }

    #[test]
    fn delete_removes_the_subtree() {
        let (vocab, d) = doc("<a><b><c/></b><d/></a>");
        let b = nth_labeled(&d, &vocab, "b", 0);
        let (nd, span) = delete_subtree(&d, b).unwrap();
        assert_eq!(nd.to_xml(), "<a><d/></a>");
        assert_eq!(
            span,
            EditSpan {
                start: 1,
                removed: 2,
                inserted: 0,
                parent: Some(d.root())
            }
        );
    }

    #[test]
    fn delete_merges_adjacent_text_and_charges_the_span() {
        let (vocab, d) = doc("<a>x<b/>y</a>");
        let b = nth_labeled(&d, &vocab, "b", 0);
        let (nd, span) = delete_subtree(&d, b).unwrap();
        assert_eq!(nd.to_xml(), "<a>xy</a>");
        assert_eq!(nd.node_count(), 2);
        // b (1 node) plus the swallowed trailing text node.
        assert_eq!(span.removed, 2);
        assert_eq!(span.start, 2);
        assert_eq!(d.node_count() - span.removed as usize, nd.node_count());
    }

    #[test]
    fn insert_into_appends_as_last_child() {
        let (vocab, d) = doc("<a><b/><c/></a>");
        let b = nth_labeled(&d, &vocab, "b", 0);
        let f = frag(&vocab, "<e>t</e>");
        let (nd, span) = insert_fragment(&d, b, SplicePlace::Into, &f).unwrap();
        assert_eq!(nd.to_xml(), "<a><b><e>t</e></b><c/></a>");
        assert_eq!(
            span,
            EditSpan {
                start: 2,
                removed: 0,
                inserted: 2,
                parent: Some(b)
            }
        );
    }

    #[test]
    fn insert_before_and_after_place_siblings() {
        let (vocab, d) = doc("<a><b/><c/></a>");
        let c = nth_labeled(&d, &vocab, "c", 0);
        let f = frag(&vocab, "<e/>");
        let (before, span_b) = insert_fragment(&d, c, SplicePlace::Before, &f).unwrap();
        assert_eq!(before.to_xml(), "<a><b/><e/><c/></a>");
        assert_eq!(span_b.start, c.0);
        let (after, span_a) = insert_fragment(&d, c, SplicePlace::After, &f).unwrap();
        assert_eq!(after.to_xml(), "<a><b/><c/><e/></a>");
        assert_eq!(span_a.start, c.0 + 1);
    }

    #[test]
    fn replace_swaps_the_subtree() {
        let (vocab, d) = doc("<a><b><c/></b><d/></a>");
        let b = nth_labeled(&d, &vocab, "b", 0);
        let f = frag(&vocab, "<e><f/><g/></e>");
        let (nd, span) = replace_subtree(&d, b, &f).unwrap();
        assert_eq!(nd.to_xml(), "<a><e><f/><g/></e><d/></a>");
        assert_eq!(
            span,
            EditSpan {
                start: 1,
                removed: 2,
                inserted: 3,
                parent: Some(d.root())
            }
        );
    }

    #[test]
    fn replace_root_installs_a_new_root() {
        let (vocab, d) = doc("<a><b/></a>");
        let f = frag(&vocab, "<z><y/></z>");
        let (nd, span) = replace_subtree(&d, d.root(), &f).unwrap();
        assert_eq!(nd.to_xml(), "<z><y/></z>");
        assert_eq!(span.parent, None);
        assert_eq!(span.removed, 2);
        assert_eq!(span.inserted, 2);
    }

    #[test]
    fn root_deletion_and_root_siblings_are_rejected() {
        let (vocab, d) = doc("<a><b/></a>");
        let f = frag(&vocab, "<e/>");
        assert_eq!(
            delete_subtree(&d, d.root()).err(),
            Some(EditError::RootRemoval)
        );
        for place in [SplicePlace::Before, SplicePlace::After] {
            assert_eq!(
                insert_fragment(&d, d.root(), place, &f).err(),
                Some(EditError::RootSibling)
            );
        }
    }

    #[test]
    fn text_and_unknown_targets_are_rejected() {
        let (vocab, d) = doc("<a>txt</a>");
        let f = frag(&vocab, "<e/>");
        let text = d.first_child(d.root()).unwrap();
        assert!(matches!(
            delete_subtree(&d, text).err(),
            Some(EditError::TextTarget(_))
        ));
        assert!(matches!(
            insert_fragment(&d, NodeId(99), SplicePlace::Into, &f).err(),
            Some(EditError::UnknownTarget(_))
        ));
    }

    #[test]
    fn attributes_survive_copies_and_fragments() {
        let (vocab, d) = doc("<a id=\"1\"><b k=\"v\"/></a>");
        let b = nth_labeled(&d, &vocab, "b", 0);
        let f = frag(&vocab, "<e x=\"y\"/>");
        let (nd, _) = insert_fragment(&d, b, SplicePlace::After, &f).unwrap();
        assert_eq!(nd.attribute(nd.root(), "id"), Some("1"));
        let e = nth_labeled(&nd, &vocab, "e", 0);
        assert_eq!(nd.attribute(e, "x"), Some("y"));
        let b2 = nth_labeled(&nd, &vocab, "b", 0);
        assert_eq!(nd.attribute(b2, "k"), Some("v"));
    }

    #[test]
    fn foreign_vocabulary_fragments_are_reinterned() {
        let (vocab, d) = doc("<a><b/></a>");
        let other = Vocabulary::new();
        let f = Document::parse_str("<b><zz/></b>", &other).unwrap();
        let b = nth_labeled(&d, &vocab, "b", 0);
        let (nd, _) = replace_subtree(&d, b, &f).unwrap();
        assert_eq!(nd.to_xml(), "<a><b><zz/></b></a>");
        // `zz` got interned into the target vocabulary by name.
        let zz = vocab.lookup("zz").unwrap();
        assert_eq!(nd.nodes_labeled(zz).count(), 1);
    }

    #[test]
    fn node_ids_stay_in_document_order_after_edits() {
        let (vocab, d) = doc("<a><b><c/>t</b><d/><b/></a>");
        let f = frag(&vocab, "<e><f/></e>");
        let b1 = nth_labeled(&d, &vocab, "b", 1);
        for (nd, _) in [
            delete_subtree(&d, nth_labeled(&d, &vocab, "b", 0)).unwrap(),
            replace_subtree(&d, b1, &f).unwrap(),
            insert_fragment(&d, b1, SplicePlace::Into, &f).unwrap(),
        ] {
            let pre: Vec<NodeId> = nd.descendants_or_self(nd.root()).collect();
            let mut sorted = pre.clone();
            sorted.sort();
            assert_eq!(pre, sorted);
            assert_eq!(pre.len(), nd.node_count());
        }
    }

    #[test]
    fn suffix_ids_shift_by_the_span_delta() {
        let (vocab, d) = doc("<a><b><c/></b><d>x</d></a>");
        let b = nth_labeled(&d, &vocab, "b", 0);
        let f = frag(&vocab, "<e><f/><g/></e>");
        let (nd, span) = replace_subtree(&d, b, &f).unwrap();
        let d_old = nth_labeled(&d, &vocab, "d", 0);
        let d_new = nth_labeled(&nd, &vocab, "d", 0);
        assert_eq!(d_new.0, d_old.0 - span.removed + span.inserted);
        assert_eq!(nd.string_value(d_new), "x");
    }
}
