//! # smoqe-xml — the XML substrate of the SMOQE reproduction
//!
//! SMOQE (VLDB 2006) evaluates Regular XPath queries over XML documents in
//! two modes: **DOM** (the whole tree in memory) and **StAX** (one
//! sequential scan of the serialized document). No off-the-shelf crate is
//! used; this crate implements everything the engine needs from XML:
//!
//! * [`Vocabulary`] / [`Label`] — interned element and attribute names;
//!   all automata and indexes work over dense label ids.
//! * [`scanner`](crate::scanner) — the one SWAR-accelerated tokenizer
//!   behind both DOM and StAX modes, emitting byte-span tokens.
//! * [`Document`] / [`TreeBuilder`] — a span-based arena DOM over a shared
//!   `Arc<str>` input buffer; node ids are in document order.
//! * [`stax::PullParser`] — a StAX-style pull parser over any `BufRead`.
//! * [`parse`] — DOM parsing built on the scanner.
//! * [`serialize`] — compact/pretty serialization and an event-driven
//!   [`serialize::XmlWriter`] used by the streaming evaluator.
//! * [`edit`](crate::edit) — structural edits (delete/replace/insert of
//!   subtrees) that rebuild the arena while reporting the changed id
//!   window ([`EditSpan`]) for incremental index maintenance.
//! * [`Dtd`] / [`ContentModel`] — recursive DTDs with parsing, validation,
//!   and the structural analyses (child alphabets, reachability, recursion,
//!   minimum heights) the view-derivation algorithm needs.
//! * [`generate`](crate::generate) — seeded synthetic document generation
//!   from a DTD, in DOM or streaming form (the paper's unavailable hospital
//!   data is substituted this way; see DESIGN.md §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dtd;
pub mod edit;
pub mod error;
pub mod generate;
pub mod label;
pub mod labelset;
pub mod parse;
pub mod scanner;
pub mod serialize;
pub mod stax;
pub mod tree;

pub use dtd::{ContentModel, Dtd, HOSPITAL_DTD};
pub use edit::{
    delete_subtree, insert_fragment, replace_subtree, EditError, EditSpan, SplicePlace,
};
pub use error::XmlError;
pub use generate::{generate, generate_to_writer, GeneratorConfig};
pub use label::{Label, Vocabulary};
pub use labelset::LabelSet;
pub use parse::{parse_buffer, parse_document, parse_file, parse_reader};
pub use tree::{Attribute, Document, MemorySummary, NodeId, NodeKind, TreeBuilder};
