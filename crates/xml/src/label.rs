//! Interned element labels.
//!
//! Every element name ("tag") occurring in a document, DTD, policy or query
//! is interned into a [`Vocabulary`], yielding a dense [`Label`] id. All
//! automata and indexes in SMOQE operate on `Label` ids instead of strings:
//! transitions compare a `u32`, and the TAX index can represent "the set of
//! element types below this node" as a bitset indexed by `Label`.
//!
//! A `Vocabulary` is a cheaply clonable handle (`Arc` inside); documents,
//! DTDs, queries and indexes that are used together must share one handle so
//! that label identity is consistent across them.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

/// A dense interned identifier for an element name.
///
/// Labels are only meaningful relative to the [`Vocabulary`] that produced
/// them; two artifacts that should be combined (a document and a query, a
/// document and an index, ...) must share one vocabulary.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl Label {
    /// The dense index of this label, usable as a bitset position.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({})", self.0)
    }
}

#[derive(Default)]
struct Inner {
    names: Vec<Arc<str>>,
    by_name: HashMap<Arc<str>, Label>,
}

/// A thread-safe, cheaply clonable element-name interner.
///
/// The vocabulary is append-only: labels are never removed, so a `Label`
/// obtained from a vocabulary stays valid for its lifetime.
///
/// ```
/// use smoqe_xml::Vocabulary;
/// let vocab = Vocabulary::new();
/// let a = vocab.intern("hospital");
/// assert_eq!(vocab.intern("hospital"), a);
/// assert_eq!(&*vocab.name(a), "hospital");
/// ```
#[derive(Clone, Default)]
pub struct Vocabulary {
    inner: Arc<RwLock<Inner>>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its label. Idempotent.
    pub fn intern(&self, name: &str) -> Label {
        // Fast path: read lock only.
        if let Some(&l) = self.inner.read().unwrap().by_name.get(name) {
            return l;
        }
        let mut inner = self.inner.write().unwrap();
        if let Some(&l) = inner.by_name.get(name) {
            return l; // raced with another writer
        }
        let l = Label(inner.names.len() as u32);
        let shared: Arc<str> = Arc::from(name);
        inner.names.push(shared.clone());
        inner.by_name.insert(shared, l);
        l
    }

    /// Looks up an already-interned name without modifying the vocabulary.
    pub fn lookup(&self, name: &str) -> Option<Label> {
        self.inner.read().unwrap().by_name.get(name).copied()
    }

    /// The name interned for `label` (cheap `Arc<str>` clone).
    ///
    /// # Panics
    /// Panics if `label` was produced by a different vocabulary and is out
    /// of range for this one.
    pub fn name(&self, label: Label) -> Arc<str> {
        self.inner.read().unwrap().names[label.index()].clone()
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().names.len()
    }

    /// Whether no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of all names in interning order. Index `i` is `Label(i)`.
    ///
    /// Useful for hot loops (serialization, rendering) that want to resolve
    /// labels without taking the lock per node.
    pub fn snapshot(&self) -> Vec<Arc<str>> {
        self.inner.read().unwrap().names.clone()
    }

    /// Whether two handles refer to the same underlying vocabulary.
    pub fn same_as(&self, other: &Vocabulary) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read().unwrap();
        f.debug_map()
            .entries(inner.names.iter().enumerate())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let v = Vocabulary::new();
        let a = v.intern("hospital");
        let b = v.intern("patient");
        let a2 = v.intern("hospital");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn labels_are_dense_from_zero() {
        let v = Vocabulary::new();
        let ids: Vec<u32> = ["a", "b", "c", "d"].iter().map(|n| v.intern(n).0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn name_round_trips() {
        let v = Vocabulary::new();
        let l = v.intern("treatment");
        assert_eq!(&*v.name(l), "treatment");
        assert_eq!(v.lookup("treatment"), Some(l));
        assert_eq!(v.lookup("missing"), None);
    }

    #[test]
    fn clones_share_state() {
        let v = Vocabulary::new();
        let v2 = v.clone();
        let a = v.intern("x");
        assert_eq!(v2.lookup("x"), Some(a));
        assert!(v.same_as(&v2));
        assert!(!v.same_as(&Vocabulary::new()));
    }

    #[test]
    fn snapshot_matches_labels() {
        let v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let snap = v.snapshot();
        assert_eq!(&*snap[0], "x");
        assert_eq!(&*snap[1], "y");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let v = Vocabulary::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let v = v.clone();
                std::thread::spawn(move || {
                    let mut ids = vec![];
                    for i in 0..64 {
                        ids.push(v.intern(&format!("label{i}")));
                    }
                    ids
                })
            })
            .collect();
        let results: Vec<Vec<Label>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(v.len(), 64);
    }
}
