//! XML serialization: documents, subtrees and event streams back to text.
//!
//! The output visualizer of the paper has a "text mode, which presents the
//! answer of the query as a document in XML syntax" (§3); the streaming
//! evaluator also needs to emit buffered candidate subtrees as XML. Both go
//! through [`XmlWriter`], an event-driven writer; [`to_string`] /
//! [`write_subtree`] are tree-walking conveniences on top of it.

use crate::error::XmlError;
use crate::tree::{Document, NodeId, NodeKind};
use std::io::Write;

/// Escapes character data (`&`, `<`, `>`).
pub fn escape_text(text: &str, out: &mut String) {
    // Fast path: nothing to escape (the common case for span-backed text).
    if !text.bytes().any(|b| matches!(b, b'&' | b'<' | b'>')) {
        out.push_str(text);
        return;
    }
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

/// Escapes an attribute value for double-quoted output.
pub fn escape_attr(value: &str, out: &mut String) {
    if !value.bytes().any(|b| matches!(b, b'&' | b'<' | b'"')) {
        out.push_str(value);
        return;
    }
    for c in value.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// An event-driven XML writer producing well-formed output.
///
/// ```
/// use smoqe_xml::serialize::XmlWriter;
/// let mut out = Vec::new();
/// {
///     let mut w = XmlWriter::new(&mut out);
///     w.start_element("a").unwrap();
///     w.attribute("k", "v").unwrap();
///     w.text("x < y").unwrap();
///     w.end_element().unwrap();
/// }
/// assert_eq!(String::from_utf8(out).unwrap(), r#"<a k="v">x &lt; y</a>"#);
/// ```
pub struct XmlWriter<W: Write> {
    sink: W,
    /// Open element names; `bool` marks "has content" (start tag closed).
    stack: Vec<(String, bool)>,
    /// Indentation string per level; `None` = compact output.
    indent: Option<String>,
    scratch: String,
}

impl<W: Write> XmlWriter<W> {
    /// Compact (no extra whitespace) writer.
    pub fn new(sink: W) -> Self {
        XmlWriter {
            sink,
            stack: Vec::new(),
            indent: None,
            scratch: String::new(),
        }
    }

    /// Pretty-printing writer using `indent` per nesting level.
    pub fn pretty(sink: W, indent: &str) -> Self {
        XmlWriter {
            sink,
            stack: Vec::new(),
            indent: Some(indent.to_string()),
            scratch: String::new(),
        }
    }

    fn close_open_tag(&mut self, newline: bool) -> Result<(), XmlError> {
        if let Some(top) = self.stack.last_mut() {
            if !top.1 {
                top.1 = true;
                self.sink.write_all(b">")?;
                if newline && self.indent.is_some() {
                    self.sink.write_all(b"\n")?;
                }
            }
        }
        Ok(())
    }

    fn write_indent(&mut self, level: usize) -> Result<(), XmlError> {
        if let Some(ind) = &self.indent {
            for _ in 0..level {
                self.sink.write_all(ind.as_bytes())?;
            }
        }
        Ok(())
    }

    /// Opens an element.
    pub fn start_element(&mut self, name: &str) -> Result<(), XmlError> {
        self.close_open_tag(true)?;
        let level = self.stack.len();
        self.write_indent(level)?;
        self.sink.write_all(b"<")?;
        self.sink.write_all(name.as_bytes())?;
        self.stack.push((name.to_string(), false));
        Ok(())
    }

    /// Adds an attribute to the just-opened element.
    ///
    /// Must be called before any content is written into the element.
    pub fn attribute(&mut self, name: &str, value: &str) -> Result<(), XmlError> {
        match self.stack.last() {
            Some((_, false)) => {}
            _ => {
                return Err(XmlError::Malformed(
                    "attribute written after element content".to_string(),
                ))
            }
        }
        self.scratch.clear();
        escape_attr(value, &mut self.scratch);
        write!(self.sink, " {name}=\"{}\"", self.scratch)?;
        Ok(())
    }

    /// Writes character data.
    pub fn text(&mut self, text: &str) -> Result<(), XmlError> {
        if self.stack.is_empty() {
            return Err(XmlError::Malformed("text outside root element".to_string()));
        }
        self.close_open_tag(false)?;
        self.scratch.clear();
        escape_text(text, &mut self.scratch);
        self.sink.write_all(self.scratch.as_bytes())?;
        Ok(())
    }

    /// Closes the most recently opened element.
    pub fn end_element(&mut self) -> Result<(), XmlError> {
        let (name, had_content) = self
            .stack
            .pop()
            .ok_or_else(|| XmlError::Malformed("end_element with no open element".to_string()))?;
        if !had_content {
            self.sink.write_all(b"/>")?;
        } else {
            // Pretty mode: indent the close tag only if children were
            // elements (heuristic: we are at line start after a newline).
            self.sink.write_all(b"</")?;
            self.sink.write_all(name.as_bytes())?;
            self.sink.write_all(b">")?;
        }
        if self.indent.is_some() {
            self.sink.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) -> Result<(), XmlError> {
        self.sink.flush()?;
        Ok(())
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Shared access to the underlying sink.
    pub fn sink(&self) -> &W {
        &self.sink
    }

    /// Mutable access to the underlying sink (e.g. to take the buffer of a
    /// `Vec<u8>`-backed writer once writing is complete).
    pub fn sink_mut(&mut self) -> &mut W {
        &mut self.sink
    }
}

/// Writes the subtree rooted at `node` as compact XML.
///
/// Iterative (explicit stack), so arbitrarily deep documents serialize
/// without overflowing the call stack.
pub fn write_subtree<W: Write>(doc: &Document, node: NodeId, sink: W) -> Result<(), XmlError> {
    let mut w = XmlWriter::new(sink);
    write_events(doc, node, &mut w)?;
    w.flush()
}

fn write_events<W: Write>(
    doc: &Document,
    root: NodeId,
    w: &mut XmlWriter<W>,
) -> Result<(), XmlError> {
    // (node, entered) pairs; `entered` marks the close phase.
    let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
    while let Some((node, entered)) = stack.pop() {
        if entered {
            w.end_element()?;
            continue;
        }
        match doc.kind(node) {
            NodeKind::Element(l) => {
                w.start_element(doc.label_name(*l))?;
                for (name, value) in doc.attributes(node) {
                    w.attribute(name, value)?;
                }
                stack.push((node, true));
                let children: Vec<NodeId> = doc.children(node).collect();
                for &c in children.iter().rev() {
                    stack.push((c, false));
                }
            }
            NodeKind::Text(_) => w.text(doc.text(node).expect("text node has text"))?,
        }
    }
    Ok(())
}

/// Serializes a whole document to a compact XML string.
pub fn to_string(doc: &Document) -> String {
    subtree_to_string(doc, doc.root())
}

/// Serializes the subtree rooted at `node` to a compact XML string.
pub fn subtree_to_string(doc: &Document, node: NodeId) -> String {
    let mut out = Vec::new();
    write_subtree(doc, node, &mut out).expect("writing to Vec cannot fail");
    String::from_utf8(out).expect("serializer emits UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Vocabulary;

    #[test]
    fn round_trip_compact() {
        let vocab = Vocabulary::new();
        let src = r#"<a k="v &amp; w"><b>x &lt; y</b><c/></a>"#;
        let doc = Document::parse_str(src, &vocab).unwrap();
        assert_eq!(to_string(&doc), src);
    }

    #[test]
    fn subtree_serialization() {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str("<a><b>hi</b><c/></a>", &vocab).unwrap();
        let b = doc.first_child(doc.root()).unwrap();
        assert_eq!(subtree_to_string(&doc, b), "<b>hi</b>");
    }

    #[test]
    fn writer_rejects_late_attributes() {
        let mut out = Vec::new();
        let mut w = XmlWriter::new(&mut out);
        w.start_element("a").unwrap();
        w.text("x").unwrap();
        assert!(w.attribute("k", "v").is_err());
    }

    #[test]
    fn writer_rejects_unbalanced_end() {
        let mut out = Vec::new();
        let mut w = XmlWriter::new(&mut out);
        assert!(w.end_element().is_err());
    }

    #[test]
    fn escaping_everything() {
        let mut s = String::new();
        escape_text("a<b>&c", &mut s);
        assert_eq!(s, "a&lt;b&gt;&amp;c");
        let mut s = String::new();
        escape_attr("say \"hi\" & <go>", &mut s);
        assert_eq!(s, "say &quot;hi&quot; &amp; &lt;go>");
    }

    #[test]
    fn pretty_output_parses_back_equal() {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str("<a><b>hi</b><c><d/></c></a>", &vocab).unwrap();
        let mut out = Vec::new();
        {
            let mut w = XmlWriter::pretty(&mut out, "  ");
            super::write_events(&doc, doc.root(), &mut w).unwrap();
        }
        let pretty = String::from_utf8(out).unwrap();
        assert!(pretty.contains('\n'));
        let doc2 = Document::parse_str(&pretty, &vocab).unwrap();
        assert_eq!(to_string(&doc2), to_string(&doc));
    }
}
