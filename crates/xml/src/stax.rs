//! A StAX-style pull parser.
//!
//! The paper's "StAX mode" evaluates queries in **one sequential scan** of
//! the document without materializing a tree (§2, "XML documents"). This
//! module provides the substrate: [`PullParser`] reads from any
//! [`BufRead`] and yields [`XmlEvent`]s on demand. It never buffers more
//! than the current token, so peak memory is O(token + open-element stack).
//!
//! Supported syntax: elements, attributes (single or double quoted),
//! character data, the five predefined entities plus numeric character
//! references, CDATA sections, comments, processing instructions and a
//! DOCTYPE declaration (with optional internal subset), all of which except
//! elements/text/attributes are skipped. This is the data-centric subset the
//! SMOQE workloads exercise.

use crate::error::XmlError;
use crate::tree::Attribute;
use std::io::BufRead;

/// A parsing event pulled from the input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" ...>` (also emitted for self-closing elements,
    /// immediately followed by a matching [`XmlEvent::EndElement`]).
    StartElement {
        /// Element name as written.
        name: String,
        /// Attributes in source order, entities resolved.
        attributes: Vec<Attribute>,
    },
    /// Character data with entities resolved and CDATA unwrapped.
    Text(String),
    /// `</name>`.
    EndElement {
        /// Element name as written.
        name: String,
    },
    /// End of input after the root element closed.
    EndDocument,
}

/// Streaming pull parser over a [`BufRead`].
///
/// ```
/// use smoqe_xml::stax::{PullParser, XmlEvent};
/// let mut p = PullParser::from_str("<a x='1'><b>hi</b></a>");
/// assert!(matches!(p.next_event().unwrap(), XmlEvent::StartElement { name, .. } if name == "a"));
/// assert!(matches!(p.next_event().unwrap(), XmlEvent::StartElement { name, .. } if name == "b"));
/// assert!(matches!(p.next_event().unwrap(), XmlEvent::Text(t) if t == "hi"));
/// ```
pub struct PullParser<R: BufRead> {
    reader: R,
    /// One-byte lookahead.
    peeked: Option<u8>,
    offset: u64,
    line: u64,
    /// Names of currently open elements (well-formedness checking).
    stack: Vec<String>,
    seen_root: bool,
    finished: bool,
    /// Pending EndElement for a self-closing tag.
    pending_end: Option<String>,
    keep_whitespace: bool,
}

impl PullParser<&[u8]> {
    /// Parses from an in-memory string.
    #[allow(clippy::should_implement_trait)] // not fallible-parse semantics
    pub fn from_str(input: &str) -> PullParser<&[u8]> {
        PullParser::new(input.as_bytes())
    }
}

impl<R: BufRead> PullParser<R> {
    /// Creates a parser over `reader`. Whitespace-only text between
    /// elements is skipped by default (see [`PullParser::keep_whitespace`]).
    pub fn new(reader: R) -> Self {
        PullParser {
            reader,
            peeked: None,
            offset: 0,
            line: 1,
            stack: Vec::new(),
            seen_root: false,
            finished: false,
            pending_end: None,
            keep_whitespace: false,
        }
    }

    /// Controls whether whitespace-only text nodes are reported
    /// (default: `false`, matching data-centric processing).
    pub fn keep_whitespace(mut self, keep: bool) -> Self {
        self.keep_whitespace = keep;
        self
    }

    /// Current nesting depth (number of open elements).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Bytes consumed so far.
    pub fn byte_offset(&self) -> u64 {
        self.offset
    }

    fn err(&self, msg: impl std::fmt::Display) -> XmlError {
        XmlError::Malformed(format!(
            "{msg} at offset {} (line {})",
            self.offset, self.line
        ))
    }

    fn peek(&mut self) -> Result<Option<u8>, XmlError> {
        if self.peeked.is_none() {
            let mut byte = [0u8; 1];
            let n = read_one(&mut self.reader, &mut byte)?;
            if n == 0 {
                return Ok(None);
            }
            self.peeked = Some(byte[0]);
        }
        Ok(self.peeked)
    }

    fn bump(&mut self) -> Result<Option<u8>, XmlError> {
        let b = self.peek()?;
        if let Some(c) = b {
            self.peeked = None;
            self.offset += 1;
            if c == b'\n' {
                self.line += 1;
            }
        }
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), XmlError> {
        match self.bump()? {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(self.err(format_args!(
                "expected '{}', found '{}'",
                want as char, b as char
            ))),
            None => Err(self.err(format_args!(
                "expected '{}', found end of input",
                want as char
            ))),
        }
    }

    fn skip_ws(&mut self) -> Result<(), XmlError> {
        while let Some(b) = self.peek()? {
            if b.is_ascii_whitespace() {
                self.bump()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let mut name = Vec::new();
        while let Some(b) = self.peek()? {
            if is_name_byte(b) {
                name.push(b);
                self.bump()?;
            } else {
                break;
            }
        }
        if name.is_empty() {
            return Err(self.err("expected a name"));
        }
        self.utf8(name)
    }

    fn utf8(&self, bytes: Vec<u8>) -> Result<String, XmlError> {
        String::from_utf8(bytes).map_err(|_| self.err("invalid UTF-8"))
    }

    /// Reads `&...;` after the '&' has been peeked (not consumed).
    fn read_entity(&mut self, out: &mut Vec<u8>) -> Result<(), XmlError> {
        self.expect(b'&')?;
        let mut ent = String::new();
        loop {
            match self.bump()? {
                Some(b';') => break,
                Some(b) if ent.len() < 16 => ent.push(b as char),
                Some(_) => return Err(self.err("entity reference too long")),
                None => return Err(self.err("unterminated entity reference")),
            }
        }
        match ent.as_str() {
            "lt" => out.push(b'<'),
            "gt" => out.push(b'>'),
            "amp" => out.push(b'&'),
            "apos" => out.push(b'\''),
            "quot" => out.push(b'"'),
            _ => {
                let code = if let Some(hex) = ent.strip_prefix("#x") {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = ent.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
                match code.and_then(char::from_u32) {
                    Some(c) => {
                        let mut tmp = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut tmp).as_bytes());
                    }
                    None => return Err(self.err(format_args!("unknown entity '&{ent};'"))),
                }
            }
        }
        Ok(())
    }

    /// Skips `<!-- ... -->`; the leading `<!` has been consumed and the next
    /// bytes are `--`.
    fn skip_comment(&mut self) -> Result<(), XmlError> {
        self.expect(b'-')?;
        self.expect(b'-')?;
        let mut dashes = 0;
        loop {
            match self.bump()? {
                Some(b'-') => dashes += 1,
                Some(b'>') if dashes >= 2 => return Ok(()),
                Some(_) => dashes = 0,
                None => return Err(self.err("unterminated comment")),
            }
        }
    }

    /// Skips `<?...?>`; the leading `<?` has been consumed.
    fn skip_pi(&mut self) -> Result<(), XmlError> {
        let mut question = false;
        loop {
            match self.bump()? {
                Some(b'?') => question = true,
                Some(b'>') if question => return Ok(()),
                Some(_) => question = false,
                None => return Err(self.err("unterminated processing instruction")),
            }
        }
    }

    /// Skips `<!DOCTYPE ...>` including a bracketed internal subset; the
    /// leading `<!` has been consumed.
    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        let mut depth = 0i32;
        loop {
            match self.bump()? {
                Some(b'[') => depth += 1,
                Some(b']') => depth -= 1,
                Some(b'>') if depth <= 0 => return Ok(()),
                Some(_) => {}
                None => return Err(self.err("unterminated DOCTYPE")),
            }
        }
    }

    /// Reads `<![CDATA[ ... ]]>` content; `<!` consumed, next byte is `[`.
    fn read_cdata(&mut self, out: &mut Vec<u8>) -> Result<(), XmlError> {
        for want in *b"[CDATA[" {
            self.expect(want)?;
        }
        let mut brackets = 0;
        loop {
            match self.bump()? {
                Some(b']') => brackets += 1,
                Some(b'>') if brackets >= 2 => return Ok(()),
                Some(b) => {
                    for _ in 0..brackets {
                        out.push(b']');
                    }
                    brackets = 0;
                    out.push(b);
                }
                None => return Err(self.err("unterminated CDATA section")),
            }
        }
    }

    fn read_attributes(&mut self) -> Result<(Vec<Attribute>, bool), XmlError> {
        let mut attrs = Vec::new();
        loop {
            self.skip_ws()?;
            match self.peek()? {
                Some(b'>') => {
                    self.bump()?;
                    return Ok((attrs, false));
                }
                Some(b'/') => {
                    self.bump()?;
                    self.expect(b'>')?;
                    return Ok((attrs, true));
                }
                Some(b) if is_name_byte(b) => {
                    let name = self.read_name()?;
                    self.skip_ws()?;
                    self.expect(b'=')?;
                    self.skip_ws()?;
                    let quote = match self.bump()? {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    let mut value = Vec::new();
                    loop {
                        match self.peek()? {
                            Some(q) if q == quote => {
                                self.bump()?;
                                break;
                            }
                            Some(b'&') => self.read_entity(&mut value)?,
                            Some(b'<') => return Err(self.err("'<' in attribute value")),
                            Some(b) => {
                                value.push(b);
                                self.bump()?;
                            }
                            None => return Err(self.err("unterminated attribute value")),
                        }
                    }
                    let value = self.utf8(value)?;
                    attrs.push(Attribute { name, value });
                }
                Some(b) => return Err(self.err(format_args!("unexpected '{}' in tag", b as char))),
                None => return Err(self.err("unterminated start tag")),
            }
        }
    }

    /// Pulls the next event.
    ///
    /// Returns [`XmlEvent::EndDocument`] exactly once after the root element
    /// has closed; pulling again afterwards is an error.
    pub fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            if self.stack.is_empty() {
                self.finished = true;
            }
            return Ok(XmlEvent::EndElement { name });
        }
        if self.finished {
            // Allow trailing whitespace / comments / PIs after the root.
            loop {
                self.skip_ws()?;
                match self.peek()? {
                    None => return Ok(XmlEvent::EndDocument),
                    Some(b'<') => {
                        self.bump()?;
                        match self.peek()? {
                            Some(b'!') => {
                                self.bump()?;
                                self.skip_comment()?;
                            }
                            Some(b'?') => {
                                self.bump()?;
                                self.skip_pi()?;
                            }
                            _ => return Err(self.err("content after root element")),
                        }
                    }
                    Some(_) => return Err(self.err("content after root element")),
                }
            }
        }
        loop {
            if self.stack.is_empty() {
                self.skip_ws()?;
            }
            let Some(b) = self.peek()? else {
                return Err(if self.stack.is_empty() && !self.seen_root {
                    self.err("empty document")
                } else {
                    self.err(format_args!(
                        "end of input with {} unclosed element(s)",
                        self.stack.len()
                    ))
                });
            };
            if b == b'<' {
                self.bump()?;
                match self.peek()? {
                    Some(b'/') => {
                        self.bump()?;
                        let name = self.read_name()?;
                        self.skip_ws()?;
                        self.expect(b'>')?;
                        match self.stack.pop() {
                            Some(open) if open == name => {
                                if self.stack.is_empty() {
                                    self.finished = true;
                                }
                                return Ok(XmlEvent::EndElement { name });
                            }
                            Some(open) => {
                                return Err(self.err(format_args!(
                                    "mismatched end tag </{name}>, expected </{open}>"
                                )))
                            }
                            None => {
                                return Err(self.err(format_args!("unmatched end tag </{name}>")))
                            }
                        }
                    }
                    Some(b'!') => {
                        self.bump()?;
                        match self.peek()? {
                            Some(b'-') => self.skip_comment()?,
                            Some(b'[') => {
                                if self.stack.is_empty() {
                                    return Err(self.err("CDATA outside root element"));
                                }
                                let mut text = Vec::new();
                                self.read_cdata(&mut text)?;
                                if !text.is_empty() {
                                    return Ok(XmlEvent::Text(self.utf8(text)?));
                                }
                            }
                            Some(b'D' | b'd') => self.skip_doctype()?,
                            _ => return Err(self.err("unsupported '<!' construct")),
                        }
                    }
                    Some(b'?') => {
                        self.bump()?;
                        self.skip_pi()?;
                    }
                    _ => {
                        if self.stack.is_empty() && self.seen_root {
                            return Err(self.err("multiple root elements"));
                        }
                        let name = self.read_name()?;
                        let (attributes, self_closing) = self.read_attributes()?;
                        self.seen_root = true;
                        self.stack.push(name.clone());
                        if self_closing {
                            self.pending_end = Some(name.clone());
                        }
                        return Ok(XmlEvent::StartElement { name, attributes });
                    }
                }
            } else {
                // Character data.
                if self.stack.is_empty() {
                    return Err(self.err(format_args!(
                        "unexpected character '{}' outside root element",
                        b as char
                    )));
                }
                let mut text = Vec::new();
                loop {
                    match self.peek()? {
                        Some(b'<') | None => break,
                        Some(b'&') => self.read_entity(&mut text)?,
                        Some(c) => {
                            text.push(c);
                            self.bump()?;
                        }
                    }
                }
                if self.keep_whitespace || !text.iter().all(|c| c.is_ascii_whitespace()) {
                    return Ok(XmlEvent::Text(self.utf8(text)?));
                }
                // Whitespace-only: loop for the next real event.
            }
        }
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80
}

fn read_one<R: BufRead>(reader: &mut R, byte: &mut [u8; 1]) -> Result<usize, XmlError> {
    loop {
        match reader.read(byte) {
            Ok(n) => return Ok(n),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(XmlError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<XmlEvent> {
        let mut p = PullParser::from_str(input);
        let mut out = vec![];
        loop {
            let e = p.next_event().expect("parse ok");
            let done = e == XmlEvent::EndDocument;
            out.push(e);
            if done {
                break;
            }
        }
        out
    }

    fn start(name: &str) -> XmlEvent {
        XmlEvent::StartElement {
            name: name.into(),
            attributes: vec![],
        }
    }

    fn end(name: &str) -> XmlEvent {
        XmlEvent::EndElement { name: name.into() }
    }

    #[test]
    fn simple_document() {
        assert_eq!(
            events("<a><b>hi</b></a>"),
            vec![
                start("a"),
                start("b"),
                XmlEvent::Text("hi".into()),
                end("b"),
                end("a"),
                XmlEvent::EndDocument
            ]
        );
    }

    #[test]
    fn self_closing_emits_both_events() {
        assert_eq!(
            events("<a><b/></a>"),
            vec![
                start("a"),
                start("b"),
                end("b"),
                end("a"),
                XmlEvent::EndDocument
            ]
        );
    }

    #[test]
    fn attributes_and_entities() {
        let evs = events(r#"<a x="1 &amp; 2" y='&#65;'>&lt;ok&gt;</a>"#);
        match &evs[0] {
            XmlEvent::StartElement { name, attributes } => {
                assert_eq!(name, "a");
                assert_eq!(attributes[0].value, "1 & 2");
                assert_eq!(attributes[1].value, "A");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(evs[1], XmlEvent::Text("<ok>".into()));
    }

    #[test]
    fn skips_prolog_comments_pis_doctype() {
        let evs = events(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE a [<!ELEMENT a (b)>]>\n<!-- c --><a><!-- d --><b/></a><!-- e -->",
        );
        assert_eq!(
            evs,
            vec![
                start("a"),
                start("b"),
                end("b"),
                end("a"),
                XmlEvent::EndDocument
            ]
        );
    }

    #[test]
    fn cdata_is_text() {
        let evs = events("<a><![CDATA[x < y & z]]></a>");
        assert_eq!(evs[1], XmlEvent::Text("x < y & z".into()));
    }

    #[test]
    fn whitespace_only_text_skipped_by_default() {
        let evs = events("<a>\n  <b/>\n</a>");
        assert_eq!(
            evs,
            vec![
                start("a"),
                start("b"),
                end("b"),
                end("a"),
                XmlEvent::EndDocument
            ]
        );
    }

    #[test]
    fn whitespace_kept_on_request() {
        let mut p = PullParser::from_str("<a> <b/></a>").keep_whitespace(true);
        p.next_event().unwrap();
        assert_eq!(p.next_event().unwrap(), XmlEvent::Text(" ".into()));
    }

    #[test]
    fn mismatched_tags_error() {
        let mut p = PullParser::from_str("<a><b></a></b>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert!(p.next_event().is_err());
    }

    #[test]
    fn multiple_roots_error() {
        let mut p = PullParser::from_str("<a/><b/>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert!(p.next_event().is_err());
    }

    #[test]
    fn truncated_input_error() {
        let mut p = PullParser::from_str("<a><b>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert!(p.next_event().is_err());
    }

    #[test]
    fn depth_tracks_nesting() {
        let mut p = PullParser::from_str("<a><b><c/></b></a>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert_eq!(p.depth(), 3);
    }
}
