//! A StAX-style pull parser.
//!
//! The paper's "StAX mode" evaluates queries in **one sequential scan** of
//! the document without materializing a tree (§2, "XML documents"). This
//! module provides the substrate: [`PullParser`] reads from any
//! [`BufRead`] and yields [`XmlEvent`]s on demand. It never buffers more
//! than the current token, so peak memory is O(token + open-element stack).
//!
//! Supported syntax: elements, attributes (single or double quoted),
//! character data, the five predefined entities plus numeric character
//! references, CDATA sections, comments, processing instructions and a
//! DOCTYPE declaration (with optional internal subset), all of which except
//! elements/text/attributes are skipped. This is the data-centric subset the
//! SMOQE workloads exercise.

use crate::error::XmlError;
use crate::tree::Attribute;
use std::io::BufRead;

/// A parsing event pulled from the input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" ...>` (also emitted for self-closing elements,
    /// immediately followed by a matching [`XmlEvent::EndElement`]).
    StartElement {
        /// Element name as written.
        name: String,
        /// Attributes in source order, entities resolved.
        attributes: Vec<Attribute>,
    },
    /// Character data with entities resolved and CDATA unwrapped.
    Text(String),
    /// `</name>`.
    EndElement {
        /// Element name as written.
        name: String,
    },
    /// End of input after the root element closed.
    EndDocument,
}

/// A borrowed parsing event: the zero-allocation counterpart of
/// [`XmlEvent`], valid until the next [`PullParser::next_raw`] call.
/// Names and text live in parser-owned scratch buffers that are reused
/// event to event, so a full document scan performs no per-event
/// allocation (attribute *values* still allocate, being rare in
/// data-centric documents). This is what the HyPE stream/batch drivers
/// consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawEvent<'a> {
    /// `<name attr="v" ...>`.
    StartElement {
        /// Element name as written.
        name: &'a str,
        /// Attributes in source order, entities resolved.
        attributes: &'a [Attribute],
    },
    /// Character data with entities resolved and CDATA unwrapped.
    Text(&'a str),
    /// `</name>`.
    EndElement {
        /// Element name as written.
        name: &'a str,
    },
    /// End of input after the root element closed.
    EndDocument,
}

/// Streaming pull parser over a [`BufRead`].
///
/// ```
/// use smoqe_xml::stax::{PullParser, XmlEvent};
/// let mut p = PullParser::from_str("<a x='1'><b>hi</b></a>");
/// assert!(matches!(p.next_event().unwrap(), XmlEvent::StartElement { name, .. } if name == "a"));
/// assert!(matches!(p.next_event().unwrap(), XmlEvent::StartElement { name, .. } if name == "b"));
/// assert!(matches!(p.next_event().unwrap(), XmlEvent::Text(t) if t == "hi"));
/// ```
pub struct PullParser<R: BufRead> {
    reader: R,
    /// Current input chunk (copied out of the reader's buffer so scans
    /// can run without holding a borrow of the reader).
    buf: Vec<u8>,
    /// Next unread byte within `buf`.
    pos: usize,
    offset: u64,
    line: u64,
    /// Names of currently open elements (well-formedness checking):
    /// concatenated name bytes plus per-element lengths — no per-element
    /// allocation.
    open_names: Vec<u8>,
    open_lens: Vec<u32>,
    seen_root: bool,
    finished: bool,
    /// Pending EndElement for a self-closing tag.
    pending_end: bool,
    keep_whitespace: bool,
    /// Reusable scratch for the current event's name / text / attributes.
    name_buf: Vec<u8>,
    end_name_buf: Vec<u8>,
    text_buf: Vec<u8>,
    attr_buf: Vec<Attribute>,
}

impl PullParser<&[u8]> {
    /// Parses from an in-memory string.
    #[allow(clippy::should_implement_trait)] // not fallible-parse semantics
    pub fn from_str(input: &str) -> PullParser<&[u8]> {
        PullParser::new(input.as_bytes())
    }
}

impl<R: BufRead> PullParser<R> {
    /// Creates a parser over `reader`. Whitespace-only text between
    /// elements is skipped by default (see [`PullParser::keep_whitespace`]).
    pub fn new(reader: R) -> Self {
        PullParser {
            reader,
            buf: Vec::new(),
            pos: 0,
            offset: 0,
            line: 1,
            open_names: Vec::new(),
            open_lens: Vec::new(),
            seen_root: false,
            finished: false,
            pending_end: false,
            keep_whitespace: false,
            name_buf: Vec::new(),
            end_name_buf: Vec::new(),
            text_buf: Vec::new(),
            attr_buf: Vec::new(),
        }
    }

    /// Controls whether whitespace-only text nodes are reported
    /// (default: `false`, matching data-centric processing).
    pub fn keep_whitespace(mut self, keep: bool) -> Self {
        self.keep_whitespace = keep;
        self
    }

    /// Current nesting depth (number of open elements).
    pub fn depth(&self) -> usize {
        self.open_lens.len()
    }

    /// Bytes consumed so far.
    pub fn byte_offset(&self) -> u64 {
        self.offset
    }

    fn err(&self, msg: impl std::fmt::Display) -> XmlError {
        XmlError::Malformed(format!(
            "{msg} at offset {} (line {})",
            self.offset, self.line
        ))
    }

    /// Replaces the exhausted chunk with the reader's next one. Returns
    /// `false` at end of input. Copying the chunk keeps byte scans free of
    /// any borrow of the reader (one memcpy per chunk, not per byte).
    fn refill(&mut self) -> Result<bool, XmlError> {
        debug_assert!(self.pos >= self.buf.len());
        self.buf.clear();
        self.pos = 0;
        loop {
            match self.reader.fill_buf() {
                Ok(chunk) => {
                    if chunk.is_empty() {
                        return Ok(false);
                    }
                    self.buf.extend_from_slice(chunk);
                    let n = self.buf.len();
                    self.reader.consume(n);
                    return Ok(true);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(XmlError::Io(e)),
            }
        }
    }

    #[inline]
    fn peek(&mut self) -> Result<Option<u8>, XmlError> {
        if self.pos < self.buf.len() {
            return Ok(Some(self.buf[self.pos]));
        }
        if self.refill()? {
            Ok(Some(self.buf[self.pos]))
        } else {
            Ok(None)
        }
    }

    #[inline]
    fn bump(&mut self) -> Result<Option<u8>, XmlError> {
        let b = self.peek()?;
        if let Some(c) = b {
            self.pos += 1;
            self.offset += 1;
            if c == b'\n' {
                self.line += 1;
            }
        }
        Ok(b)
    }

    /// Bulk-consumes bytes while `pred` holds, appending them to `out`.
    /// Scans whole chunks at a time instead of going byte-by-byte through
    /// `peek`/`bump` — this is what makes the sequential scan IO-bound
    /// rather than dispatch-bound.
    fn take_while_into(
        &mut self,
        out: &mut Vec<u8>,
        pred: impl Fn(u8) -> bool,
    ) -> Result<(), XmlError> {
        loop {
            if self.pos >= self.buf.len() && !self.refill()? {
                return Ok(()); // end of input
            }
            let chunk = &self.buf[self.pos..];
            let n = chunk.iter().position(|&b| !pred(b)).unwrap_or(chunk.len());
            self.consume_into(out, n);
            if self.pos < self.buf.len() {
                return Ok(()); // stopped at a non-matching byte
            }
        }
    }

    /// Bulk-consumes bytes until `a` or `b` is seen, appending them to
    /// `out`. Word-at-a-time (SWAR) search: character data is the bulk of
    /// a document, so this is the single hottest scan of stream mode.
    fn take_until2(&mut self, out: &mut Vec<u8>, a: u8, b: u8) -> Result<(), XmlError> {
        loop {
            if self.pos >= self.buf.len() && !self.refill()? {
                return Ok(());
            }
            let n = memchr2(a, b, &self.buf[self.pos..]);
            self.consume_into(out, n);
            if self.pos < self.buf.len() {
                return Ok(());
            }
        }
    }

    /// Like [`PullParser::take_until2`] with three delimiters (attribute
    /// values stop at the quote, `&`, or `<`).
    fn take_until3(&mut self, out: &mut Vec<u8>, a: u8, b: u8, c: u8) -> Result<(), XmlError> {
        loop {
            if self.pos >= self.buf.len() && !self.refill()? {
                return Ok(());
            }
            let n = memchr3(a, b, c, &self.buf[self.pos..]);
            self.consume_into(out, n);
            if self.pos < self.buf.len() {
                return Ok(());
            }
        }
    }

    #[inline]
    fn consume_into(&mut self, out: &mut Vec<u8>, n: usize) {
        if n == 0 {
            return;
        }
        let consumed = &self.buf[self.pos..self.pos + n];
        out.extend_from_slice(consumed);
        self.line += count_newlines(consumed);
        self.offset += n as u64;
        self.pos += n;
    }

    /// Bulk-skips bytes while `pred` holds.
    fn skip_while(&mut self, pred: impl Fn(u8) -> bool) -> Result<(), XmlError> {
        loop {
            if self.pos >= self.buf.len() && !self.refill()? {
                return Ok(());
            }
            let chunk = &self.buf[self.pos..];
            let n = chunk.iter().position(|&b| !pred(b)).unwrap_or(chunk.len());
            if n > 0 {
                let consumed = &self.buf[self.pos..self.pos + n];
                self.line += count_newlines(consumed);
                self.offset += n as u64;
                self.pos += n;
            }
            if self.pos < self.buf.len() {
                return Ok(());
            }
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), XmlError> {
        match self.bump()? {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(self.err(format_args!(
                "expected '{}', found '{}'",
                want as char, b as char
            ))),
            None => Err(self.err(format_args!(
                "expected '{}', found end of input",
                want as char
            ))),
        }
    }

    fn skip_ws(&mut self) -> Result<(), XmlError> {
        self.skip_while(|b| b.is_ascii_whitespace())
    }

    /// Reads a name into `out` (cleared first). `out` is typically one of
    /// the parser's scratch buffers, temporarily moved out to satisfy
    /// borrows.
    fn read_name_buf(&mut self, out: &mut Vec<u8>) -> Result<(), XmlError> {
        out.clear();
        // Fast path: the whole name sits inside the current chunk (names
        // contain no newlines, so no line bookkeeping either).
        let start = self.pos;
        let mut i = start;
        while i < self.buf.len() && is_name_byte(self.buf[i]) {
            i += 1;
        }
        out.extend_from_slice(&self.buf[start..i]);
        self.offset += (i - start) as u64;
        self.pos = i;
        if i >= self.buf.len() {
            // The name may continue into the next chunk.
            self.take_while_into(out, is_name_byte)?;
        }
        if out.is_empty() {
            return Err(self.err("expected a name"));
        }
        Ok(())
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let mut name = Vec::new();
        self.read_name_buf(&mut name)?;
        self.utf8(name)
    }

    fn utf8(&self, bytes: Vec<u8>) -> Result<String, XmlError> {
        String::from_utf8(bytes).map_err(|_| self.err("invalid UTF-8"))
    }

    /// Reads `&...;` after the '&' has been peeked (not consumed).
    fn read_entity(&mut self, out: &mut Vec<u8>) -> Result<(), XmlError> {
        self.expect(b'&')?;
        let mut ent = String::new();
        loop {
            match self.bump()? {
                Some(b';') => break,
                Some(b) if ent.len() < 16 => ent.push(b as char),
                Some(_) => return Err(self.err("entity reference too long")),
                None => return Err(self.err("unterminated entity reference")),
            }
        }
        match ent.as_str() {
            "lt" => out.push(b'<'),
            "gt" => out.push(b'>'),
            "amp" => out.push(b'&'),
            "apos" => out.push(b'\''),
            "quot" => out.push(b'"'),
            _ => {
                let code = if let Some(hex) = ent.strip_prefix("#x") {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = ent.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
                match code.and_then(char::from_u32) {
                    Some(c) => {
                        let mut tmp = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut tmp).as_bytes());
                    }
                    None => return Err(self.err(format_args!("unknown entity '&{ent};'"))),
                }
            }
        }
        Ok(())
    }

    /// Skips `<!-- ... -->`; the leading `<!` has been consumed and the next
    /// bytes are `--`.
    fn skip_comment(&mut self) -> Result<(), XmlError> {
        self.expect(b'-')?;
        self.expect(b'-')?;
        let mut dashes = 0;
        loop {
            match self.bump()? {
                Some(b'-') => dashes += 1,
                Some(b'>') if dashes >= 2 => return Ok(()),
                Some(_) => dashes = 0,
                None => return Err(self.err("unterminated comment")),
            }
        }
    }

    /// Skips `<?...?>`; the leading `<?` has been consumed.
    fn skip_pi(&mut self) -> Result<(), XmlError> {
        let mut question = false;
        loop {
            match self.bump()? {
                Some(b'?') => question = true,
                Some(b'>') if question => return Ok(()),
                Some(_) => question = false,
                None => return Err(self.err("unterminated processing instruction")),
            }
        }
    }

    /// Skips `<!DOCTYPE ...>` including a bracketed internal subset; the
    /// leading `<!` has been consumed.
    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        let mut depth = 0i32;
        loop {
            match self.bump()? {
                Some(b'[') => depth += 1,
                Some(b']') => depth -= 1,
                Some(b'>') if depth <= 0 => return Ok(()),
                Some(_) => {}
                None => return Err(self.err("unterminated DOCTYPE")),
            }
        }
    }

    /// Reads `<![CDATA[ ... ]]>` content; `<!` consumed, next byte is `[`.
    fn read_cdata(&mut self, out: &mut Vec<u8>) -> Result<(), XmlError> {
        for want in *b"[CDATA[" {
            self.expect(want)?;
        }
        let mut brackets = 0;
        loop {
            match self.bump()? {
                Some(b']') => brackets += 1,
                Some(b'>') if brackets >= 2 => return Ok(()),
                Some(b) => {
                    for _ in 0..brackets {
                        out.push(b']');
                    }
                    brackets = 0;
                    out.push(b);
                }
                None => return Err(self.err("unterminated CDATA section")),
            }
        }
    }

    /// Reads the attribute list into `self.attr_buf` (cleared first),
    /// returning whether the tag was self-closing.
    fn read_attributes(&mut self) -> Result<bool, XmlError> {
        let mut attrs = std::mem::take(&mut self.attr_buf);
        attrs.clear();
        let self_closing = self.read_attributes_into(&mut attrs);
        self.attr_buf = attrs;
        self_closing
    }

    fn read_attributes_into(&mut self, attrs: &mut Vec<Attribute>) -> Result<bool, XmlError> {
        // Fast path: `<name>` with no attributes and no whitespace — the
        // overwhelming shape in data-centric documents.
        if self.pos < self.buf.len() && self.buf[self.pos] == b'>' {
            self.pos += 1;
            self.offset += 1;
            return Ok(false);
        }
        loop {
            self.skip_ws()?;
            match self.peek()? {
                Some(b'>') => {
                    self.bump()?;
                    return Ok(false);
                }
                Some(b'/') => {
                    self.bump()?;
                    self.expect(b'>')?;
                    return Ok(true);
                }
                Some(b) if is_name_byte(b) => {
                    let name = self.read_name()?;
                    self.skip_ws()?;
                    self.expect(b'=')?;
                    self.skip_ws()?;
                    let quote = match self.bump()? {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    let mut value = Vec::new();
                    loop {
                        self.take_until3(&mut value, quote, b'&', b'<')?;
                        match self.peek()? {
                            Some(q) if q == quote => {
                                self.bump()?;
                                break;
                            }
                            Some(b'&') => self.read_entity(&mut value)?,
                            Some(b'<') => return Err(self.err("'<' in attribute value")),
                            Some(_) => unreachable!("take_while_into stops on delimiters"),
                            None => return Err(self.err("unterminated attribute value")),
                        }
                    }
                    let value = self.utf8(value)?;
                    attrs.push(Attribute { name, value });
                }
                Some(b) => return Err(self.err(format_args!("unexpected '{}' in tag", b as char))),
                None => return Err(self.err("unterminated start tag")),
            }
        }
    }

    /// Pops the innermost open element into `end_name_buf`.
    fn pop_open(&mut self) {
        let len = *self.open_lens.last().expect("pop with an open element") as usize;
        let start = self.open_names.len() - len;
        self.end_name_buf.clear();
        self.end_name_buf
            .extend_from_slice(&self.open_names[start..]);
        self.open_lens.pop();
        self.open_names.truncate(start);
        if self.open_lens.is_empty() {
            self.finished = true;
        }
    }

    /// Validates scratch bytes as UTF-8 for a borrowed return.
    fn utf8_ref<'b>(&self, bytes: &'b [u8]) -> Result<&'b str, XmlError> {
        std::str::from_utf8(bytes).map_err(|_| self.err("invalid UTF-8"))
    }

    /// Pulls the next event (owned form). Allocates the event's strings;
    /// scan-heavy callers should prefer [`PullParser::next_raw`].
    ///
    /// Returns [`XmlEvent::EndDocument`] exactly once after the root element
    /// has closed; pulling again afterwards is an error.
    pub fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        Ok(match self.next_raw()? {
            RawEvent::StartElement { name, attributes } => XmlEvent::StartElement {
                name: name.to_string(),
                attributes: attributes.to_vec(),
            },
            RawEvent::Text(t) => XmlEvent::Text(t.to_string()),
            RawEvent::EndElement { name } => XmlEvent::EndElement {
                name: name.to_string(),
            },
            RawEvent::EndDocument => XmlEvent::EndDocument,
        })
    }

    /// Pulls the next event without allocating: names, text and the
    /// attribute list are borrowed from parser-owned scratch reused event
    /// to event. See [`RawEvent`].
    pub fn next_raw(&mut self) -> Result<RawEvent<'_>, XmlError> {
        if self.pending_end {
            self.pending_end = false;
            self.pop_open();
            let name = std::str::from_utf8(&self.end_name_buf).expect("was validated on open");
            return Ok(RawEvent::EndElement { name });
        }
        if self.finished {
            // Allow trailing whitespace / comments / PIs after the root.
            loop {
                self.skip_ws()?;
                match self.peek()? {
                    None => return Ok(RawEvent::EndDocument),
                    Some(b'<') => {
                        self.bump()?;
                        match self.peek()? {
                            Some(b'!') => {
                                self.bump()?;
                                self.skip_comment()?;
                            }
                            Some(b'?') => {
                                self.bump()?;
                                self.skip_pi()?;
                            }
                            _ => return Err(self.err("content after root element")),
                        }
                    }
                    Some(_) => return Err(self.err("content after root element")),
                }
            }
        }
        loop {
            if self.open_lens.is_empty() {
                self.skip_ws()?;
            }
            let Some(b) = self.peek()? else {
                return Err(if self.open_lens.is_empty() && !self.seen_root {
                    self.err("empty document")
                } else {
                    self.err(format_args!(
                        "end of input with {} unclosed element(s)",
                        self.open_lens.len()
                    ))
                });
            };
            if b == b'<' {
                self.bump()?;
                match self.peek()? {
                    Some(b'/') => {
                        self.bump()?;
                        let mut name = std::mem::take(&mut self.end_name_buf);
                        self.read_name_buf(&mut name)?;
                        self.end_name_buf = name;
                        // Fast path: `</name>` with no trailing whitespace.
                        if self.pos < self.buf.len() && self.buf[self.pos] == b'>' {
                            self.pos += 1;
                            self.offset += 1;
                        } else {
                            self.skip_ws()?;
                            self.expect(b'>')?;
                        }
                        let Some(&len) = self.open_lens.last() else {
                            let name = String::from_utf8_lossy(&self.end_name_buf).into_owned();
                            return Err(self.err(format_args!("unmatched end tag </{name}>")));
                        };
                        let start = self.open_names.len() - len as usize;
                        if self.open_names[start..] != self.end_name_buf[..] {
                            let open = String::from_utf8_lossy(&self.open_names[start..]);
                            let name = String::from_utf8_lossy(&self.end_name_buf);
                            return Err(self.err(format_args!(
                                "mismatched end tag </{name}>, expected </{open}>"
                            )));
                        }
                        self.open_lens.pop();
                        self.open_names.truncate(start);
                        if self.open_lens.is_empty() {
                            self.finished = true;
                        }
                        let name =
                            std::str::from_utf8(&self.end_name_buf).expect("was validated on open");
                        return Ok(RawEvent::EndElement { name });
                    }
                    Some(b'!') => {
                        self.bump()?;
                        match self.peek()? {
                            Some(b'-') => self.skip_comment()?,
                            Some(b'[') => {
                                if self.open_lens.is_empty() {
                                    return Err(self.err("CDATA outside root element"));
                                }
                                let mut text = std::mem::take(&mut self.text_buf);
                                text.clear();
                                let res = self.read_cdata(&mut text);
                                self.text_buf = text;
                                res?;
                                if !self.text_buf.is_empty() {
                                    let text = self.utf8_ref(&self.text_buf)?;
                                    return Ok(RawEvent::Text(text));
                                }
                            }
                            Some(b'D' | b'd') => self.skip_doctype()?,
                            _ => return Err(self.err("unsupported '<!' construct")),
                        }
                    }
                    Some(b'?') => {
                        self.bump()?;
                        self.skip_pi()?;
                    }
                    _ => {
                        if self.open_lens.is_empty() && self.seen_root {
                            return Err(self.err("multiple root elements"));
                        }
                        let mut name = std::mem::take(&mut self.name_buf);
                        let res = self.read_name_buf(&mut name);
                        self.name_buf = name;
                        res?;
                        let self_closing = self.read_attributes()?;
                        self.seen_root = true;
                        self.open_names.extend_from_slice(&self.name_buf);
                        self.open_lens.push(self.name_buf.len() as u32);
                        self.pending_end = self_closing;
                        // Validate now so End events can borrow unchecked.
                        let name = self.utf8_ref(&self.name_buf)?;
                        return Ok(RawEvent::StartElement {
                            name,
                            attributes: &self.attr_buf,
                        });
                    }
                }
            } else {
                // Character data.
                if self.open_lens.is_empty() {
                    return Err(self.err(format_args!(
                        "unexpected character '{}' outside root element",
                        b as char
                    )));
                }
                let mut text = std::mem::take(&mut self.text_buf);
                text.clear();
                let res = (|| -> Result<(), XmlError> {
                    loop {
                        self.take_until2(&mut text, b'<', b'&')?;
                        match self.peek()? {
                            Some(b'<') | None => return Ok(()),
                            Some(b'&') => self.read_entity(&mut text)?,
                            Some(_) => unreachable!("take_until2 stops on delimiters"),
                        }
                    }
                })();
                self.text_buf = text;
                res?;
                if self.keep_whitespace || !self.text_buf.iter().all(|c| c.is_ascii_whitespace()) {
                    let text = self.utf8_ref(&self.text_buf)?;
                    return Ok(RawEvent::Text(text));
                }
                // Whitespace-only: loop for the next real event.
            }
        }
    }
}

const NAME_BYTE: [bool; 256] = {
    let mut t = [false; 256];
    let mut i = 0;
    while i < 256 {
        let b = i as u8;
        t[i] = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
        i += 1;
    }
    t
};

#[inline]
fn is_name_byte(b: u8) -> bool {
    NAME_BYTE[b as usize]
}

const SWAR_LO: u64 = 0x0101_0101_0101_0101;
const SWAR_HI: u64 = 0x8080_8080_8080_8080;

/// Bytes of `w` equal to `byte` get their high bit set.
#[inline]
fn swar_eq(w: u64, byte: u64) -> u64 {
    let x = w ^ (SWAR_LO.wrapping_mul(byte));
    x.wrapping_sub(SWAR_LO) & !x & SWAR_HI
}

/// Index of the first `a` or `b` in `hay` (or `hay.len()`), eight bytes at
/// a time.
#[inline]
fn memchr2(a: u8, b: u8, hay: &[u8]) -> usize {
    let mut i = 0;
    while i + 8 <= hay.len() {
        let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8 bytes"));
        let m = swar_eq(w, a as u64) | swar_eq(w, b as u64);
        if m != 0 {
            return i + (m.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < hay.len() {
        if hay[i] == a || hay[i] == b {
            return i;
        }
        i += 1;
    }
    hay.len()
}

/// Index of the first `a`, `b` or `c` in `hay` (or `hay.len()`).
#[inline]
fn memchr3(a: u8, b: u8, c: u8, hay: &[u8]) -> usize {
    let mut i = 0;
    while i + 8 <= hay.len() {
        let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8 bytes"));
        let m = swar_eq(w, a as u64) | swar_eq(w, b as u64) | swar_eq(w, c as u64);
        if m != 0 {
            return i + (m.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < hay.len() {
        if hay[i] == a || hay[i] == b || hay[i] == c {
            return i;
        }
        i += 1;
    }
    hay.len()
}

/// Newline count, eight bytes at a time (error-position bookkeeping must
/// not slow the bulk scans down).
#[inline]
fn count_newlines(bytes: &[u8]) -> u64 {
    let mut n = 0u64;
    let mut i = 0;
    while i + 8 <= bytes.len() {
        let w = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
        n += (swar_eq(w, b'\n' as u64).count_ones()) as u64;
        i += 8;
    }
    while i < bytes.len() {
        n += (bytes[i] == b'\n') as u64;
        i += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<XmlEvent> {
        let mut p = PullParser::from_str(input);
        let mut out = vec![];
        loop {
            let e = p.next_event().expect("parse ok");
            let done = e == XmlEvent::EndDocument;
            out.push(e);
            if done {
                break;
            }
        }
        out
    }

    fn start(name: &str) -> XmlEvent {
        XmlEvent::StartElement {
            name: name.into(),
            attributes: vec![],
        }
    }

    fn end(name: &str) -> XmlEvent {
        XmlEvent::EndElement { name: name.into() }
    }

    #[test]
    fn simple_document() {
        assert_eq!(
            events("<a><b>hi</b></a>"),
            vec![
                start("a"),
                start("b"),
                XmlEvent::Text("hi".into()),
                end("b"),
                end("a"),
                XmlEvent::EndDocument
            ]
        );
    }

    #[test]
    fn self_closing_emits_both_events() {
        assert_eq!(
            events("<a><b/></a>"),
            vec![
                start("a"),
                start("b"),
                end("b"),
                end("a"),
                XmlEvent::EndDocument
            ]
        );
    }

    #[test]
    fn attributes_and_entities() {
        let evs = events(r#"<a x="1 &amp; 2" y='&#65;'>&lt;ok&gt;</a>"#);
        match &evs[0] {
            XmlEvent::StartElement { name, attributes } => {
                assert_eq!(name, "a");
                assert_eq!(attributes[0].value, "1 & 2");
                assert_eq!(attributes[1].value, "A");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(evs[1], XmlEvent::Text("<ok>".into()));
    }

    #[test]
    fn skips_prolog_comments_pis_doctype() {
        let evs = events(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE a [<!ELEMENT a (b)>]>\n<!-- c --><a><!-- d --><b/></a><!-- e -->",
        );
        assert_eq!(
            evs,
            vec![
                start("a"),
                start("b"),
                end("b"),
                end("a"),
                XmlEvent::EndDocument
            ]
        );
    }

    #[test]
    fn cdata_is_text() {
        let evs = events("<a><![CDATA[x < y & z]]></a>");
        assert_eq!(evs[1], XmlEvent::Text("x < y & z".into()));
    }

    #[test]
    fn whitespace_only_text_skipped_by_default() {
        let evs = events("<a>\n  <b/>\n</a>");
        assert_eq!(
            evs,
            vec![
                start("a"),
                start("b"),
                end("b"),
                end("a"),
                XmlEvent::EndDocument
            ]
        );
    }

    #[test]
    fn whitespace_kept_on_request() {
        let mut p = PullParser::from_str("<a> <b/></a>").keep_whitespace(true);
        p.next_event().unwrap();
        assert_eq!(p.next_event().unwrap(), XmlEvent::Text(" ".into()));
    }

    #[test]
    fn mismatched_tags_error() {
        let mut p = PullParser::from_str("<a><b></a></b>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert!(p.next_event().is_err());
    }

    #[test]
    fn multiple_roots_error() {
        let mut p = PullParser::from_str("<a/><b/>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert!(p.next_event().is_err());
    }

    #[test]
    fn truncated_input_error() {
        let mut p = PullParser::from_str("<a><b>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert!(p.next_event().is_err());
    }

    #[test]
    fn depth_tracks_nesting() {
        let mut p = PullParser::from_str("<a><b><c/></b></a>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert_eq!(p.depth(), 3);
    }
}
