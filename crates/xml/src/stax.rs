//! A StAX-style pull parser.
//!
//! The paper's "StAX mode" evaluates queries in **one sequential scan** of
//! the document without materializing a tree (§2, "XML documents"). This
//! module provides the substrate: [`PullParser`] reads from any
//! [`BufRead`] and yields [`XmlEvent`]s on demand. It never buffers more
//! than the current token, so peak memory is O(token + open-element stack).
//!
//! The parser is a thin event-shaping layer over [`crate::scanner::Scanner`]
//! — the one tokenizer shared with the DOM builder — so stream mode and DOM
//! mode agree on tokenization by construction. See [`crate::scanner`] for
//! the supported syntax.

use crate::error::XmlError;
use crate::scanner::{ScanToken, Scanner};
use std::io::BufRead;

pub use crate::scanner::Attribute;

/// A parsing event pulled from the input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" ...>` (also emitted for self-closing elements,
    /// immediately followed by a matching [`XmlEvent::EndElement`]).
    StartElement {
        /// Element name as written.
        name: String,
        /// Attributes in source order, entities resolved.
        attributes: Vec<Attribute>,
    },
    /// Character data with entities resolved and CDATA unwrapped.
    Text(String),
    /// `</name>`.
    EndElement {
        /// Element name as written.
        name: String,
    },
    /// End of input after the root element closed.
    EndDocument,
}

/// A borrowed parsing event: the zero-allocation counterpart of
/// [`XmlEvent`], valid until the next [`PullParser::next_raw`] call.
/// Names and text live in scanner-owned scratch buffers that are reused
/// event to event, so a full document scan performs no per-event
/// allocation (attribute *values* still allocate, being rare in
/// data-centric documents). This is what the HyPE stream/batch drivers
/// consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawEvent<'a> {
    /// `<name attr="v" ...>`.
    StartElement {
        /// Element name as written.
        name: &'a str,
        /// Attributes in source order, entities resolved.
        attributes: &'a [Attribute],
    },
    /// Character data with entities resolved and CDATA unwrapped.
    Text(&'a str),
    /// `</name>`.
    EndElement {
        /// Element name as written.
        name: &'a str,
    },
    /// End of input after the root element closed.
    EndDocument,
}

/// Streaming pull parser over a [`BufRead`].
///
/// ```
/// use smoqe_xml::stax::{PullParser, XmlEvent};
/// let mut p = PullParser::from_str("<a x='1'><b>hi</b></a>");
/// assert!(matches!(p.next_event().unwrap(), XmlEvent::StartElement { name, .. } if name == "a"));
/// assert!(matches!(p.next_event().unwrap(), XmlEvent::StartElement { name, .. } if name == "b"));
/// assert!(matches!(p.next_event().unwrap(), XmlEvent::Text(t) if t == "hi"));
/// ```
pub struct PullParser<R: BufRead> {
    scanner: Scanner<R>,
}

impl PullParser<&[u8]> {
    /// Parses from an in-memory string.
    #[allow(clippy::should_implement_trait)] // not fallible-parse semantics
    pub fn from_str(input: &str) -> PullParser<&[u8]> {
        PullParser::new(input.as_bytes())
    }
}

impl<R: BufRead> PullParser<R> {
    /// Creates a parser over `reader`. Whitespace-only text between
    /// elements is skipped by default (see [`PullParser::keep_whitespace`]).
    pub fn new(reader: R) -> Self {
        PullParser {
            scanner: Scanner::new(reader),
        }
    }

    /// Controls whether whitespace-only text nodes are reported
    /// (default: `false`, matching data-centric processing).
    pub fn keep_whitespace(mut self, keep: bool) -> Self {
        self.scanner = self.scanner.keep_whitespace(keep);
        self
    }

    /// Current nesting depth (number of open elements).
    pub fn depth(&self) -> usize {
        self.scanner.depth()
    }

    /// Bytes consumed so far.
    pub fn byte_offset(&self) -> u64 {
        self.scanner.byte_offset()
    }

    /// Pulls the next event (owned form). Allocates the event's strings;
    /// scan-heavy callers should prefer [`PullParser::next_raw`].
    ///
    /// Returns [`XmlEvent::EndDocument`] exactly once after the root element
    /// has closed; pulling again afterwards is an error.
    pub fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        Ok(match self.next_raw()? {
            RawEvent::StartElement { name, attributes } => XmlEvent::StartElement {
                name: name.to_string(),
                attributes: attributes.to_vec(),
            },
            RawEvent::Text(t) => XmlEvent::Text(t.to_string()),
            RawEvent::EndElement { name } => XmlEvent::EndElement {
                name: name.to_string(),
            },
            RawEvent::EndDocument => XmlEvent::EndDocument,
        })
    }

    /// Pulls the next event without allocating: names, text and the
    /// attribute list are borrowed from scanner-owned scratch reused event
    /// to event. See [`RawEvent`].
    pub fn next_raw(&mut self) -> Result<RawEvent<'_>, XmlError> {
        Ok(match self.scanner.next_token()? {
            ScanToken::StartElement {
                name, attributes, ..
            } => RawEvent::StartElement { name, attributes },
            ScanToken::Text(piece) => RawEvent::Text(piece.decoded),
            ScanToken::EndElement { name, .. } => RawEvent::EndElement { name },
            ScanToken::EndDocument => RawEvent::EndDocument,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<XmlEvent> {
        let mut p = PullParser::from_str(input);
        let mut out = vec![];
        loop {
            let e = p.next_event().expect("parse ok");
            let done = e == XmlEvent::EndDocument;
            out.push(e);
            if done {
                break;
            }
        }
        out
    }

    fn start(name: &str) -> XmlEvent {
        XmlEvent::StartElement {
            name: name.into(),
            attributes: vec![],
        }
    }

    fn end(name: &str) -> XmlEvent {
        XmlEvent::EndElement { name: name.into() }
    }

    #[test]
    fn simple_document() {
        assert_eq!(
            events("<a><b>hi</b></a>"),
            vec![
                start("a"),
                start("b"),
                XmlEvent::Text("hi".into()),
                end("b"),
                end("a"),
                XmlEvent::EndDocument
            ]
        );
    }

    #[test]
    fn self_closing_emits_both_events() {
        assert_eq!(
            events("<a><b/></a>"),
            vec![
                start("a"),
                start("b"),
                end("b"),
                end("a"),
                XmlEvent::EndDocument
            ]
        );
    }

    #[test]
    fn attributes_and_entities() {
        let evs = events(r#"<a x="1 &amp; 2" y='&#65;'>&lt;ok&gt;</a>"#);
        match &evs[0] {
            XmlEvent::StartElement { name, attributes } => {
                assert_eq!(name, "a");
                assert_eq!(attributes[0].value, "1 & 2");
                assert_eq!(attributes[1].value, "A");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(evs[1], XmlEvent::Text("<ok>".into()));
    }

    #[test]
    fn skips_prolog_comments_pis_doctype() {
        let evs = events(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE a [<!ELEMENT a (b)>]>\n<!-- c --><a><!-- d --><b/></a><!-- e -->",
        );
        assert_eq!(
            evs,
            vec![
                start("a"),
                start("b"),
                end("b"),
                end("a"),
                XmlEvent::EndDocument
            ]
        );
    }

    #[test]
    fn cdata_is_text() {
        let evs = events("<a><![CDATA[x < y & z]]></a>");
        assert_eq!(evs[1], XmlEvent::Text("x < y & z".into()));
    }

    #[test]
    fn whitespace_only_text_skipped_by_default() {
        let evs = events("<a>\n  <b/>\n</a>");
        assert_eq!(
            evs,
            vec![
                start("a"),
                start("b"),
                end("b"),
                end("a"),
                XmlEvent::EndDocument
            ]
        );
    }

    #[test]
    fn whitespace_kept_on_request() {
        let mut p = PullParser::from_str("<a> <b/></a>").keep_whitespace(true);
        p.next_event().unwrap();
        assert_eq!(p.next_event().unwrap(), XmlEvent::Text(" ".into()));
    }

    #[test]
    fn mismatched_tags_error() {
        let mut p = PullParser::from_str("<a><b></a></b>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert!(p.next_event().is_err());
    }

    #[test]
    fn multiple_roots_error() {
        let mut p = PullParser::from_str("<a/><b/>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert!(p.next_event().is_err());
    }

    #[test]
    fn truncated_input_error() {
        let mut p = PullParser::from_str("<a><b>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert!(p.next_event().is_err());
    }

    #[test]
    fn depth_tracks_nesting() {
        let mut p = PullParser::from_str("<a><b><c/></b></a>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert_eq!(p.depth(), 3);
    }
}
