//! DOM-mode parsing: one scanner pass into a span-based [`Document`].
//!
//! This is the paper's "DOM mode" loading path (§2): "the whole document
//! tree will be loaded into memory in order to evaluate a query". The
//! input is held once as a shared `Arc<str>` buffer; a single
//! [`crate::scanner::Scanner`] pass (the same tokenizer StAX mode uses, so
//! DOM and StAX modes agree on what a document contains by construction)
//! drives a [`ScanSink`] that records compact span nodes referencing the
//! buffer — no per-node owned strings.

use crate::error::XmlError;
use crate::label::Vocabulary;
use crate::scanner::{scan, AttrSpan, Attribute, ScanSink, Scanner, TextPiece};
use crate::tree::{Document, TreeBuilder};
use std::io::BufRead;
use std::path::Path;
use std::sync::Arc;

/// Parses a complete document from a string (copied once into the
/// document's shared buffer).
pub fn parse_document(input: &str, vocab: &Vocabulary) -> Result<Document, XmlError> {
    parse_buffer(Arc::from(input), vocab)
}

/// Parses a complete document from an already-shared buffer, which the
/// returned document's span nodes reference without copying.
pub fn parse_buffer(buffer: Arc<str>, vocab: &Vocabulary) -> Result<Document, XmlError> {
    if buffer.len() > u32::MAX as usize {
        return Err(XmlError::Malformed(
            "document exceeds the 4 GB span-offset limit".to_string(),
        ));
    }
    let mut scanner = Scanner::from_str(&buffer);
    let mut sink = DomSink {
        builder: TreeBuilder::with_buffer(vocab.clone(), buffer.clone()),
    };
    scan(&mut scanner, &mut sink)?;
    sink.builder.finish()
}

/// Parses a complete document from any buffered reader (slurped into the
/// document's buffer — DOM mode holds the whole document either way).
pub fn parse_reader<R: BufRead>(mut reader: R, vocab: &Vocabulary) -> Result<Document, XmlError> {
    let mut input = String::new();
    reader.read_to_string(&mut input)?;
    parse_buffer(Arc::from(input), vocab)
}

/// Parses a document from a file on disk.
pub fn parse_file(path: impl AsRef<Path>, vocab: &Vocabulary) -> Result<Document, XmlError> {
    let input = std::fs::read_to_string(path)?;
    parse_buffer(Arc::from(input), vocab)
}

/// The scanner-to-arena adapter: records spans, interns names, defers
/// entity decoding to first access.
struct DomSink {
    builder: TreeBuilder,
}

impl ScanSink for DomSink {
    fn start_element(
        &mut self,
        name: &str,
        attributes: &[Attribute],
        attr_spans: &[AttrSpan],
        tag_start: u64,
    ) -> Result<(), XmlError> {
        self.builder
            .start_element_named_spanned(name, tag_start as u32);
        for (a, s) in attributes.iter().zip(attr_spans) {
            let span = s
                .clean
                .then_some((s.value_start as u32, s.value_end as u32));
            self.builder.attribute_spanned(&a.name, &a.value, span);
        }
        Ok(())
    }

    fn text(&mut self, piece: TextPiece<'_>) -> Result<(), XmlError> {
        let clean = piece.clean.map(|(s, e)| (s as u32, e as u32));
        self.builder
            .text_piece(piece.decoded, piece.start as u32, piece.end as u32, clean);
        Ok(())
    }

    fn end_element(&mut self, _name: &str, tag_end: u64) -> Result<(), XmlError> {
        self.builder.end_element_spanned(tag_end as u32);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_builds_expected_tree() {
        let vocab = Vocabulary::new();
        let doc = parse_document("<a><b>one</b><b>two</b></a>", &vocab).unwrap();
        let root = doc.root();
        let b = vocab.lookup("b").unwrap();
        let texts: Vec<String> = doc
            .children(root)
            .filter(|&c| doc.label(c) == Some(b))
            .map(|c| doc.string_value(c))
            .collect();
        assert_eq!(texts, vec!["one", "two"]);
    }

    #[test]
    fn parse_error_propagates() {
        let vocab = Vocabulary::new();
        assert!(parse_document("<a><b></a>", &vocab).is_err());
        assert!(parse_document("", &vocab).is_err());
    }

    #[test]
    fn parse_file_round_trip() {
        let vocab = Vocabulary::new();
        let dir = std::env::temp_dir().join("smoqe-xml-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.xml");
        std::fs::write(&path, "<a><b>hi</b></a>").unwrap();
        let doc = parse_file(&path, &vocab).unwrap();
        assert_eq!(doc.to_xml(), "<a><b>hi</b></a>");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_vocabulary_across_documents() {
        let vocab = Vocabulary::new();
        let d1 = parse_document("<a><b/></a>", &vocab).unwrap();
        let d2 = parse_document("<b><a/></b>", &vocab).unwrap();
        // Same names, same labels, regardless of parse order.
        assert_eq!(
            d1.label(d1.root()),
            d2.label(d2.first_child(d2.root()).unwrap())
        );
    }

    #[test]
    fn parsed_documents_share_the_input_buffer() {
        let vocab = Vocabulary::new();
        let src: Arc<str> = Arc::from("<a><b>hi</b></a>");
        let doc = parse_buffer(src.clone(), &vocab).unwrap();
        assert!(Arc::ptr_eq(&src, &doc.shared_buffer().unwrap()));
        assert_eq!(doc.raw_source(), Some("<a><b>hi</b></a>"));
    }

    #[test]
    fn element_extents_cover_their_tags() {
        let vocab = Vocabulary::new();
        let src = "<a><b x=\"1\">hi</b><c/></a>";
        let doc = parse_document(src, &vocab).unwrap();
        let (rs, re) = doc.node_extent(doc.root()).unwrap();
        assert_eq!(&src[rs..re], src);
        let b = doc.first_child(doc.root()).unwrap();
        let (bs, be) = doc.node_extent(b).unwrap();
        assert_eq!(&src[bs..be], "<b x=\"1\">hi</b>");
        let c = doc.next_sibling(b).unwrap();
        let (cs, ce) = doc.node_extent(c).unwrap();
        assert_eq!(&src[cs..ce], "<c/>");
    }

    #[test]
    fn entity_text_decodes_lazily_and_caches() {
        let vocab = Vocabulary::new();
        let doc = parse_document("<a>x &amp; y</a>", &vocab).unwrap();
        assert_eq!(doc.memory_summary().entity_cache_bytes, 0);
        let t = doc.first_child(doc.root()).unwrap();
        assert_eq!(doc.text(t), Some("x & y"));
        assert_eq!(doc.memory_summary().entity_cache_bytes, "x & y".len());
    }
}
