//! DOM-mode parsing: pull events into an arena [`Document`].
//!
//! This is the paper's "DOM mode" loading path (§2): "the whole document
//! tree will be loaded into memory in order to evaluate a query". The
//! parser is a thin adapter from [`crate::stax::PullParser`] events to a
//! [`crate::tree::TreeBuilder`], so DOM and StAX modes are guaranteed to
//! agree on what a document contains.

use crate::error::XmlError;
use crate::label::Vocabulary;
use crate::stax::{PullParser, XmlEvent};
use crate::tree::{Document, TreeBuilder};
use std::io::BufRead;
use std::path::Path;

/// Parses a complete document from a string.
pub fn parse_document(input: &str, vocab: &Vocabulary) -> Result<Document, XmlError> {
    parse_reader(input.as_bytes(), vocab)
}

/// Parses a complete document from any buffered reader.
pub fn parse_reader<R: BufRead>(reader: R, vocab: &Vocabulary) -> Result<Document, XmlError> {
    let mut parser = PullParser::new(reader);
    let mut builder = TreeBuilder::new(vocab.clone());
    loop {
        match parser.next_event()? {
            XmlEvent::StartElement { name, attributes } => {
                builder.start_element_named(&name);
                for a in attributes {
                    builder.attribute(&a.name, &a.value);
                }
            }
            XmlEvent::Text(t) => builder.text(&t),
            XmlEvent::EndElement { .. } => builder.end_element(),
            XmlEvent::EndDocument => break,
        }
    }
    builder.finish()
}

/// Parses a document from a file on disk.
pub fn parse_file(path: impl AsRef<Path>, vocab: &Vocabulary) -> Result<Document, XmlError> {
    let file = std::fs::File::open(path)?;
    parse_reader(std::io::BufReader::new(file), vocab)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_builds_expected_tree() {
        let vocab = Vocabulary::new();
        let doc = parse_document("<a><b>one</b><b>two</b></a>", &vocab).unwrap();
        let root = doc.root();
        let b = vocab.lookup("b").unwrap();
        let texts: Vec<String> = doc
            .children(root)
            .filter(|&c| doc.label(c) == Some(b))
            .map(|c| doc.string_value(c))
            .collect();
        assert_eq!(texts, vec!["one", "two"]);
    }

    #[test]
    fn parse_error_propagates() {
        let vocab = Vocabulary::new();
        assert!(parse_document("<a><b></a>", &vocab).is_err());
        assert!(parse_document("", &vocab).is_err());
    }

    #[test]
    fn parse_file_round_trip() {
        let vocab = Vocabulary::new();
        let dir = std::env::temp_dir().join("smoqe-xml-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.xml");
        std::fs::write(&path, "<a><b>hi</b></a>").unwrap();
        let doc = parse_file(&path, &vocab).unwrap();
        assert_eq!(doc.to_xml(), "<a><b>hi</b></a>");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_vocabulary_across_documents() {
        let vocab = Vocabulary::new();
        let d1 = parse_document("<a><b/></a>", &vocab).unwrap();
        let d2 = parse_document("<b><a/></b>", &vocab).unwrap();
        // Same names, same labels, regardless of parse order.
        assert_eq!(
            d1.label(d1.root()),
            d2.label(d2.first_child(d2.root()).unwrap())
        );
    }
}
