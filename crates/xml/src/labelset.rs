//! Compact bitsets over [`Label`]s.
//!
//! Used by the TAX index ("the set of element types occurring below this
//! node") and by the automata analyses ("the labels a state still needs to
//! reach acceptance"). Labels are dense (interned), so a `Vec<u64>` bitmap
//! is the natural representation.

use crate::label::Label;

/// A fixed-capacity bitset over labels `0..capacity`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct LabelSet {
    words: Vec<u64>,
}

impl LabelSet {
    /// An empty set able to hold labels `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        LabelSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Grows the set so it can hold `label`.
    fn ensure(&mut self, label: Label) {
        let word = label.index() / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
    }

    /// Inserts a label. Returns whether it was newly inserted.
    pub fn insert(&mut self, label: Label) -> bool {
        self.ensure(label);
        let (w, b) = (label.index() / 64, label.index() % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes a label.
    pub fn remove(&mut self, label: Label) {
        let (w, b) = (label.index() / 64, label.index() % 64);
        if w < self.words.len() {
            self.words[w] &= !(1 << b);
        }
    }

    /// Membership test.
    pub fn contains(&self, label: Label) -> bool {
        let (w, b) = (label.index() / 64, label.index() % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Adds every label of `other` into `self`. Returns whether `self`
    /// changed.
    pub fn union_with(&mut self, other: &LabelSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Keeps only labels present in both sets.
    pub fn intersect_with(&mut self, other: &LabelSet) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Whether the two sets share any label: word-wise `&` with a
    /// short-circuit on the first hit, never materializing the
    /// intersection. Evaluator pruning checks (e.g. the jump driver's
    /// "does any trigger label occur below this node" gate) sit on this,
    /// so the common overlapping case exits on word 0.
    #[inline]
    pub fn intersects(&self, other: &LabelSet) -> bool {
        let n = self.words.len().min(other.words.len());
        for i in 0..n {
            if self.words[i] & other.words[i] != 0 {
                return true;
            }
        }
        false
    }

    /// Whether every label of `self` is in `other`.
    pub fn is_subset_of(&self, other: &LabelSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of labels in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Removes all labels.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates over the labels in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Label> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| Label((wi * 64 + b) as u32))
        })
    }

    /// The raw 64-bit words (little-endian bit order), for persistence.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a set from raw words (inverse of [`LabelSet::words`]).
    pub fn from_words(words: Vec<u64>) -> Self {
        LabelSet { words }
    }
}

impl FromIterator<Label> for LabelSet {
    fn from_iter<T: IntoIterator<Item = Label>>(iter: T) -> Self {
        let mut s = LabelSet::default();
        for l in iter {
            s.insert(l);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> Label {
        Label(i)
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = LabelSet::with_capacity(4);
        assert!(s.insert(l(3)));
        assert!(!s.insert(l(3)));
        assert!(s.contains(l(3)));
        assert!(!s.contains(l(2)));
        s.remove(l(3));
        assert!(!s.contains(l(3)));
    }

    #[test]
    fn grows_past_capacity() {
        let mut s = LabelSet::with_capacity(1);
        s.insert(l(100));
        assert!(s.contains(l(100)));
        assert!(!s.contains(l(99)));
    }

    #[test]
    fn union_and_intersection() {
        let a: LabelSet = [l(1), l(64), l(65)].into_iter().collect();
        let b: LabelSet = [l(64), l(2)].into_iter().collect();
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert!(!u.union_with(&b));
        assert_eq!(u.len(), 4);
        assert!(a.intersects(&b));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![l(64)]);
    }

    #[test]
    fn subset_checks() {
        let small: LabelSet = [l(1), l(2)].into_iter().collect();
        let big: LabelSet = [l(1), l(2), l(3)].into_iter().collect();
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(LabelSet::default().is_subset_of(&small));
    }

    #[test]
    fn disjoint_sets_do_not_intersect() {
        let a: LabelSet = [l(0)].into_iter().collect();
        let b: LabelSet = [l(1)].into_iter().collect();
        assert!(!a.intersects(&b));
    }

    #[test]
    fn iter_ascending() {
        let s: LabelSet = [l(70), l(3), l(64)].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![l(3), l(64), l(70)]);
    }

    #[test]
    fn words_round_trip() {
        let s: LabelSet = [l(5), l(130)].into_iter().collect();
        let s2 = LabelSet::from_words(s.words().to_vec());
        assert_eq!(s, s2);
    }
}
