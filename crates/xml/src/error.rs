//! Error type for the XML substrate.

use std::fmt;

/// Errors produced while parsing, validating or generating XML.
#[derive(Debug)]
pub enum XmlError {
    /// Syntactically malformed XML input. The message includes a byte
    /// offset and line number where available.
    Malformed(String),
    /// Structurally well-formed XML that violates a DTD constraint.
    Invalid(String),
    /// A DTD declaration could not be parsed.
    DtdSyntax(String),
    /// Underlying I/O failure while reading or writing.
    Io(std::io::Error),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Malformed(m) => write!(f, "malformed XML: {m}"),
            XmlError::Invalid(m) => write!(f, "document invalid against DTD: {m}"),
            XmlError::DtdSyntax(m) => write!(f, "DTD syntax error: {m}"),
            XmlError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for XmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XmlError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for XmlError {
    fn from(e: std::io::Error) -> Self {
        XmlError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = XmlError::Malformed("unexpected '<' at offset 3 (line 1)".into());
        assert!(e.to_string().contains("offset 3"));
        let e = XmlError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
    }
}
