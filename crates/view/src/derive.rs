//! Automatic view derivation from an access-control policy.
//!
//! This is the paper's second view-definition mode (§2): *"for each user
//! group, an authorized security administrator annotates the document
//! schema to specify the part of information that the users are granted or
//! denied access to, using simple boolean predicates; then SMOQE
//! automatically translates the specification to the definition of a
//! (possibly recursively defined) XML view, along with a view schema that
//! is exposed to the users"* — the construction of Fan, Chan &
//! Garofalakis [3] reproduced at schema level.
//!
//! ## Algorithm
//!
//! Edges are classified per annotation and context:
//! * explicit `Y` / `[q]` edges **expose** their target (everywhere, even
//!   under denied regions — re-granting);
//! * explicit `N` edges are **crossing**: the child node is hidden but the
//!   path continues through it;
//! * unannotated edges expose in a visible context (inheritance) and cross
//!   in a hidden one.
//!
//! σ(A, B) is then the regular expression of all paths from visible type A
//! through hidden types to an exposure of B — computed by **state
//! elimination** over the hidden-type graph. Cycles of hidden types yield
//! Kleene closures, which is exactly why security views over recursive
//! DTDs need Regular XPath (and why SMOQE exists).
//!
//! ## Documented simplifications (schema-level derivation)
//!
//! * A type explicitly exposed somewhere is exposed by that annotation
//!   uniformly; [3]'s per-context type duplication ("dummy types") is not
//!   performed. None of the paper's examples need it.
//! * View-DTD cardinalities: a promoted σ (more than one step) always
//!   yields `B*`; a direct conditional step weakens the source bound
//!   (`(1,1)` becomes `B?`). The paper's Fig. 3 prints `treatment ->
//!   medication` where we derive `medication?` — the condition
//!   `[medication]` on treatments actually guarantees presence, but
//!   proving that requires qualifier reasoning beyond schema-level
//!   derivation.

use crate::policy::{AccessPolicy, Ann};
use crate::spec::{occurrence_bounds, ViewSpec};
use smoqe_rxpath::Path;
use smoqe_xml::{ContentModel, Dtd, Label};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// How an edge behaves during derivation.
#[derive(Clone, Debug, PartialEq, Eq)]
enum EdgeKind {
    /// Terminates a σ path, exposing the target (step carries the
    /// condition, if any).
    Expose(Path),
    /// Continues a σ path through a hidden node.
    Cross(Path),
}

fn classify(ann: Option<&Ann>, child: Label, hidden_context: bool) -> EdgeKind {
    let step = Path::Label(child);
    match ann {
        Some(Ann::Allow) => EdgeKind::Expose(step),
        Some(Ann::Cond(q)) => EdgeKind::Expose(Path::qualified(step, q.clone())),
        Some(Ann::Deny) => EdgeKind::Cross(step),
        None => {
            if hidden_context {
                EdgeKind::Cross(step)
            } else {
                EdgeKind::Expose(step)
            }
        }
    }
}

fn union_opt(slot: &mut Option<Path>, path: Path) {
    *slot = Some(match slot.take() {
        None => path,
        Some(existing) => Path::union([existing, path]),
    });
}

/// Computes σ(A, ·) for one visible source type `a`.
///
/// Returns the map from exposed child type to its σ path.
fn sigma_from(policy: &AccessPolicy, a: Label) -> BTreeMap<Label, Path> {
    let dtd = policy.dtd();
    // Matrix nodes: 0 = the visible context of `a`; 1.. = hidden
    // occurrences of every reachable type.
    let types: Vec<Label> = dtd.reachable_types().into_iter().collect();
    let index: BTreeMap<Label, usize> =
        types.iter().enumerate().map(|(i, &l)| (l, i + 1)).collect();
    let n = types.len() + 1;
    let mut m: Vec<Vec<Option<Path>>> = vec![vec![None; n]; n];
    let mut finals: Vec<BTreeMap<Label, Path>> = vec![BTreeMap::new(); n];

    // Context edges out of `a` (visible context).
    for b in dtd.child_types(a) {
        match classify(policy.annotation(a, b), b, false) {
            EdgeKind::Expose(step) => {
                union_opt_map(&mut finals[0], b, step);
            }
            EdgeKind::Cross(step) => union_opt(&mut m[0][index[&b]], step),
        }
    }
    // Edges out of hidden occurrences.
    for (&x, &xi) in &index {
        for y in dtd.child_types(x) {
            match classify(policy.annotation(x, y), y, true) {
                EdgeKind::Expose(step) => {
                    union_opt_map(&mut finals[xi], y, step);
                }
                EdgeKind::Cross(step) => union_opt(&mut m[xi][index[&y]], step),
            }
        }
    }

    // State elimination of hidden nodes 1..n.
    for k in 1..n {
        let self_loop = m[k][k].take().map(Path::star);
        // Outgoing contributions of k, with the loop folded in.
        let outs: Vec<(usize, Path)> = (0..n)
            .filter(|&j| j != k)
            .filter_map(|j| m[k][j].clone().map(|p| (j, p)))
            .collect();
        let fouts: Vec<(Label, Path)> = finals[k].iter().map(|(&b, p)| (b, p.clone())).collect();
        for i in 0..n {
            if i == k {
                continue;
            }
            let Some(into_k) = m[i][k].take() else {
                continue;
            };
            let prefix = match &self_loop {
                Some(l) => Path::seq([into_k.clone(), l.clone()]),
                None => into_k.clone(),
            };
            for (j, q) in &outs {
                union_opt(&mut m[i][*j], Path::seq([prefix.clone(), q.clone()]));
            }
            for (b, q) in &fouts {
                union_opt_map(&mut finals[i], *b, Path::seq([prefix.clone(), q.clone()]));
            }
        }
        // k fully eliminated.
        for slot in m[k].iter_mut() {
            *slot = None;
        }
        finals[k].clear();
    }
    finals.swap_remove(0)
}

fn union_opt_map(map: &mut BTreeMap<Label, Path>, key: Label, path: Path) {
    match map.remove(&key) {
        None => {
            map.insert(key, path);
        }
        Some(existing) => {
            map.insert(key, Path::union([existing, path]));
        }
    }
}

/// Whether σ(A,B) is a single direct step (`B` or `B[q]`).
fn direct_step(path: &Path) -> Option<bool /* has condition */> {
    match path {
        Path::Label(_) => Some(false),
        Path::Qualified(inner, _) if matches!(**inner, Path::Label(_)) => Some(true),
        _ => None,
    }
}

/// Derives the view specification and view DTD from a policy — the
/// SMOQE automatic view-derivation mode.
///
/// ```
/// use smoqe_view::{derive, AccessPolicy, HOSPITAL_POLICY};
/// use smoqe_xml::{Dtd, Vocabulary, HOSPITAL_DTD};
/// let vocab = Vocabulary::new();
/// let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
/// let policy = AccessPolicy::parse(dtd.clone(), HOSPITAL_POLICY).unwrap();
/// let spec = derive(&policy);
/// spec.validate(&dtd).unwrap();
/// let hospital = vocab.lookup("hospital").unwrap();
/// let patient = vocab.lookup("patient").unwrap();
/// assert_eq!(
///     spec.sigma(hospital, patient).unwrap().display(&vocab).to_string(),
///     "patient[visit/treatment/medication = 'autism']",
/// );
/// ```
pub fn derive(policy: &AccessPolicy) -> ViewSpec {
    let dtd = policy.dtd();
    let vocab = dtd.vocabulary().clone();
    let root = dtd.root();

    // Fixpoint over visible types, collecting sigma entries.
    let mut visible: BTreeSet<Label> = BTreeSet::new();
    let mut sigma: BTreeMap<(Label, Label), Path> = BTreeMap::new();
    let mut queue: VecDeque<Label> = VecDeque::new();
    visible.insert(root);
    queue.push_back(root);
    while let Some(a) = queue.pop_front() {
        for (b, path) in sigma_from(policy, a) {
            sigma.insert((a, b), path);
            if visible.insert(b) {
                queue.push_back(b);
            }
        }
    }

    // View DTD.
    let mut view_dtd = Dtd::new(vocab, root);
    for &a in &visible {
        let children: Vec<(Label, &Path)> = sigma
            .range((a, Label(0))..=(a, Label(u32::MAX)))
            .map(|(&(_, b), p)| (b, p))
            .collect();
        let model = if children.is_empty() {
            if dtd.allows_text(a) {
                ContentModel::Text
            } else {
                ContentModel::Empty
            }
        } else {
            let mut items = Vec::new();
            for (b, path) in children {
                let item = match direct_step(path) {
                    Some(conditional) => {
                        let (mn, mx) = occurrence_bounds(dtd.production(a).expect("declared"), b);
                        let (mn, mx) = if conditional { (0, mx) } else { (mn, mx) };
                        match (mn, mx) {
                            (1, 1) => ContentModel::Elem(b),
                            (0, 1) => ContentModel::Opt(Box::new(ContentModel::Elem(b))),
                            (0, _) => ContentModel::Star(Box::new(ContentModel::Elem(b))),
                            (_, _) => ContentModel::Plus(Box::new(ContentModel::Elem(b))),
                        }
                    }
                    // Promoted through hidden regions: multiplicity is a
                    // product over starred/recursive edges - star it.
                    None => ContentModel::Star(Box::new(ContentModel::Elem(b))),
                };
                items.push(item);
            }
            if items.len() == 1 {
                items.pop().expect("len checked")
            } else {
                ContentModel::Seq(items)
            }
        };
        view_dtd.add_production(a, model);
    }

    let mut spec = ViewSpec::new(view_dtd);
    for ((a, b), p) in sigma {
        spec.set_sigma(a, b, p);
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::HOSPITAL_POLICY;
    use smoqe_xml::{Vocabulary, HOSPITAL_DTD};

    fn derived() -> (Vocabulary, Dtd, ViewSpec) {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        let policy = AccessPolicy::parse(dtd.clone(), HOSPITAL_POLICY).unwrap();
        let spec = derive(&policy);
        (vocab, dtd, spec)
    }

    fn sigma_str(vocab: &Vocabulary, spec: &ViewSpec, a: &str, b: &str) -> Option<String> {
        let a = vocab.lookup(a)?;
        let b = vocab.lookup(b)?;
        spec.sigma(a, b).map(|p| p.display(vocab).to_string())
    }

    #[test]
    fn fig3_sigma_matches_paper() {
        let (vocab, _, spec) = derived();
        assert_eq!(
            sigma_str(&vocab, &spec, "hospital", "patient").unwrap(),
            "patient[visit/treatment/medication = 'autism']"
        );
        assert_eq!(
            sigma_str(&vocab, &spec, "patient", "treatment").unwrap(),
            "visit/treatment[medication]"
        );
        assert_eq!(
            sigma_str(&vocab, &spec, "patient", "parent").unwrap(),
            "parent"
        );
        assert_eq!(
            sigma_str(&vocab, &spec, "parent", "patient").unwrap(),
            "patient"
        );
        assert_eq!(
            sigma_str(&vocab, &spec, "treatment", "medication").unwrap(),
            "medication"
        );
        // Exactly the five entries of Fig. 3(c).
        assert_eq!(spec.sigmas().count(), 5);
    }

    #[test]
    fn fig3_hidden_types_are_not_in_the_view() {
        let (vocab, _, spec) = derived();
        for hidden in ["pname", "visit", "test", "date"] {
            let l = vocab.lookup(hidden).unwrap();
            assert!(
                spec.view_dtd().production(l).is_none(),
                "{hidden} should be hidden"
            );
        }
    }

    #[test]
    fn fig3_view_dtd_productions() {
        let (vocab, _, spec) = derived();
        let dtd = spec.view_dtd();
        let show = |name: &str| {
            let l = vocab.lookup(name).unwrap();
            dtd.production(l).unwrap().display(&vocab).to_string()
        };
        assert_eq!(show("hospital"), "patient*");
        // Canonical label order: parent was interned before treatment.
        assert_eq!(show("patient"), "(parent*, treatment*)");
        assert_eq!(show("parent"), "patient");
        // The paper prints `medication`; schema-level derivation weakens
        // the choice (test | medication) to `medication?` (see module
        // docs).
        assert_eq!(show("treatment"), "medication?");
        assert_eq!(show("medication"), "(#PCDATA)");
    }

    #[test]
    fn derived_spec_validates_against_source() {
        let (_, dtd, spec) = derived();
        spec.validate(&dtd).unwrap();
    }

    #[test]
    fn view_dtd_is_recursive_like_the_paper_says() {
        let (_, _, spec) = derived();
        assert!(spec.view_dtd().is_recursive());
    }

    #[test]
    fn allow_all_policy_derives_identity_like_view() {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        let policy = AccessPolicy::allow_all(dtd.clone());
        let spec = derive(&policy);
        spec.validate(&dtd).unwrap();
        // Every source edge survives with sigma = direct step.
        for a in dtd.element_types() {
            for b in dtd.child_types(a) {
                assert_eq!(spec.sigma(a, b), Some(&Path::Label(b)), "edge missing");
            }
        }
    }

    #[test]
    fn deny_without_regrant_prunes_subtree() {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        let policy = AccessPolicy::parse(dtd.clone(), "ann(patient, visit) = N\n").unwrap();
        let spec = derive(&policy);
        spec.validate(&dtd).unwrap();
        let patient = vocab.lookup("patient").unwrap();
        let visit = vocab.lookup("visit").unwrap();
        let treatment = vocab.lookup("treatment").unwrap();
        assert!(spec.sigma(patient, visit).is_none());
        // treatment/test/etc. inherit invisibility - gone entirely.
        assert!(spec.sigma(patient, treatment).is_none());
        assert!(spec.view_dtd().production(visit).is_none());
    }

    #[test]
    fn recursive_hidden_region_yields_closure() {
        // Hide patient's parent chain links: parent crossing, patient
        // re-granted under it. Hiding `parent` (N) while patient is
        // visible makes sigma(patient, patient) = parent/patient... and
        // since parent/patient cycles through a hidden parent each time,
        // the hidden region is acyclic here. Build a deeper cycle: hide
        // both patient (under parent) re-grant... Simplest real closure:
        // hide parent AND patient-under-parent, re-grant pname.
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        let policy = AccessPolicy::parse(
            dtd.clone(),
            "ann(patient, parent) = N\nann(parent, patient) = N\nann(patient, pname) = Y\n",
        )
        .unwrap();
        let spec = derive(&policy);
        spec.validate(&dtd).unwrap();
        let patient = vocab.lookup("patient").unwrap();
        let pname = vocab.lookup("pname").unwrap();
        let hospital = vocab.lookup("hospital").unwrap();
        // From hospital, patient is visible directly.
        assert!(spec.sigma(hospital, patient).is_some());
        // pname of a patient: its own pname, or any ancestor-chain pname
        // through the hidden parent/patient cycle -> needs a closure.
        let s = spec.sigma(patient, pname).unwrap();
        assert!(s.has_closure(), "expected closure in {}", s.display(&vocab));
        // And patient itself no longer has patient-children in the view.
        assert!(spec.sigma(patient, patient).is_none());
    }

    #[test]
    fn conditional_regrant_under_denied_region() {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        // visit hidden, treatment conditionally re-granted.
        let policy = AccessPolicy::parse(
            dtd.clone(),
            "ann(patient, visit) = N\nann(visit, treatment) = [medication]\n",
        )
        .unwrap();
        let spec = derive(&policy);
        spec.validate(&dtd).unwrap();
        assert_eq!(
            sigma_str(&vocab, &spec, "patient", "treatment").unwrap(),
            "visit/treatment[medication]"
        );
    }
}
