//! Static typing of Regular XPath against a DTD.
//!
//! The view machinery needs to answer "starting at an element of type A,
//! which element types can a path end at?" — to validate user-authored
//! view specifications (σ(A,B) must produce B-elements) and to drive the
//! typed product construction of the rewriter. The analysis is a product
//! of the path's NFA with the DTD's element graph; qualifiers are ignored
//! (they only filter, so the inferred set is a sound over-approximation).

use smoqe_automata::analysis::eps_closure_unguarded;
use smoqe_automata::{Builder, StateId};
use smoqe_rxpath::Path;
use smoqe_xml::{Dtd, Label};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// The context a path is typed from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeContext {
    /// The virtual document node: the first step matches the DTD root.
    DocumentRoot,
    /// Elements of the given types.
    Types(BTreeSet<Label>),
}

impl TypeContext {
    /// Context of a single element type.
    pub fn of(label: Label) -> Self {
        TypeContext::Types([label].into_iter().collect())
    }
}

/// Computes the set of element types a path can end at, starting from
/// `context`, for documents conforming to `dtd`.
///
/// ```
/// use smoqe_view::typecheck::{end_types, TypeContext};
/// use smoqe_rxpath::parse_path;
/// use smoqe_xml::{Dtd, Vocabulary, HOSPITAL_DTD};
/// let vocab = Vocabulary::new();
/// let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
/// let p = parse_path("hospital/patient//medication", &vocab).unwrap();
/// let ends = end_types(&p, &dtd, &TypeContext::DocumentRoot);
/// assert_eq!(ends.len(), 1);
/// assert!(ends.contains(&vocab.lookup("medication").unwrap()));
/// ```
pub fn end_types(path: &Path, dtd: &Dtd, context: &TypeContext) -> BTreeSet<Label> {
    let mut builder = Builder::new();
    let nfa_id = builder.build_path_nfa(path);
    let nfa = &builder.nfas[nfa_id.index()];

    // Product states: (nfa state, current type). The virtual root is a
    // pseudo-type.
    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    enum Ty {
        Virtual,
        Elem(Label),
    }

    let start_states = eps_closure_unguarded(nfa, &[nfa.start()]);
    let mut queue: VecDeque<(StateId, Ty)> = VecDeque::new();
    let mut seen: HashSet<(StateId, Ty)> = HashSet::new();
    let contexts: Vec<Ty> = match context {
        TypeContext::DocumentRoot => vec![Ty::Virtual],
        TypeContext::Types(ts) => ts.iter().map(|&t| Ty::Elem(t)).collect(),
    };
    for &s in &start_states {
        for &t in &contexts {
            if seen.insert((s, t)) {
                queue.push_back((s, t));
            }
        }
    }
    let mut ends: BTreeSet<Label> = BTreeSet::new();
    // Record end types for nullable paths? A path ending at the context
    // itself ends at a context type, which is only a label for Types
    // contexts. The caller-facing contract is "types of nodes in the
    // answer"; the context node itself is in the answer iff the path is
    // nullable.
    if path.nullable() {
        if let TypeContext::Types(ts) = context {
            ends.extend(ts.iter().copied());
        }
    }
    while let Some((s, ty)) = queue.pop_front() {
        let child_types: BTreeSet<Label> = match ty {
            Ty::Virtual => [dtd.root()].into_iter().collect(),
            Ty::Elem(l) => dtd.child_types(l),
        };
        for t in nfa.transitions(s) {
            for &b in &child_types {
                if !t.test.matches(b) {
                    continue;
                }
                let closed = eps_closure_unguarded(nfa, &[t.target]);
                for u in closed {
                    if nfa.is_accept(u) {
                        ends.insert(b);
                    }
                    if seen.insert((u, Ty::Elem(b))) {
                        queue.push_back((u, Ty::Elem(b)));
                    }
                }
            }
        }
    }
    ends
}

/// Whether `path` can produce any node at all under `dtd` from `context`
/// (an unsatisfiable σ is almost certainly a specification bug).
pub fn is_satisfiable(path: &Path, dtd: &Dtd, context: &TypeContext) -> bool {
    !end_types(path, dtd, context).is_empty() || path.nullable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_rxpath::parse_path;
    use smoqe_xml::{Vocabulary, HOSPITAL_DTD};

    fn setup() -> (Vocabulary, Dtd) {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        (vocab, dtd)
    }

    fn names(vocab: &Vocabulary, set: &BTreeSet<Label>) -> Vec<String> {
        set.iter().map(|&l| vocab.name(l).to_string()).collect()
    }

    #[test]
    fn simple_chain() {
        let (vocab, dtd) = setup();
        let p = parse_path("hospital/patient/visit", &vocab).unwrap();
        let ends = end_types(&p, &dtd, &TypeContext::DocumentRoot);
        assert_eq!(names(&vocab, &ends), vec!["visit"]);
    }

    #[test]
    fn wildcard_expands_to_children() {
        let (vocab, dtd) = setup();
        let p = parse_path("hospital/patient/*", &vocab).unwrap();
        let ends = end_types(&p, &dtd, &TypeContext::DocumentRoot);
        let mut got = names(&vocab, &ends);
        got.sort();
        assert_eq!(got, vec!["parent", "pname", "visit"]);
    }

    #[test]
    fn descendants_cover_recursion() {
        let (vocab, dtd) = setup();
        let p = parse_path("//patient", &vocab).unwrap();
        let ends = end_types(&p, &dtd, &TypeContext::DocumentRoot);
        assert_eq!(names(&vocab, &ends), vec!["patient"]);
        // And patient is reachable at arbitrary depth through parent.
        let p2 = parse_path("hospital/patient/(parent/patient)*", &vocab).unwrap();
        let ends2 = end_types(&p2, &dtd, &TypeContext::DocumentRoot);
        assert_eq!(names(&vocab, &ends2), vec!["patient"]);
    }

    #[test]
    fn from_element_context() {
        let (vocab, dtd) = setup();
        let patient = vocab.lookup("patient").unwrap();
        let p = parse_path("visit/treatment", &vocab).unwrap();
        let ends = end_types(&p, &dtd, &TypeContext::of(patient));
        assert_eq!(names(&vocab, &ends), vec!["treatment"]);
    }

    #[test]
    fn impossible_paths_have_no_end_types() {
        let (vocab, dtd) = setup();
        // date has no children.
        let p = parse_path("hospital/patient/visit/date/test", &vocab).unwrap();
        assert!(end_types(&p, &dtd, &TypeContext::DocumentRoot).is_empty());
        assert!(!is_satisfiable(&p, &dtd, &TypeContext::DocumentRoot));
        // Wrong root.
        let p2 = parse_path("patient", &vocab).unwrap();
        assert!(end_types(&p2, &dtd, &TypeContext::DocumentRoot).is_empty());
    }

    #[test]
    fn nullable_paths_include_context() {
        let (vocab, dtd) = setup();
        let patient = vocab.lookup("patient").unwrap();
        let p = parse_path("(parent/patient)*", &vocab).unwrap();
        let ends = end_types(&p, &dtd, &TypeContext::of(patient));
        assert_eq!(names(&vocab, &ends), vec!["patient"]);
    }

    #[test]
    fn qualifiers_are_ignored_for_typing() {
        let (vocab, dtd) = setup();
        let p = parse_path("hospital/patient[visit]/pname", &vocab).unwrap();
        let ends = end_types(&p, &dtd, &TypeContext::DocumentRoot);
        assert_eq!(names(&vocab, &ends), vec!["pname"]);
    }

    #[test]
    fn union_types_accumulate() {
        let (vocab, dtd) = setup();
        let p = parse_path("hospital/patient/(pname | visit/date)", &vocab).unwrap();
        let mut got = names(&vocab, &end_types(&p, &dtd, &TypeContext::DocumentRoot));
        got.sort();
        assert_eq!(got, vec!["date", "pname"]);
    }
}
