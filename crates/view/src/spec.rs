//! View specifications (σ) and their well-formedness checks.
//!
//! A view is defined by a **view DTD** D_V plus, for every edge `(A, B)`
//! of D_V, a Regular XPath query σ(A, B) over the *source* document: the
//! B-children of a view node (which corresponds to a source node of type
//! A) are the source nodes σ(A, B) selects from that node (paper §2/§3,
//! "Specifying XML views" — the DAD/AXSD-style annotation mode). Specs are
//! produced either by hand ([`ViewSpec::parse`], the iSMOQE annotation
//! tool's role) or automatically from an access-control policy
//! ([`crate::derive::derive`]).

use crate::typecheck::{end_types, TypeContext};
use smoqe_rxpath::{parse_path, ParseError, Path};
use smoqe_xml::{ContentModel, Dtd, Label, Vocabulary};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Errors raised by spec construction, parsing or validation.
#[derive(Debug)]
pub enum ViewError {
    /// σ missing for a view-DTD edge.
    MissingSigma(String, String),
    /// σ defined for an edge that is not in the view DTD.
    UnknownEdge(String, String),
    /// σ(A,B) can select the context node itself (nullable), which would
    /// make the view tree infinite.
    NullableSigma(String, String),
    /// σ(A,B) can produce nodes whose type is not B.
    TypeMismatch {
        /// Parent view type.
        parent: String,
        /// Child view type.
        child: String,
        /// The offending end types.
        produces: Vec<String>,
    },
    /// σ(A,B) can never produce any node on documents of the source DTD.
    Unsatisfiable(String, String),
    /// The view root differs from the source root.
    RootMismatch {
        /// View DTD root name.
        view: String,
        /// Source DTD root name.
        source: String,
    },
    /// Spec text syntax error.
    Syntax(String),
    /// Embedded Regular XPath failed to parse.
    Path(ParseError),
    /// DTD part failed to parse.
    Dtd(smoqe_xml::XmlError),
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::MissingSigma(a, b) => write!(f, "missing sigma({a}, {b})"),
            ViewError::UnknownEdge(a, b) => {
                write!(f, "sigma({a}, {b}) does not match a view DTD edge")
            }
            ViewError::NullableSigma(a, b) => write!(
                f,
                "sigma({a}, {b}) may select the context node (nullable path)"
            ),
            ViewError::TypeMismatch {
                parent,
                child,
                produces,
            } => write!(
                f,
                "sigma({parent}, {child}) produces types {{{}}}, expected only {child}",
                produces.join(", ")
            ),
            ViewError::Unsatisfiable(a, b) => write!(
                f,
                "sigma({a}, {b}) can never select a node under the source DTD"
            ),
            ViewError::RootMismatch { view, source } => {
                write!(f, "view root <{view}> differs from source root <{source}>")
            }
            ViewError::Syntax(s) => write!(f, "view spec syntax error: {s}"),
            ViewError::Path(e) => write!(f, "bad path in view spec: {e}"),
            ViewError::Dtd(e) => write!(f, "bad view DTD: {e}"),
        }
    }
}

impl std::error::Error for ViewError {}

/// A complete view definition: view DTD + σ annotations.
#[derive(Clone, Debug)]
pub struct ViewSpec {
    view_dtd: Dtd,
    sigma: BTreeMap<(Label, Label), Path>,
}

impl ViewSpec {
    /// A spec over `view_dtd` with no σ assignments yet.
    pub fn new(view_dtd: Dtd) -> Self {
        ViewSpec {
            view_dtd,
            sigma: BTreeMap::new(),
        }
    }

    /// The **identity view** over `dtd`: the view equals the document
    /// (σ(A,B) = B for every edge). Useful as a baseline and in tests —
    /// rewriting over the identity view must preserve every query.
    pub fn identity(dtd: &Dtd) -> Self {
        let mut spec = ViewSpec::new(dtd.clone());
        for a in dtd.element_types() {
            for b in dtd.child_types(a) {
                spec.sigma.insert((a, b), Path::Label(b));
            }
        }
        spec
    }

    /// The view DTD exposed to users.
    pub fn view_dtd(&self) -> &Dtd {
        &self.view_dtd
    }

    /// The vocabulary shared with the source.
    pub fn vocabulary(&self) -> &Vocabulary {
        self.view_dtd.vocabulary()
    }

    /// Sets σ(parent, child).
    pub fn set_sigma(&mut self, parent: Label, child: Label, path: Path) {
        self.sigma.insert((parent, child), path);
    }

    /// σ(parent, child), if defined.
    pub fn sigma(&self, parent: Label, child: Label) -> Option<&Path> {
        self.sigma.get(&(parent, child))
    }

    /// All σ entries in deterministic order.
    pub fn sigmas(&self) -> impl Iterator<Item = (&(Label, Label), &Path)> {
        self.sigma.iter()
    }

    /// The child types of `parent` in the view, in canonical (label)
    /// order — the order the materializer emits them in.
    pub fn view_children(&self, parent: Label) -> Vec<Label> {
        self.view_dtd.child_types(parent).into_iter().collect()
    }

    /// Validates the spec against the source DTD: every view edge has a
    /// non-nullable, type-correct, satisfiable σ; the roots agree.
    pub fn validate(&self, source: &Dtd) -> Result<(), ViewError> {
        let vocab = self.view_dtd.vocabulary();
        let name = |l: Label| vocab.name(l).to_string();
        if self.view_dtd.root() != source.root() {
            return Err(ViewError::RootMismatch {
                view: name(self.view_dtd.root()),
                source: name(source.root()),
            });
        }
        for ((a, b), _) in self.sigma.iter() {
            if !self.view_dtd.child_types(*a).contains(b) {
                return Err(ViewError::UnknownEdge(name(*a), name(*b)));
            }
        }
        for a in self.view_dtd.element_types() {
            for b in self.view_dtd.child_types(a) {
                let Some(path) = self.sigma.get(&(a, b)) else {
                    return Err(ViewError::MissingSigma(name(a), name(b)));
                };
                if path.nullable() {
                    return Err(ViewError::NullableSigma(name(a), name(b)));
                }
                let ends = end_types(path, source, &TypeContext::of(a));
                if ends.is_empty() {
                    return Err(ViewError::Unsatisfiable(name(a), name(b)));
                }
                if ends.iter().any(|t| t != &b) {
                    return Err(ViewError::TypeMismatch {
                        parent: name(a),
                        child: name(b),
                        produces: ends.iter().map(|&t| name(t)).collect(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Parses the textual spec format: `<!ELEMENT ...>` declarations for
    /// the view DTD interleaved with `sigma(A, B) = path` lines.
    pub fn parse(input: &str, vocab: &Vocabulary) -> Result<ViewSpec, ViewError> {
        let mut dtd_text = String::new();
        let mut sigma_lines: Vec<(usize, String)> = Vec::new();
        for (lineno, raw) in input.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with("<!") {
                dtd_text.push_str(line);
                dtd_text.push('\n');
            } else if line.starts_with("sigma(") {
                sigma_lines.push((lineno + 1, line.to_string()));
            } else {
                return Err(ViewError::Syntax(format!(
                    "line {}: expected <!ELEMENT ...> or sigma(...): `{line}`",
                    lineno + 1
                )));
            }
        }
        let view_dtd = Dtd::parse(&dtd_text, vocab).map_err(ViewError::Dtd)?;
        let mut spec = ViewSpec::new(view_dtd);
        for (lineno, line) in sigma_lines {
            let err = |msg: &str| ViewError::Syntax(format!("line {lineno}: {msg}: `{line}`"));
            let rest = line.strip_prefix("sigma(").expect("checked");
            let (pair, rhs) = rest.split_once(')').ok_or_else(|| err("missing `)`"))?;
            let (a, b) = pair
                .split_once(',')
                .ok_or_else(|| err("expected `parent, child`"))?;
            let rhs = rhs
                .trim()
                .strip_prefix('=')
                .ok_or_else(|| err("missing `=`"))?
                .trim();
            let path = parse_path(rhs, vocab).map_err(ViewError::Path)?;
            spec.set_sigma(vocab.intern(a.trim()), vocab.intern(b.trim()), path);
        }
        Ok(spec)
    }

    /// Renders the spec in the Fig. 3(c) style.
    pub fn to_spec_string(&self) -> String {
        let vocab = self.view_dtd.vocabulary();
        let mut out = String::new();
        let mut order: Vec<Label> = vec![self.view_dtd.root()];
        order.extend(
            self.view_dtd
                .element_types()
                .filter(|&l| l != self.view_dtd.root()),
        );
        for a in order {
            let Some(model) = self.view_dtd.production(a) else {
                continue;
            };
            let _ = writeln!(
                out,
                "production: {} -> {}",
                vocab.name(a),
                model.display(vocab)
            );
            for b in self.view_dtd.child_types(a) {
                if let Some(path) = self.sigma.get(&(a, b)) {
                    let _ = writeln!(
                        out,
                        "  sigma({}, {}) = {}",
                        vocab.name(a),
                        vocab.name(b),
                        path.display(vocab)
                    );
                }
            }
        }
        out
    }

    /// Consumes the spec into its parts.
    pub fn into_parts(self) -> (Dtd, BTreeMap<(Label, Label), Path>) {
        (self.view_dtd, self.sigma)
    }
}

/// Helper for derivation and tests: the `(min, max)` occurrence bounds of
/// label `b` in a content model (`u32::MAX` = unbounded).
pub(crate) fn occurrence_bounds(model: &ContentModel, b: Label) -> (u32, u32) {
    const INF: u32 = u32::MAX;
    match model {
        ContentModel::Empty | ContentModel::Text => (0, 0),
        ContentModel::Any => (0, INF),
        ContentModel::Elem(l) => {
            if *l == b {
                (1, 1)
            } else {
                (0, 0)
            }
        }
        ContentModel::Seq(cs) => cs.iter().fold((0, 0), |(mn, mx), c| {
            let (cmn, cmx) = occurrence_bounds(c, b);
            (mn.saturating_add(cmn), mx.saturating_add(cmx))
        }),
        ContentModel::Choice(cs) => {
            if cs.is_empty() {
                return (0, 0);
            }
            let bounds: Vec<(u32, u32)> = cs.iter().map(|c| occurrence_bounds(c, b)).collect();
            (
                bounds.iter().map(|x| x.0).min().unwrap_or(0),
                bounds.iter().map(|x| x.1).max().unwrap_or(0),
            )
        }
        ContentModel::Star(c) => {
            let (_, mx) = occurrence_bounds(c, b);
            (0, if mx > 0 { INF } else { 0 })
        }
        ContentModel::Plus(c) => {
            let (mn, mx) = occurrence_bounds(c, b);
            (mn, if mx > 0 { INF } else { 0 })
        }
        ContentModel::Opt(c) => {
            let (_, mx) = occurrence_bounds(c, b);
            (0, mx)
        }
        ContentModel::Mixed(ls) => {
            if ls.contains(&b) {
                (0, INF)
            } else {
                (0, 0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_xml::HOSPITAL_DTD;

    fn setup() -> (Vocabulary, Dtd) {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        (vocab, dtd)
    }

    #[test]
    fn identity_spec_validates() {
        let (_, dtd) = setup();
        let spec = ViewSpec::identity(&dtd);
        spec.validate(&dtd).unwrap();
    }

    #[test]
    fn parse_and_print_round_trip() {
        let (vocab, dtd) = setup();
        let text = "\
<!ELEMENT hospital (patient*)>
<!ELEMENT patient (treatment*)>
<!ELEMENT treatment (#PCDATA)>
sigma(hospital, patient) = patient[visit]
sigma(patient, treatment) = visit/treatment
";
        let spec = ViewSpec::parse(text, &vocab).unwrap();
        spec.validate(&dtd).unwrap();
        let printed = spec.to_spec_string();
        assert!(printed.contains("sigma(hospital, patient) = patient[visit]"));
        assert!(printed.contains("sigma(patient, treatment) = visit/treatment"));
    }

    #[test]
    fn validation_catches_missing_sigma() {
        let (vocab, dtd) = setup();
        let text = "<!ELEMENT hospital (patient*)>\n<!ELEMENT patient EMPTY>\n";
        let spec = ViewSpec::parse(text, &vocab).unwrap();
        assert!(matches!(
            spec.validate(&dtd),
            Err(ViewError::MissingSigma(_, _))
        ));
    }

    #[test]
    fn validation_catches_nullable_sigma() {
        let (vocab, dtd) = setup();
        let text = "<!ELEMENT hospital (patient*)>\n<!ELEMENT patient EMPTY>\n\
                    sigma(hospital, patient) = (patient)*\n";
        let spec = ViewSpec::parse(text, &vocab).unwrap();
        assert!(matches!(
            spec.validate(&dtd),
            Err(ViewError::NullableSigma(_, _))
        ));
    }

    #[test]
    fn validation_catches_type_mismatch() {
        let (vocab, dtd) = setup();
        let text = "<!ELEMENT hospital (patient*)>\n<!ELEMENT patient EMPTY>\n\
                    sigma(hospital, patient) = patient/pname\n";
        let spec = ViewSpec::parse(text, &vocab).unwrap();
        assert!(matches!(
            spec.validate(&dtd),
            Err(ViewError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn validation_catches_unsatisfiable_sigma() {
        let (vocab, dtd) = setup();
        let text = "<!ELEMENT hospital (patient*)>\n<!ELEMENT patient EMPTY>\n\
                    sigma(hospital, patient) = pname/patient\n";
        let spec = ViewSpec::parse(text, &vocab).unwrap();
        assert!(matches!(
            spec.validate(&dtd),
            Err(ViewError::Unsatisfiable(_, _))
        ));
    }

    #[test]
    fn validation_catches_root_mismatch() {
        let (vocab, dtd) = setup();
        let text = "<!ELEMENT patient EMPTY>\n";
        let spec = ViewSpec::parse(text, &vocab).unwrap();
        assert!(matches!(
            spec.validate(&dtd),
            Err(ViewError::RootMismatch { .. })
        ));
    }

    #[test]
    fn occurrence_bounds_cover_operators() {
        let (vocab, dtd) = setup();
        let b = vocab.lookup("patient").unwrap();
        let hospital_model = dtd.production(dtd.root()).unwrap();
        assert_eq!(occurrence_bounds(hospital_model, b), (0, u32::MAX));
        let parent = vocab.lookup("parent").unwrap();
        let parent_model = dtd.production(parent).unwrap();
        assert_eq!(occurrence_bounds(parent_model, b), (1, 1));
        let treatment = vocab.lookup("treatment").unwrap();
        let tm = dtd.production(treatment).unwrap();
        let med = vocab.lookup("medication").unwrap();
        assert_eq!(occurrence_bounds(tm, med), (0, 1));
    }
}
