//! # smoqe-view — XML security views
//!
//! SMOQE enforces access control by giving each user group a **virtual
//! XML view** containing exactly the information the group may access
//! (paper §1, §2). This crate implements the view layer:
//!
//! * [`policy`] — access-control policies annotating DTD edges with
//!   `Y` / `N` / `[qualifier]` (Fig. 3(b));
//! * [`derive`] — automatic derivation of a view specification + view DTD
//!   from a policy (Fig. 3(c)/(d); Fan–Chan–Garofalakis security views),
//!   producing Kleene closures for recursive hidden regions;
//! * [`spec`] — view specifications σ (the DAD/AXSD-style annotation
//!   mode), parsing, printing and well-formedness validation;
//! * [`typecheck`] — static typing of Regular XPath against a DTD;
//! * [`materialize`] — V(T) construction with view→source origins, used
//!   by the equivalence tests and the materialization baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod derive;
pub mod materialize;
pub mod policy;
pub mod spec;
pub mod typecheck;

pub use derive::derive;
pub use materialize::{accessible_nodes, materialize, materialize_fragment, MaterializedView};
pub use policy::{AccessPolicy, Ann, PolicyError, HOSPITAL_POLICY};
pub use spec::{ViewError, ViewSpec};
