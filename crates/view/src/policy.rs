//! Access-control policies over DTDs (Fig. 3(b) of the paper).
//!
//! A policy annotates the edges of a document DTD: each `(parent type,
//! child type)` pair may be marked `Y` (accessible), `N` (inaccessible) or
//! `[q]` (conditionally accessible: the child is visible iff the Regular
//! XPath qualifier `q` holds at it). **Unannotated edges inherit the
//! visibility of their parent context** — this is what makes `date`
//! disappear in the paper's example (its parent `visit` is denied) while
//! `medication` survives (its parent `treatment` is re-granted).

use smoqe_rxpath::{parse_qualifier, ParseError, Qualifier};
use smoqe_xml::{Dtd, Label};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An annotation on a DTD edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ann {
    /// `Y`: the child elements are accessible.
    Allow,
    /// `N`: the child elements are hidden (their *descendants* may still
    /// be re-granted further down).
    Deny,
    /// `[q]`: accessible exactly where `q` holds at the child element.
    Cond(Qualifier),
}

/// Errors raised while building or parsing a policy.
#[derive(Debug)]
pub enum PolicyError {
    /// The annotated edge does not exist in the DTD.
    UnknownEdge {
        /// Parent element type name.
        parent: String,
        /// Child element type name.
        child: String,
    },
    /// A line could not be parsed.
    Syntax(String),
    /// A qualifier failed to parse.
    Qualifier(ParseError),
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::UnknownEdge { parent, child } => {
                write!(f, "annotation on unknown DTD edge ({parent}, {child})")
            }
            PolicyError::Syntax(s) => write!(f, "policy syntax error: {s}"),
            PolicyError::Qualifier(e) => write!(f, "bad qualifier in policy: {e}"),
        }
    }
}

impl std::error::Error for PolicyError {}

/// An access-control policy: a source DTD plus edge annotations.
#[derive(Clone, Debug)]
pub struct AccessPolicy {
    dtd: Dtd,
    anns: BTreeMap<(Label, Label), Ann>,
}

impl AccessPolicy {
    /// A policy with no annotations (everything accessible).
    pub fn allow_all(dtd: Dtd) -> Self {
        AccessPolicy {
            dtd,
            anns: BTreeMap::new(),
        }
    }

    /// The underlying document DTD.
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// Sets the annotation of edge `(parent, child)`.
    pub fn annotate(&mut self, parent: Label, child: Label, ann: Ann) -> Result<(), PolicyError> {
        if !self.dtd.child_types(parent).contains(&child) {
            let vocab = self.dtd.vocabulary();
            return Err(PolicyError::UnknownEdge {
                parent: vocab.name(parent).to_string(),
                child: vocab.name(child).to_string(),
            });
        }
        self.anns.insert((parent, child), ann);
        Ok(())
    }

    /// The explicit annotation on an edge, if any.
    pub fn annotation(&self, parent: Label, child: Label) -> Option<&Ann> {
        self.anns.get(&(parent, child))
    }

    /// All explicit annotations in deterministic order.
    pub fn annotations(&self) -> impl Iterator<Item = (&(Label, Label), &Ann)> {
        self.anns.iter()
    }

    /// Number of explicit annotations.
    pub fn len(&self) -> usize {
        self.anns.len()
    }

    /// Whether the policy has no explicit annotations.
    pub fn is_empty(&self) -> bool {
        self.anns.is_empty()
    }

    /// Parses the textual policy format used throughout the examples,
    /// mirroring Fig. 3(b):
    ///
    /// ```text
    /// ann(hospital, patient) = [visit/treatment/medication = 'autism']
    /// ann(patient, pname)    = N
    /// ann(visit, treatment)  = [medication]
    /// ann(parent, patient)   = Y
    /// # comments and blank lines are ignored
    /// ```
    pub fn parse(dtd: Dtd, input: &str) -> Result<AccessPolicy, PolicyError> {
        let vocab = dtd.vocabulary().clone();
        let mut policy = AccessPolicy::allow_all(dtd);
        for (lineno, raw) in input.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err =
                |msg: &str| PolicyError::Syntax(format!("line {}: {msg}: `{line}`", lineno + 1));
            let rest = line
                .strip_prefix("ann(")
                .ok_or_else(|| err("expected `ann(parent, child) = ...`"))?;
            let (pair, rhs) = rest.split_once(')').ok_or_else(|| err("missing `)`"))?;
            let (parent, child) = pair
                .split_once(',')
                .ok_or_else(|| err("expected `parent, child`"))?;
            let rhs = rhs
                .trim()
                .strip_prefix('=')
                .ok_or_else(|| err("missing `=`"))?
                .trim();
            let parent = vocab.intern(parent.trim());
            let child = vocab.intern(child.trim());
            let ann = match rhs {
                "Y" | "y" => Ann::Allow,
                "N" | "n" => Ann::Deny,
                _ => {
                    let q = rhs
                        .strip_prefix('[')
                        .and_then(|r| r.strip_suffix(']'))
                        .ok_or_else(|| err("expected Y, N or [qualifier]"))?;
                    Ann::Cond(parse_qualifier(q, &vocab).map_err(PolicyError::Qualifier)?)
                }
            };
            policy.annotate(parent, child, ann)?;
        }
        Ok(policy)
    }

    /// Renders the policy in the Fig. 3(b) style (productions interleaved
    /// with their annotations).
    pub fn to_policy_string(&self) -> String {
        let vocab = self.dtd.vocabulary();
        let mut out = String::new();
        let mut order: Vec<Label> = vec![self.dtd.root()];
        order.extend(self.dtd.element_types().filter(|&l| l != self.dtd.root()));
        for a in order {
            let Some(model) = self.dtd.production(a) else {
                continue;
            };
            let _ = writeln!(
                out,
                "production: {} -> {}",
                vocab.name(a),
                model.display(vocab)
            );
            for b in self.dtd.child_types(a) {
                if let Some(ann) = self.anns.get(&(a, b)) {
                    let rhs = match ann {
                        Ann::Allow => "Y".to_string(),
                        Ann::Deny => "N".to_string(),
                        Ann::Cond(q) => format!("[{}]", q.display(vocab)),
                    };
                    let _ = writeln!(out, "  ann({}, {}) = {}", vocab.name(a), vocab.name(b), rhs);
                }
            }
        }
        out
    }
}

/// The access-control policy S0 of Fig. 3(b): expose only patients that
/// took medication for autism, hiding names and test information.
pub const HOSPITAL_POLICY: &str = r#"
# Fig. 3(b): access control policy S0
ann(hospital, patient)  = [visit/treatment/medication = 'autism']
ann(patient, pname)     = N
ann(patient, visit)     = N
ann(visit, treatment)   = [medication]
ann(treatment, test)    = N
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_xml::{Vocabulary, HOSPITAL_DTD};

    fn hospital() -> (Vocabulary, Dtd) {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        (vocab, dtd)
    }

    #[test]
    fn parses_paper_policy() {
        let (vocab, dtd) = hospital();
        let policy = AccessPolicy::parse(dtd, HOSPITAL_POLICY).unwrap();
        assert_eq!(policy.len(), 5);
        let patient = vocab.lookup("patient").unwrap();
        let pname = vocab.lookup("pname").unwrap();
        assert_eq!(policy.annotation(patient, pname), Some(&Ann::Deny));
        let hospital = vocab.lookup("hospital").unwrap();
        match policy.annotation(hospital, patient) {
            Some(Ann::Cond(q)) => {
                assert_eq!(
                    q.display(&vocab).to_string(),
                    "visit/treatment/medication = 'autism'"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_edges() {
        let (_, dtd) = hospital();
        let err = AccessPolicy::parse(dtd, "ann(hospital, pname) = N").unwrap_err();
        assert!(err.to_string().contains("unknown DTD edge"));
    }

    #[test]
    fn rejects_bad_syntax() {
        let (_, dtd) = hospital();
        for bad in [
            "annotation(a, b) = N",
            "ann(hospital, patient) == N",
            "ann(hospital, patient) = MAYBE",
            "ann(hospital, patient) = [unclosed",
        ] {
            assert!(
                AccessPolicy::parse(dtd.clone(), bad).is_err(),
                "accepted `{bad}`"
            );
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let (_, dtd) = hospital();
        let policy =
            AccessPolicy::parse(dtd, "# nothing\n\n  \nann(treatment, test) = N\n").unwrap();
        assert_eq!(policy.len(), 1);
    }

    #[test]
    fn render_round_trips() {
        let (_, dtd) = hospital();
        let policy = AccessPolicy::parse(dtd.clone(), HOSPITAL_POLICY).unwrap();
        let printed = policy.to_policy_string();
        assert!(printed.contains("ann(patient, pname) = N"));
        assert!(printed.contains("production: hospital -> patient*"));
        // Extract the ann lines and reparse.
        let ann_lines: String = printed
            .lines()
            .filter(|l| l.trim_start().starts_with("ann("))
            .map(|l| format!("{}\n", l.trim()))
            .collect();
        let reparsed = AccessPolicy::parse(dtd, &ann_lines).unwrap();
        assert_eq!(reparsed.len(), policy.len());
        for ((edge, ann), (edge2, ann2)) in policy.annotations().zip(reparsed.annotations()) {
            assert_eq!(edge, edge2);
            assert_eq!(ann, ann2);
        }
    }

    #[test]
    fn allow_all_has_no_annotations() {
        let (_, dtd) = hospital();
        assert!(AccessPolicy::allow_all(dtd).is_empty());
    }
}
