//! View materialization.
//!
//! SMOQE never materializes views in production — that is the whole point
//! ("views are necessarily virtual", §1). Materialization exists here for
//! two purposes the paper itself relies on:
//!
//! * **semantics**: V(T) *defines* what the view contains; the rewriting
//!   correctness statement is `Q′(T) = Q(V(T))`, which the integration
//!   suite checks literally using this module;
//! * **baseline**: experiment E6 compares virtual-view answering against
//!   the materialize-then-evaluate strategy.
//!
//! Each view node corresponds to (is a copy of) a source node; the
//! [`MaterializedView`] keeps that origin mapping so view-side answers can
//! be compared against source-side answers of rewritten queries.

use crate::spec::{ViewError, ViewSpec};
use smoqe_rxpath::evaluate_from;
use smoqe_xml::{Document, Label, NodeId, TreeBuilder};

/// A materialized view document plus the view→source node mapping.
pub struct MaterializedView {
    /// The view document V(T).
    pub doc: Document,
    /// `origins[i]` = the source node the view node `i` was copied from.
    pub origins: Vec<NodeId>,
}

impl MaterializedView {
    /// The source node a view node was copied from.
    pub fn origin(&self, view_node: NodeId) -> NodeId {
        self.origins[view_node.index()]
    }

    /// Maps a set of view nodes to their (deduplicated, sorted) source
    /// origins.
    pub fn origins_of(&self, view_nodes: impl IntoIterator<Item = NodeId>) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = view_nodes.into_iter().map(|n| self.origin(n)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Materializes `spec` over `source`, producing V(T).
///
/// The caller should have run [`ViewSpec::validate`] against the source
/// DTD; materialization itself only requires the root to match and σ to be
/// non-nullable (checked defensively — nullable σ would make V(T)
/// infinite).
pub fn materialize(spec: &ViewSpec, source: &Document) -> Result<MaterializedView, ViewError> {
    let vocab = source.vocabulary();
    let view_root_ty = spec.view_dtd().root();
    let src_root_ty = source.label(source.root());
    if src_root_ty != Some(view_root_ty) {
        return Err(ViewError::RootMismatch {
            view: vocab.name(view_root_ty).to_string(),
            source: src_root_ty
                .map(|l| vocab.name(l).to_string())
                .unwrap_or_default(),
        });
    }
    for ((a, b), p) in spec.sigmas() {
        if p.nullable() {
            return Err(ViewError::NullableSigma(
                vocab.name(*a).to_string(),
                vocab.name(*b).to_string(),
            ));
        }
    }
    let mut builder = TreeBuilder::new(vocab.clone());
    let mut origins: Vec<NodeId> = Vec::new();
    build(
        spec,
        source,
        source.root(),
        view_root_ty,
        &mut builder,
        &mut origins,
    );
    let doc = builder.finish().expect("balanced by construction");
    debug_assert_eq!(doc.node_count(), origins.len());
    Ok(MaterializedView { doc, origins })
}

/// Materializes only the view subtree rooted at `node` (which must carry
/// a view-visible label). This is how answers of rewritten queries are
/// serialized for view users: the *view image* of the answer node — its
/// raw source subtree would leak hidden descendants.
pub fn materialize_fragment(
    spec: &ViewSpec,
    source: &Document,
    node: NodeId,
) -> Result<MaterializedView, ViewError> {
    let vocab = source.vocabulary();
    let ty = source
        .label(node)
        .ok_or_else(|| ViewError::Syntax("fragment root must be an element".to_string()))?;
    if spec.view_dtd().production(ty).is_none() {
        return Err(ViewError::UnknownEdge(
            vocab.name(ty).to_string(),
            "<fragment root not a view type>".to_string(),
        ));
    }
    let mut builder = TreeBuilder::new(vocab.clone());
    let mut origins: Vec<NodeId> = Vec::new();
    build(spec, source, node, ty, &mut builder, &mut origins);
    let doc = builder.finish().expect("balanced by construction");
    Ok(MaterializedView { doc, origins })
}

/// The set of **source** nodes the view exposes: the origin of every node
/// of V(T), sorted and deduplicated. This is the accessibility relation
/// the policy defines — a node outside this set does not exist as far as
/// the group is concerned — and it is what the engine's secure *update*
/// path checks write targets against: computed definitionally from the
/// same materialization that defines read semantics, so reads and writes
/// can never disagree about what is visible.
pub fn accessible_nodes(spec: &ViewSpec, source: &Document) -> Result<Vec<NodeId>, ViewError> {
    let view = materialize(spec, source)?;
    let mut nodes = view.origins;
    nodes.sort_unstable();
    nodes.dedup();
    Ok(nodes)
}

fn build(
    spec: &ViewSpec,
    source: &Document,
    src_node: NodeId,
    ty: Label,
    builder: &mut TreeBuilder,
    origins: &mut Vec<NodeId>,
) {
    let vid = builder.start_element(ty);
    debug_assert_eq!(vid.index(), origins.len());
    origins.push(src_node);
    // Text: if the view type carries text, copy the source node's direct
    // text (concatenated), placed before element children.
    if spec.view_dtd().allows_text(ty) {
        let mut text = String::new();
        for c in source.children(src_node) {
            if let Some(t) = source.text(c) {
                text.push_str(t);
            }
        }
        if !text.is_empty() {
            let tid = builder.next_node_id();
            builder.text(&text);
            // The builder may merge into a previous text node; only align
            // origins when a node was actually created.
            if builder.next_node_id() != tid {
                origins.push(src_node);
            }
        }
    }
    // Children per view type, in canonical (label) order - matching the
    // derived view DTD's production order.
    for b in spec.view_children(ty) {
        let Some(sigma) = spec.sigma(ty, b) else {
            continue;
        };
        // σ moves strictly downward (non-nullable), so recursion depth is
        // bounded by the source depth.
        for child_src in evaluate_from(source, sigma, &[src_node]).iter() {
            build(spec, source, child_src, b, builder, origins);
        }
    }
    builder.end_element();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::derive;
    use crate::policy::{AccessPolicy, HOSPITAL_POLICY};
    use smoqe_xml::{Dtd, Vocabulary, HOSPITAL_DTD};

    const SAMPLE: &str = "<hospital>\
        <patient><pname>Ann</pname>\
          <visit><treatment><medication>autism</medication></treatment><date>d1</date></visit>\
          <visit><treatment><test>blood</test></treatment><date>d2</date></visit>\
          <parent><patient><pname>Pa</pname>\
            <visit><treatment><medication>flu</medication></treatment><date>d3</date></visit>\
          </patient></parent>\
        </patient>\
        <patient><pname>Bob</pname>\
          <visit><treatment><medication>flu</medication></treatment><date>d4</date></visit>\
        </patient>\
      </hospital>";

    fn setup() -> (Vocabulary, Dtd, ViewSpec, Document) {
        let vocab = Vocabulary::new();
        let dtd = Dtd::parse(HOSPITAL_DTD, &vocab).unwrap();
        let policy = AccessPolicy::parse(dtd.clone(), HOSPITAL_POLICY).unwrap();
        let spec = derive(&policy);
        let doc = Document::parse_str(SAMPLE, &vocab).unwrap();
        dtd.validate(&doc).unwrap();
        (vocab, dtd, spec, doc)
    }

    #[test]
    fn hospital_view_contents() {
        let (_, _, spec, doc) = setup();
        let view = materialize(&spec, &doc).unwrap();
        let xml = view.doc.to_xml();
        // Ann took autism medication: exposed, but her name and her test
        // treatment are not; Bob (flu only) is not exposed at all.
        assert_eq!(
            xml,
            "<hospital><patient>\
               <parent><patient><treatment><medication>flu</medication></treatment></patient></parent>\
               <treatment><medication>autism</medication></treatment>\
             </patient></hospital>"
        );
        assert!(!xml.contains("Ann"));
        assert!(!xml.contains("Bob"));
        assert!(!xml.contains("test"));
        assert!(!xml.contains("date"));
    }

    #[test]
    fn view_conforms_to_view_dtd() {
        let (_, _, spec, doc) = setup();
        let view = materialize(&spec, &doc).unwrap();
        spec.view_dtd().validate(&view.doc).unwrap();
    }

    #[test]
    fn origins_point_to_matching_source_nodes() {
        let (_, _, spec, doc) = setup();
        let view = materialize(&spec, &doc).unwrap();
        for vn in view.doc.all_nodes() {
            let origin = view.origin(vn);
            if let Some(l) = view.doc.label(vn) {
                assert_eq!(doc.label(origin), Some(l), "origin label mismatch");
            }
        }
    }

    #[test]
    fn identity_view_reproduces_elements() {
        let (vocab, dtd, _, doc) = setup();
        let spec = ViewSpec::identity(&dtd);
        let view = materialize(&spec, &doc).unwrap();
        // Same element structure (text placement may differ: identity view
        // copies direct text only).
        assert_eq!(view.doc.element_count(), doc.element_count());
        let _ = vocab;
    }

    #[test]
    fn root_mismatch_rejected() {
        let (vocab, _, spec, _) = setup();
        let other = Document::parse_str("<patient><pname>X</pname></patient>", &vocab).unwrap();
        assert!(matches!(
            materialize(&spec, &other),
            Err(ViewError::RootMismatch { .. })
        ));
    }

    #[test]
    fn empty_view_when_nothing_qualifies() {
        let (vocab, _, spec, _) = setup();
        let doc = Document::parse_str(
            "<hospital><patient><pname>Zed</pname>\
             <visit><treatment><test>t</test></treatment><date>d</date></visit>\
             </patient></hospital>",
            &vocab,
        )
        .unwrap();
        let view = materialize(&spec, &doc).unwrap();
        assert_eq!(view.doc.to_xml(), "<hospital/>");
    }

    #[test]
    fn accessible_nodes_expose_exactly_the_view_origins() {
        let (vocab, _, spec, doc) = setup();
        let access = accessible_nodes(&spec, &doc).unwrap();
        let set: std::collections::HashSet<NodeId> = access.iter().copied().collect();
        assert_eq!(set.len(), access.len(), "deduplicated");
        // Every visible medication's source node is accessible; no pname,
        // date or test node is.
        let label = |n: &str| vocab.lookup(n).unwrap();
        let autism_med = doc
            .nodes_labeled(label("medication"))
            .find(|&m| doc.string_value(m) == "autism")
            .unwrap();
        assert!(set.contains(&autism_med));
        assert!(set.contains(&doc.root()));
        for hidden in ["pname", "date", "test"] {
            for n in doc.nodes_labeled(label(hidden)) {
                assert!(!set.contains(&n), "{hidden} must be inaccessible");
            }
        }
        // Bob has no autism medication: his whole subtree is inaccessible.
        let bob = doc
            .nodes_labeled(label("patient"))
            .find(|&p| doc.string_value(p).contains("Bob"))
            .unwrap();
        for n in doc.descendants_or_self(bob) {
            assert!(!set.contains(&n), "Bob's subtree is hidden");
        }
    }

    #[test]
    fn recursive_parents_materialize_to_arbitrary_depth() {
        let (vocab, _, spec, _) = setup();
        // Three levels of parent nesting, all with autism medication.
        let xml = "<hospital><patient><pname>A</pname>\
            <visit><treatment><medication>autism</medication></treatment><date>d</date></visit>\
            <parent><patient><pname>B</pname>\
              <visit><treatment><medication>autism</medication></treatment><date>d</date></visit>\
              <parent><patient><pname>C</pname>\
                <visit><treatment><medication>autism</medication></treatment><date>d</date></visit>\
              </patient></parent>\
            </patient></parent>\
          </patient></hospital>";
        let doc = Document::parse_str(xml, &vocab).unwrap();
        let view = materialize(&spec, &doc).unwrap();
        let patient = vocab.lookup("patient").unwrap();
        assert_eq!(view.doc.nodes_labeled(patient).count(), 3);
        spec.view_dtd().validate(&view.doc).unwrap();
    }
}
