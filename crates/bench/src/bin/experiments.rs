//! The experiment harness: regenerates every demonstration claim of the
//! paper as a table on stdout (EXPERIMENTS.md records the outputs).
//!
//! ```text
//! cargo run --release -p smoqe-bench --bin experiments            # all
//! cargo run --release -p smoqe-bench --bin experiments -- e3 e5   # subset
//! cargo run --release -p smoqe-bench --bin experiments -- quick   # small sizes
//! cargo run --release -p smoqe-bench --bin experiments -- bench   # BENCH.json
//! ```

use smoqe::workloads::hospital;
use smoqe::{Engine, EngineConfig, User};
use smoqe_automata::compile::CompiledMfa;
use smoqe_automata::{compile, optimize::optimize};
use smoqe_bench::{fmt_duration, time, time_mean, time_min, HospitalSetup, OrgSetup, Table};
use smoqe_hype::batch::evaluate_batch_stream_plans;
use smoqe_hype::dom::{evaluate_mfa_plan, evaluate_mfa_with, DomOptions};
use smoqe_hype::stream::{evaluate_stream, evaluate_stream_plan_with, StreamOptions};
use smoqe_hype::{
    evaluate_jump_frontier, evaluate_mfa, evaluate_mfa_twopass_report, ExecMode, NoopObserver,
};
use smoqe_rewrite::{rewrite, rewrite_direct};
use smoqe_rxpath::{evaluate as naive_evaluate, parse_path};
use smoqe_server::{run_traffic, Server, ServerConfig, TrafficConfig};
use smoqe_tax::TaxIndex;
use smoqe_view::{derive, materialize, AccessPolicy};
use smoqe_xml::{generate_to_writer, Document, Vocabulary};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let selected: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| a.starts_with('e') || *a == "bench" || *a == "largedoc")
        .collect();
    let run = |name: &str| selected.is_empty() || selected.contains(&name);

    println!("SMOQE experiment harness (quick={quick})");
    println!("=========================================\n");
    if run("e1") {
        e1();
    }
    if run("e2") {
        e2(quick);
    }
    if run("e3") {
        e3(quick);
    }
    if run("e4") {
        e4(quick);
    }
    if run("e5") {
        e5(quick);
    }
    if run("e6") {
        e6(quick);
    }
    if run("e7") {
        e7();
    }
    // The machine-readable perf trajectory is only written on request:
    // `experiments -- bench [quick]`.
    if selected.contains(&"bench") {
        bench_json(quick);
    }
    // Large-document smoke (`experiments -- largedoc [quick]`): parse a
    // ~100 MB synthetic document and keep peak RSS under budget.
    if selected.contains(&"largedoc") {
        largedoc(quick);
    }
}

/// Generates a large (~100 MB, or ~10 MB with `quick`) synthetic hospital
/// document on disk, parses it into the span-arena DOM, runs one
/// selective query, and asserts peak RSS stays within a fixed multiple of
/// the document size — a CI guard against memory-footprint regressions in
/// the zero-copy document storage.
fn largedoc(quick: bool) {
    println!("## largedoc  ~100 MB parse + query under a peak-RSS budget\n");
    let target_mb: usize = if quick { 10 } else { 100 };
    let vocab = Vocabulary::new();
    let dtd = hospital::dtd(&vocab);
    // The hospital DTD serializes at roughly 14 bytes of XML per node.
    let target_nodes = target_mb * (1 << 20) / 14;
    let config = hospital::generator_config(&vocab, 99, target_nodes);
    let path = std::env::temp_dir().join("smoqe-largedoc.xml");
    {
        let file = std::fs::File::create(&path).expect("create large doc");
        generate_to_writer(&dtd, &config, std::io::BufWriter::new(file)).expect("generate");
    }
    let bytes = std::fs::metadata(&path).expect("stat large doc").len();
    let (doc, parse_d) = time(|| smoqe_xml::parse_file(&path, &vocab).expect("parse large doc"));
    std::fs::remove_file(&path).ok();
    let plan = {
        let q = parse_path("//test", &vocab).unwrap();
        CompiledMfa::compile(&optimize(&compile(&q, &vocab)))
    };
    let ((answers, _), query_d) = time(|| {
        evaluate_mfa_plan(
            &doc,
            &plan,
            &DomOptions::default(),
            ExecMode::Compiled,
            &mut NoopObserver,
        )
    });
    let mb = bytes as f64 / (1 << 20) as f64;
    println!(
        "document: {mb:.1} MB, {} nodes; parse {} ({:.1} MB/s); //test -> {} answers in {}",
        doc.node_count(),
        fmt_duration(parse_d),
        mb / parse_d.as_secs_f64(),
        answers.len(),
        fmt_duration(query_d),
    );
    println!("memory: {}", doc.memory_summary());
    match peak_rss_mb() {
        Some(peak) => {
            // Budget: buffer + span tables + transient parse copies stay
            // well under 12x the serialized size (the old string-arena
            // DOM plus a separate raw copy trended far above this).
            let budget = mb * 12.0;
            println!("peak RSS: {peak:.0} MB (budget {budget:.0} MB)");
            assert!(
                peak <= budget,
                "peak RSS {peak:.0} MB exceeds budget {budget:.0} MB"
            );
        }
        None => println!("peak RSS: unavailable on this platform (check skipped)"),
    }
}

/// Peak resident set size of this process in MB (Linux `VmHWM`).
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// E1 (Fig. 3): policy -> derived view specification and view DTD.
fn e1() {
    println!("## E1  Fig. 3: automatic view derivation\n");
    let vocab = Vocabulary::new();
    let dtd = hospital::dtd(&vocab);
    let policy = AccessPolicy::parse(dtd.clone(), hospital::POLICY).unwrap();
    println!("--- access control policy S0 (Fig. 3(b)) ---");
    println!("{}", policy.to_policy_string());
    let spec = derive(&policy);
    println!("--- derived view specification sigma0 + view DTD (Fig. 3(c)/(d)) ---");
    println!("{}", spec.to_spec_string());
    println!("view DTD recursive: {}\n", spec.view_dtd().is_recursive());
}

/// E2 (Fig. 4 / §3 Rewriter): MFA size is linear in |Q|; the direct
/// syntactic rewriting explodes.
fn e2(quick: bool) {
    println!("## E2  Rewriting: MFA (linear) vs direct syntactic (exponential)\n");
    let setup = HospitalSetup::sample();
    let max_n = if quick { 4 } else { 6 };
    let mut table = Table::new(&[
        "closure depth n",
        "|Q|",
        "MFA size",
        "direct size",
        "direct/MFA",
        "rewrite time",
    ]);
    for n in 1..=max_n {
        let q = format!(
            "hospital/patient{}/treatment",
            "/(parent/patient)*[treatment]".repeat(n)
        );
        let path = parse_path(&q, &setup.vocab).unwrap();
        let (mfa, t) = time(|| rewrite(&path, &setup.spec));
        let mfa_size = mfa.stats().total();
        let direct_size = rewrite_direct(&path, &setup.spec)
            .map(|p| p.size())
            .unwrap_or(0);
        table.row(vec![
            n.to_string(),
            path.size().to_string(),
            mfa_size.to_string(),
            direct_size.to_string(),
            format!("{:.1}x", direct_size as f64 / mfa_size as f64),
            fmt_duration(t),
        ]);
    }
    println!("{}", table.render());
    // Fig. 4: the MFA of the paper's Q0.
    let q0 = parse_path(hospital::Q0, &setup.vocab).unwrap();
    let m0 = compile(&q0, &setup.vocab);
    println!("MFA M0 of the paper's Q0: {}", m0.stats());
    println!("after optimizer:          {}\n", optimize(&m0).stats());
}

/// E3 (§3 Evaluator): HyPE single pass vs two-pass vs naive navigation.
fn e3(quick: bool) {
    println!("## E3  Evaluation: HyPE vs two-pass vs naive ('Xalan-like')\n");
    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let mut table = Table::new(&[
        "nodes",
        "query",
        "HyPE",
        "two-pass",
        "naive",
        "|Cans|",
        "Cans/visited",
    ]);
    for &size in sizes {
        let setup = HospitalSetup::generated(42, size);
        let iters = if size <= 10_000 { 20 } else { 5 };
        for (name, q) in hospital::DOC_QUERIES {
            let path = parse_path(q, &setup.vocab).unwrap();
            let mfa = optimize(&compile(&path, &setup.vocab));
            let hype_t = time_mean(iters, || evaluate_mfa(&setup.doc, &mfa));
            let (answers, stats) = evaluate_mfa(&setup.doc, &mfa);
            let two_t = time_mean(iters, || evaluate_mfa_twopass_report(&setup.doc, &mfa));
            let naive_t = time_mean(iters.min(5), || naive_evaluate(&setup.doc, &path));
            // Sanity: all engines agree.
            let ((two_answers, _), _) = evaluate_mfa_twopass_report(&setup.doc, &mfa);
            assert_eq!(answers, two_answers, "engines disagree on {name}");
            table.row(vec![
                size.to_string(),
                name.to_string(),
                fmt_duration(hype_t),
                fmt_duration(two_t),
                fmt_duration(naive_t),
                stats.cans_size.to_string(),
                format!("{:.3}", stats.cans_ratio()),
            ]);
        }
    }
    println!("{}", table.render());
}

/// E4 (§2 XML documents): DOM mode vs StAX mode.
fn e4(quick: bool) {
    println!("## E4  DOM vs StAX (one sequential scan, bounded memory)\n");
    let sizes: &[usize] = if quick {
        &[10_000]
    } else {
        &[10_000, 100_000, 300_000]
    };
    let mut table = Table::new(&[
        "nodes",
        "query",
        "DOM eval",
        "stream eval (incl. parse)",
        "xml bytes",
        "peak buffered",
    ]);
    for &size in sizes {
        let vocab = Vocabulary::new();
        let dtd = hospital::dtd(&vocab);
        let config = hospital::generator_config(&vocab, 7, size);
        let mut xml_bytes: Vec<u8> = Vec::new();
        generate_to_writer(&dtd, &config, &mut xml_bytes).unwrap();
        let xml = String::from_utf8(xml_bytes).unwrap();
        let doc = Document::parse_str(&xml, &vocab).unwrap();
        for (name, q) in &hospital::DOC_QUERIES[..3] {
            let path = parse_path(q, &vocab).unwrap();
            let mfa = optimize(&compile(&path, &vocab));
            let iters = if size <= 10_000 { 10 } else { 3 };
            let dom_t = time_mean(iters, || evaluate_mfa(&doc, &mfa));
            let stream_t = time_mean(iters, || {
                evaluate_stream(xml.as_bytes(), &mfa, &vocab, StreamOptions::default()).unwrap()
            });
            let outcome = evaluate_stream(
                xml.as_bytes(),
                &mfa,
                &vocab,
                StreamOptions { want_xml: true },
            )
            .unwrap();
            // Stream answers match DOM answers.
            let (dom_answers, _) = evaluate_mfa(&doc, &mfa);
            assert_eq!(
                outcome.answers,
                dom_answers.iter().map(|n| n.0).collect::<Vec<_>>()
            );
            table.row(vec![
                size.to_string(),
                name.to_string(),
                fmt_duration(dom_t),
                fmt_duration(stream_t),
                xml.len().to_string(),
                outcome.peak_buffered_bytes.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
}

/// E5 (§3 Indexer): TAX on vs off; index build/persist costs.
fn e5(quick: bool) {
    println!("## E5  TAX index: pruning effect and build/persist costs\n");
    let size = if quick { 20_000 } else { 200_000 };
    let setup = HospitalSetup::generated(11, size);
    let (tax, build_t) = time(|| TaxIndex::build(&setup.doc));
    println!(
        "index build over {} nodes: {} ({} distinct sets, ~{} bytes in memory)",
        setup.doc.node_count(),
        fmt_duration(build_t),
        tax.distinct_sets(),
        tax.memory_bytes()
    );
    let mut buf = Vec::new();
    let (_, save_t) = time(|| tax.save(&mut buf, &setup.vocab).unwrap());
    let (loaded, load_t) = time(|| TaxIndex::load(&mut &buf[..], &setup.vocab).unwrap());
    println!(
        "persist: {} bytes on disk (save {}, load {})\n",
        buf.len(),
        fmt_duration(save_t),
        fmt_duration(load_t)
    );
    drop(loaded);

    let mut table = Table::new(&[
        "query",
        "no TAX",
        "with TAX",
        "speedup",
        "visited (no TAX)",
        "visited (TAX)",
        "TAX-pruned subtrees",
    ]);
    // Selective queries benefit; exhaustive ones are ~neutral.
    let queries = [
        ("descendant //test", "//test"),
        ("selective //parent/patient/pname", "//parent/patient/pname"),
        ("negation", "//treatment[not(test)]/medication"),
        ("exhaustive //patient", "//patient"),
    ];
    for (name, q) in queries {
        let path = parse_path(q, &setup.vocab).unwrap();
        let mfa = optimize(&compile(&path, &setup.vocab));
        let iters = if quick { 10 } else { 5 };
        let plain_opts = DomOptions::default();
        let tax_opts = DomOptions { tax: Some(&tax) };
        let t_plain = time_mean(iters, || {
            evaluate_mfa_with(&setup.doc, &mfa, &plain_opts, &mut NoopObserver)
        });
        let t_tax = time_mean(iters, || {
            evaluate_mfa_with(&setup.doc, &mfa, &tax_opts, &mut NoopObserver)
        });
        let (a_plain, s_plain) =
            evaluate_mfa_with(&setup.doc, &mfa, &plain_opts, &mut NoopObserver);
        let (a_tax, s_tax) = evaluate_mfa_with(&setup.doc, &mfa, &tax_opts, &mut NoopObserver);
        assert_eq!(a_plain, a_tax, "TAX changed answers for {name}");
        table.row(vec![
            name.to_string(),
            fmt_duration(t_plain),
            fmt_duration(t_tax),
            format!("{:.2}x", t_plain.as_secs_f64() / t_tax.as_secs_f64()),
            s_plain.nodes_visited.to_string(),
            s_tax.nodes_visited.to_string(),
            s_tax.subtrees_pruned_tax.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// E6 (§1/§2): virtual views (rewrite + HyPE) vs materialize-then-query.
fn e6(quick: bool) {
    println!("## E6  Virtual views vs materialization\n");
    let sizes: &[usize] = if quick { &[5_000] } else { &[5_000, 50_000] };
    let mut table = Table::new(&[
        "nodes",
        "view query",
        "virtual (rewrite+HyPE)",
        "virtual+TAX",
        "materialize+eval",
        "|V(T)| nodes",
        "answers",
    ]);
    for &size in sizes {
        let setup = HospitalSetup::generated(23, size);
        let tax = TaxIndex::build(&setup.doc);
        let iters = if size <= 5_000 { 10 } else { 3 };
        for (name, q) in hospital::VIEW_QUERIES {
            let path = parse_path(q, &setup.vocab).unwrap();
            let mfa = optimize(&rewrite(&path, &setup.spec));
            let t_virtual = time_mean(iters, || evaluate_mfa(&setup.doc, &mfa));
            let tax_opts = DomOptions { tax: Some(&tax) };
            let t_tax = time_mean(iters, || {
                evaluate_mfa_with(&setup.doc, &mfa, &tax_opts, &mut NoopObserver)
            });
            let (tax_answers, _) =
                evaluate_mfa_with(&setup.doc, &mfa, &tax_opts, &mut NoopObserver);
            let t_mat = time_mean(iters.min(3), || {
                let view = materialize(&setup.spec, &setup.doc).unwrap();
                naive_evaluate(&view.doc, &path)
            });
            // Correctness: Q'(T) == Q(V(T)).
            let (virtual_answers, _) = evaluate_mfa(&setup.doc, &mfa);
            let view = materialize(&setup.spec, &setup.doc).unwrap();
            let expected = view.origins_of(naive_evaluate(&view.doc, &path).iter());
            assert_eq!(
                virtual_answers.as_slice(),
                expected.as_slice(),
                "equivalence violated for {name}"
            );
            assert_eq!(
                tax_answers, virtual_answers,
                "TAX changed answers for {name}"
            );
            table.row(vec![
                size.to_string(),
                name.to_string(),
                fmt_duration(t_virtual),
                fmt_duration(t_tax),
                fmt_duration(t_mat),
                view.doc.node_count().to_string(),
                virtual_answers.len().to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    // The org workload as a control.
    let org = OrgSetup::generated(5, if quick { 5_000 } else { 20_000 });
    let mut t2 = Table::new(&["org view query", "virtual", "materialized", "answers"]);
    for (name, q) in smoqe::workloads::org::VIEW_QUERIES {
        let path = parse_path(q, &org.vocab).unwrap();
        let mfa = optimize(&rewrite(&path, &org.spec));
        let tv = time_mean(5, || evaluate_mfa(&org.doc, &mfa));
        let tm = time_mean(3, || {
            let view = materialize(&org.spec, &org.doc).unwrap();
            naive_evaluate(&view.doc, &path)
        });
        let (ans, _) = evaluate_mfa(&org.doc, &mfa);
        t2.row(vec![
            name.to_string(),
            fmt_duration(tv),
            fmt_duration(tm),
            ans.len().to_string(),
        ]);
    }
    println!("{}", t2.render());
}

/// `bench`: the machine-readable perf trajectory.
///
/// Writes `BENCH.json` in the current directory so successive PRs have a
/// comparable baseline: document size, stream throughput (serial vs
/// batched × compiled vs interpreted), DOM per-query latency, plan
/// (table) compilation time, and incremental TAX patch vs rebuild time.
/// Formatting is by hand — the workspace is offline and carries no serde.
fn bench_json(quick: bool) {
    println!("## bench  machine-readable perf trajectory (BENCH.json)\n");
    let target_nodes = if quick { 5_000 } else { 30_000 };
    let iters = if quick { 3 } else { 30 };
    // Sub-millisecond measurements need many more samples for the
    // minimum to reliably land on an interference-free run.
    let micro_iters = if quick { 10 } else { 300 };
    let vocab = Vocabulary::new();
    hospital::dtd(&vocab);
    let doc = hospital::generate_document(&vocab, 17, target_nodes);
    let xml = doc.to_xml();

    // The serving batch: 16 plans cycling the document workload.
    let plans: Vec<CompiledMfa> = (0..16)
        .map(|i| {
            let (_, q) = hospital::DOC_QUERIES[i % hospital::DOC_QUERIES.len()];
            let path = parse_path(q, &vocab).unwrap();
            CompiledMfa::compile(&optimize(&compile(&path, &vocab)))
        })
        .collect();
    let run_serial = |mode: ExecMode| {
        for plan in &plans {
            evaluate_stream_plan_with(
                xml.as_bytes(),
                plan,
                &vocab,
                StreamOptions::default(),
                mode,
                &mut NoopObserver,
            )
            .unwrap();
        }
    };
    let each: Vec<(&CompiledMfa, StreamOptions)> = plans
        .iter()
        .map(|p| (p, StreamOptions::default()))
        .collect();
    let run_batched = |mode: ExecMode| {
        evaluate_batch_stream_plans(xml.as_bytes(), &each, &vocab, mode).unwrap();
    };
    // Queries/second = plans per wall-clock second of the whole batch.
    let qps = |d: std::time::Duration| plans.len() as f64 / d.as_secs_f64();
    let serial_compiled = qps(time_min(iters, || run_serial(ExecMode::Compiled)));
    let serial_interpreted = qps(time_min(iters, || run_serial(ExecMode::Interpreted)));
    let batched_compiled = qps(time_min(iters, || run_batched(ExecMode::Compiled)));
    let batched_interpreted = qps(time_min(iters, || run_batched(ExecMode::Interpreted)));

    // DOM per-query latency over the document workload (mean of means).
    let dom_latency = |mode: ExecMode| {
        let total: f64 = plans
            .iter()
            .map(|plan| {
                time_min(iters, || {
                    evaluate_mfa_plan(&doc, plan, &DomOptions::default(), mode, &mut NoopObserver)
                })
                .as_secs_f64()
            })
            .sum();
        total / plans.len() as f64 * 1e6 // µs
    };
    let dom_compiled_us = dom_latency(ExecMode::Compiled);
    let dom_interpreted_us = dom_latency(ExecMode::Interpreted);

    // Plan-table compilation cost (what the plan cache amortizes).
    let q0 = parse_path(hospital::Q0, &vocab).unwrap();
    let m0 = optimize(&compile(&q0, &vocab));
    let compile_us = time_min(iters.max(10), || CompiledMfa::compile(&m0)).as_secs_f64() * 1e6;

    // Incremental index maintenance vs rebuild on one edit.
    let tax = TaxIndex::build(&doc);
    let fragment = Document::parse_str(
        "<patient><pname>Frag</pname><visit><treatment><test>blood</test></treatment>\
         <date>2006-01-01</date></visit></patient>",
        &vocab,
    )
    .unwrap();
    let (new_doc, span) =
        smoqe_xml::insert_fragment(&doc, doc.root(), smoqe_xml::SplicePlace::Into, &fragment)
            .unwrap();
    let patch_us = time_min(iters, || tax.patched(&new_doc, &span)).as_secs_f64() * 1e6;
    let rebuild_us = time_min(iters, || TaxIndex::build(&new_doc)).as_secs_f64() * 1e6;

    // Document build: parse-to-DOM throughput (the unified scanner into
    // the span arena) and the cost of deep-cloning a parsed snapshot
    // (span tables copy; the backing buffer is shared, not copied).
    let parsed = Document::parse_str(&xml, &vocab).unwrap();
    let parse_mb_per_s = {
        let d = time_min(iters, || Document::parse_str(&xml, &vocab).unwrap());
        xml.len() as f64 / (1024.0 * 1024.0) / d.as_secs_f64()
    };
    let snapshot_clone_us = time_min(iters.max(10), || parsed.clone()).as_secs_f64() * 1e6;

    // Jump-scan vs tree-walk DOM latency (both with the TAX index
    // available, so the comparison isolates navigation, not pruning
    // data), plus what the default auto heuristic actually picks.
    let plan_for = |q: &str| {
        let path = parse_path(q, &vocab).unwrap();
        CompiledMfa::compile(&optimize(&compile(&path, &vocab)))
    };
    let dom_mode_us = |q: &str, mode: ExecMode| -> f64 {
        let plan = plan_for(q);
        let opts = DomOptions { tax: Some(&tax) };
        time_min(micro_iters, || {
            evaluate_mfa_plan(&doc, &plan, &opts, mode, &mut NoopObserver)
        })
        .as_secs_f64()
            * 1e6
    };
    let auto_mode = |q: &str| -> ExecMode {
        // The same resolution the default engine config applies.
        let plan = plan_for(q);
        let threshold = EngineConfig::default().jump_selectivity;
        if smoqe_hype::jump_available(&doc, &plan, Some(&tax))
            && smoqe_hype::selectivity_estimate(&doc, &plan, Some(&tax))
                .measured()
                .is_some_and(|s| s <= threshold)
        {
            ExecMode::Jump
        } else {
            ExecMode::Compiled
        }
    };
    const SELECTIVE_Q: &str = "//test";
    const UNSELECTIVE_Q: &str = "//patient";
    let selective_scan_us = dom_mode_us(SELECTIVE_Q, ExecMode::Compiled);
    let selective_jump_us = dom_mode_us(SELECTIVE_Q, ExecMode::Jump);
    let selective_auto_us = dom_mode_us(SELECTIVE_Q, auto_mode(SELECTIVE_Q));
    let unselective_scan_us = dom_mode_us(UNSELECTIVE_Q, ExecMode::Compiled);
    let unselective_auto_us = dom_mode_us(UNSELECTIVE_Q, auto_mode(UNSELECTIVE_Q));

    // Predicated jump: a selective `text() = 'v'` query resolves through
    // the (label, value) posting lists — the scan walker still touches
    // the whole document. The point workload splices 32 unique-pname
    // patients in, so the measured posting lists have length 1.
    let point_doc = smoqe_bench::splice_unique_patients(&doc, &vocab, 32);
    let point_tax = TaxIndex::build(&point_doc);
    let point_mode_us = |q: &str, mode: ExecMode| -> f64 {
        let plan = plan_for(q);
        let opts = DomOptions {
            tax: Some(&point_tax),
        };
        time_min(micro_iters, || {
            evaluate_mfa_plan(&point_doc, &plan, &opts, mode, &mut NoopObserver)
        })
        .as_secs_f64()
            * 1e6
    };
    const PREDICATED_Q: &str = "//pname[. = 'U00']";
    let predicated_scan_us = point_mode_us(PREDICATED_Q, ExecMode::Compiled);
    let predicated_jump_us = point_mode_us(PREDICATED_Q, ExecMode::Jump);

    // The shared batch jump frontier: 32 selective point plans, swept
    // serially (threads = 1) so the number holds on a single-core host.
    let frontier_queries: Vec<String> = (0..32)
        .map(|i| {
            if i % 2 == 0 {
                format!("//patient[pname = 'U{i:02}']")
            } else {
                format!("//pname[. = 'U{i:02}']")
            }
        })
        .collect();
    let frontier_plans: Vec<CompiledMfa> = frontier_queries.iter().map(|q| plan_for(q)).collect();
    let frontier_refs: Vec<&CompiledMfa> = frontier_plans.iter().collect();
    let batch_jump_qps = {
        let d = time_min(micro_iters, || {
            evaluate_jump_frontier(&point_doc, &frontier_refs, &point_tax, 1)
        });
        frontier_refs.len() as f64 / d.as_secs_f64()
    };

    // Parallel DOM batch throughput: the same 16-query mix, serially
    // (one DOM query at a time) vs partitioned across worker threads
    // sharing one snapshot.
    let batch_queries: Vec<&str> = (0..16)
        .map(|i| hospital::DOC_QUERIES[i % hospital::DOC_QUERIES.len()].1)
        .collect();
    let engine_with = |threads: usize| {
        let engine = Engine::new(EngineConfig {
            eval_threads: threads,
            ..EngineConfig::default()
        });
        hospital::dtd(engine.vocabulary());
        let doc = hospital::generate_document(engine.vocabulary(), 17, target_nodes);
        engine.load_document_tree(doc).unwrap();
        engine.build_tax_index().unwrap();
        engine
    };
    let serial_dom_qps = {
        let engine = engine_with(1);
        let session = engine.session(User::Admin);
        for q in &batch_queries {
            session.query(q).unwrap(); // warm the plan cache
        }
        let d = time_min(iters, || {
            for q in &batch_queries {
                session.query(q).unwrap();
            }
        });
        batch_queries.len() as f64 / d.as_secs_f64()
    };
    let parallel_qps = |threads: usize| -> f64 {
        let engine = engine_with(threads);
        let session = engine.session(User::Admin);
        session.query_batch(&batch_queries).unwrap(); // warm the plan cache
        let d = time_min(iters, || session.query_batch(&batch_queries).unwrap());
        batch_queries.len() as f64 / d.as_secs_f64()
    };
    let threads2_qps = parallel_qps(2);
    let threads4_qps = parallel_qps(4);

    // The serving layer: a real TCP server on an ephemeral port under the
    // mixed traffic harness (hospital workload, admin + group sessions,
    // reads/batches/self-cancelling writes). Latencies are wire-level —
    // request written to response decoded — so they include framing,
    // admission, queueing, and evaluation.
    let (serving, serving_sessions) = {
        let engine = Engine::with_defaults();
        let doc = engine.open_document("wards");
        hospital::install_sample(&doc).expect("install hospital sample");
        let handle = Server::start(engine, ServerConfig::default()).expect("start bench server");
        let sessions = if quick { 16 } else { 64 };
        let requests = if quick { 10 } else { 50 };
        let config = TrafficConfig::hospital(handle.local_addr().to_string(), sessions, requests);
        let report = run_traffic(&config).expect("traffic harness");
        assert_eq!(
            report.protocol_errors, 0,
            "serving bench hit protocol errors"
        );
        handle.shutdown();
        handle.join();
        (report, sessions)
    };

    // Durability: the same end-to-end update measured on an in-memory vs
    // a write-ahead-logged engine (the delta is the WAL append), plus
    // cold crash-recovery speed over a WAL tail of logical records.
    let (update_mem_us, update_durable_us, recovery_records, recovery_ms) = {
        let mk = |durable: Option<&std::path::Path>| {
            let engine = match durable {
                Some(dir) => Engine::recover(
                    EngineConfig {
                        checkpoint_every: 0,
                        ..EngineConfig::default()
                    },
                    dir,
                )
                .unwrap(),
                None => Engine::with_defaults(),
            };
            engine.load_dtd(hospital::DTD).unwrap();
            let gen = hospital::generate_document(engine.vocabulary(), 17, target_nodes);
            engine.load_document_tree(gen).unwrap();
            engine.build_tax_index().unwrap();
            engine
                .update(
                    "insert <patient><pname>Bench</pname><visit><treatment>\
                     <medication>autism</medication></treatment><date>d</date></visit>\
                     </patient> into hospital",
                )
                .unwrap();
            engine
        };
        const REPLACE: &str =
            "replace hospital/patient[pname = 'Bench']/pname with <pname>Bench</pname>";
        // The two sides differ by one buffered WAL append (~µs) against a
        // multi-ms update, so measurement discipline matters more than
        // sample count: interleave the two engines round-by-round (two
        // back-to-back min-of-N loops see different allocator/cache
        // weather and have produced deltas of ±20% either way) and don't
        // let quick mode starve N.
        let iters = iters.max(20);
        let dur_dir = std::env::temp_dir().join(format!("smoqe-bench-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dur_dir);
        std::fs::create_dir_all(&dur_dir).unwrap();
        let mem = mk(None);
        let dur = mk(Some(&dur_dir));
        let mut mem_us = f64::INFINITY;
        let mut dur_us = f64::INFINITY;
        for _ in 0..iters {
            let t0 = std::time::Instant::now();
            mem.update(REPLACE).unwrap();
            mem_us = mem_us.min(t0.elapsed().as_secs_f64() * 1e6);
            let t0 = std::time::Instant::now();
            dur.update(REPLACE).unwrap();
            dur_us = dur_us.min(t0.elapsed().as_secs_f64() * 1e6);
        }
        drop(dur);
        let _ = std::fs::remove_dir_all(&dur_dir);

        // Cold recovery: checkpoint a small catalog, leave `records`
        // updates in the WAL tail, and time a fresh `Engine::recover`
        // (checkpoint load + security-revalidating replay + the
        // end-of-recovery checkpoint).
        let records = if quick { 100 } else { 1000 };
        let rec_dir = std::env::temp_dir().join(format!("smoqe-bench-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&rec_dir);
        std::fs::create_dir_all(&rec_dir).unwrap();
        let config = EngineConfig {
            checkpoint_every: 0,
            ..EngineConfig::default()
        };
        {
            let e = Engine::recover(config, &rec_dir).unwrap();
            e.load_dtd(hospital::DTD).unwrap();
            e.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
            e.build_tax_index().unwrap();
            e.checkpoint().unwrap();
            for i in 0..records {
                e.update(&format!(
                    "insert <patient><pname>R{i}</pname><visit><treatment>\
                     <medication>autism</medication></treatment><date>d</date></visit>\
                     </patient> into hospital"
                ))
                .unwrap();
            }
        }
        let t0 = std::time::Instant::now();
        let recovered = Engine::recover(config, &rec_dir).unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            recovered.recovery_epoch() >= 1,
            "recovery bench found no WAL tail"
        );
        drop(recovered);
        let _ = std::fs::remove_dir_all(&rec_dir);
        (mem_us, dur_us, records, ms)
    };

    let json = format!(
        "{{\n\
         \x20 \"schema\": 3,\n\
         \x20 \"workload\": {{\n\
         \x20   \"document\": \"hospital\",\n\
         \x20   \"nodes\": {nodes},\n\
         \x20   \"xml_bytes\": {bytes},\n\
         \x20   \"batch_plans\": {nplans},\n\
         \x20   \"quick\": {quick}\n\
         \x20 }},\n\
         \x20 \"stream_queries_per_sec\": {{\n\
         \x20   \"serial_compiled\": {serial_compiled:.1},\n\
         \x20   \"serial_interpreted\": {serial_interpreted:.1},\n\
         \x20   \"batched_compiled\": {batched_compiled:.1},\n\
         \x20   \"batched_interpreted\": {batched_interpreted:.1}\n\
         \x20 }},\n\
         \x20 \"dom_query_latency_us\": {{\n\
         \x20   \"compiled\": {dom_compiled_us:.2},\n\
         \x20   \"interpreted\": {dom_interpreted_us:.2}\n\
         \x20 }},\n\
         \x20 \"plan_table_compile_us\": {compile_us:.2},\n\
         \x20 \"doc_build\": {{\n\
         \x20   \"parse_mb_per_s\": {parse_mb_per_s:.1},\n\
         \x20   \"snapshot_clone_us\": {snapshot_clone_us:.2}\n\
         \x20 }},\n\
         \x20 \"jump_query_latency_us\": {{\n\
         \x20   \"selective_scan\": {selective_scan_us:.2},\n\
         \x20   \"selective_jump\": {selective_jump_us:.2},\n\
         \x20   \"selective_auto\": {selective_auto_us:.2},\n\
         \x20   \"unselective_scan\": {unselective_scan_us:.2},\n\
         \x20   \"unselective_auto\": {unselective_auto_us:.2}\n\
         \x20 }},\n\
         \x20 \"predicated_jump_latency_us\": {{\n\
         \x20   \"scan\": {predicated_scan_us:.2},\n\
         \x20   \"jump\": {predicated_jump_us:.2}\n\
         \x20 }},\n\
         \x20 \"batch_jump_qps\": {batch_jump_qps:.1},\n\
         \x20 \"parallel_batch_qps\": {{\n\
         \x20   \"serial_dom\": {serial_dom_qps:.1},\n\
         \x20   \"threads_2\": {threads2_qps:.1},\n\
         \x20   \"threads_4\": {threads4_qps:.1}\n\
         \x20 }},\n\
         \x20 \"tax_index_patch_us\": {{\n\
         \x20   \"incremental\": {patch_us:.2},\n\
         \x20   \"full_rebuild\": {rebuild_us:.2}\n\
         \x20 }},\n\
         \x20 \"serving_latency_us\": {{\n\
         \x20   \"sessions\": {serving_sessions},\n\
         \x20   \"p50\": {serve_p50},\n\
         \x20   \"p95\": {serve_p95},\n\
         \x20   \"p99\": {serve_p99},\n\
         \x20   \"qps\": {serve_qps:.1}\n\
         \x20 }},\n\
         \x20 \"recovery\": {{\n\
         \x20   \"update_us_in_memory\": {update_mem_us:.2},\n\
         \x20   \"update_us_durable\": {update_durable_us:.2},\n\
         \x20   \"wal_overhead_pct\": {wal_overhead_pct:.1},\n\
         \x20   \"replayed_records\": {recovery_records},\n\
         \x20   \"recovery_ms\": {recovery_ms:.1},\n\
         \x20   \"recovery_ms_per_10k_records\": {recovery_per_10k:.1}\n\
         \x20 }}\n\
         }}\n",
        nodes = doc.node_count(),
        bytes = xml.len(),
        nplans = plans.len(),
        serve_p50 = serving.overall.p50_us,
        serve_p95 = serving.overall.p95_us,
        serve_p99 = serving.overall.p99_us,
        serve_qps = serving.qps,
        wal_overhead_pct = (update_durable_us / update_mem_us - 1.0) * 100.0,
        recovery_per_10k = recovery_ms * 10_000.0 / recovery_records as f64,
    );
    std::fs::write("BENCH.json", &json).expect("write BENCH.json");
    println!("{json}");
    println!("wrote BENCH.json");
}

/// E7 (Figs. 4(b), 5, 6): the visual artifacts, in text form.
fn e7() {
    println!("## E7  Visualizations (iSMOQE substitute)\n");
    let setup = HospitalSetup::sample();
    let q0 = parse_path(hospital::Q0, &setup.vocab).unwrap();
    let m0 = compile(&q0, &setup.vocab);
    println!("--- Fig. 4: MFA M0 for Q0 ---");
    println!("{}", smoqe_viz::mfa_listing(&m0));
    println!("--- Fig. 5: HyPE evaluation of M0 on the sample document ---");
    let mut trace = smoqe_viz::TraceCollector::new();
    let tax = TaxIndex::build(&setup.doc);
    let opts = DomOptions { tax: Some(&tax) };
    evaluate_mfa_with(&setup.doc, &m0, &opts, &mut trace);
    println!("{}", smoqe_viz::annotated_tree(&setup.doc, &trace));
    println!("--- Fig. 6: TAX index on the sample document ---");
    println!("{}", tax.summary(&setup.vocab));
}
