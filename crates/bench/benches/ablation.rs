//! Ablations of SMOQE's design choices (DESIGN.md §3):
//!
//! * MFA optimizer on/off — effect of trimming/GC on rewritten automata;
//! * compiled (dense-table) execution vs per-event NFA interpretation of
//!   the same rewritten plans;
//! * guard-free closure fast path exercised vs predicate-heavy queries;
//! * compile+rewrite pipeline cost breakdown (including table
//!   compilation itself — the cost the plan cache amortizes away).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe_automata::compile::CompiledMfa;
use smoqe_automata::{compile, optimize::optimize};
use smoqe_bench::HospitalSetup;
use smoqe_hype::dom::{evaluate_mfa_plan, DomOptions};
use smoqe_hype::{ExecMode, NoopObserver};
use smoqe_rewrite::rewrite;
use smoqe_rxpath::parse_path;

fn bench_ablation(c: &mut Criterion) {
    let setup = HospitalSetup::generated(31, 20_000);
    let mut group = c.benchmark_group("ablation");

    // Optimizer on/off over rewritten (view) queries, where trimming
    // matters most: rewriting produces dead product states.
    let queries = [
        ("view_meds", "hospital/patient/treatment/medication"),
        (
            "view_closure",
            "hospital/patient/(parent/patient)*/treatment",
        ),
        (
            "view_pred",
            "hospital/patient[treatment/medication = 'autism']",
        ),
    ];
    for (name, q) in queries {
        let path = parse_path(q, &setup.vocab).unwrap();
        let raw = rewrite(&path, &setup.spec);
        let opt = optimize(&raw);
        // Plans are precompiled outside the timed loops (as the engine's
        // plan cache does) so each series isolates pure evaluation.
        let raw_plan = CompiledMfa::compile(&raw);
        let opt_plan = CompiledMfa::compile(&opt);
        group.bench_with_input(
            BenchmarkId::new("eval_unoptimized", name),
            &raw_plan,
            |b, p| {
                b.iter(|| {
                    evaluate_mfa_plan(
                        &setup.doc,
                        p,
                        &DomOptions::default(),
                        ExecMode::Compiled,
                        &mut NoopObserver,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("eval_optimized", name),
            &opt_plan,
            |b, p| {
                b.iter(|| {
                    evaluate_mfa_plan(
                        &setup.doc,
                        p,
                        &DomOptions::default(),
                        ExecMode::Compiled,
                        &mut NoopObserver,
                    )
                })
            },
        );
        // Dense-table execution vs NFA interpretation of the same plan.
        let plan = opt_plan;
        for (id, mode) in [
            ("eval_compiled", ExecMode::Compiled),
            ("eval_interpreted", ExecMode::Interpreted),
        ] {
            group.bench_with_input(BenchmarkId::new(id, name), &plan, |b, p| {
                b.iter(|| {
                    evaluate_mfa_plan(
                        &setup.doc,
                        p,
                        &DomOptions::default(),
                        mode,
                        &mut NoopObserver,
                    )
                })
            });
        }
    }

    // Pipeline costs: parse, compile, rewrite, optimize.
    let q0 = smoqe::workloads::hospital::Q0;
    group.bench_function("parse_q0", |b| {
        b.iter(|| parse_path(q0, &setup.vocab).unwrap())
    });
    let path = parse_path(q0, &setup.vocab).unwrap();
    group.bench_function("compile_q0", |b| b.iter(|| compile(&path, &setup.vocab)));
    let view_q = parse_path("hospital/patient/(parent/patient)*/treatment", &setup.vocab).unwrap();
    group.bench_function("rewrite_view_closure", |b| {
        b.iter(|| rewrite(&view_q, &setup.spec))
    });
    let rewritten = rewrite(&view_q, &setup.spec);
    group.bench_function("optimize_rewritten", |b| b.iter(|| optimize(&rewritten)));
    let optimized = optimize(&rewritten);
    group.bench_function("compile_tables_rewritten", |b| {
        b.iter(|| CompiledMfa::compile(&optimized))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
}
criterion_main!(benches);
