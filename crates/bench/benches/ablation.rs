//! Ablations of SMOQE's design choices (DESIGN.md §3):
//!
//! * MFA optimizer on/off — effect of trimming/GC on rewritten automata;
//! * guard-free closure fast path exercised vs predicate-heavy queries;
//! * compile+rewrite pipeline cost breakdown.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe_automata::{compile, optimize::optimize};
use smoqe_bench::HospitalSetup;
use smoqe_hype::evaluate_mfa;
use smoqe_rewrite::rewrite;
use smoqe_rxpath::parse_path;

fn bench_ablation(c: &mut Criterion) {
    let setup = HospitalSetup::generated(31, 20_000);
    let mut group = c.benchmark_group("ablation");

    // Optimizer on/off over rewritten (view) queries, where trimming
    // matters most: rewriting produces dead product states.
    let queries = [
        ("view_meds", "hospital/patient/treatment/medication"),
        (
            "view_closure",
            "hospital/patient/(parent/patient)*/treatment",
        ),
        (
            "view_pred",
            "hospital/patient[treatment/medication = 'autism']",
        ),
    ];
    for (name, q) in queries {
        let path = parse_path(q, &setup.vocab).unwrap();
        let raw = rewrite(&path, &setup.spec);
        let opt = optimize(&raw);
        group.bench_with_input(BenchmarkId::new("eval_unoptimized", name), &raw, |b, m| {
            b.iter(|| evaluate_mfa(&setup.doc, m))
        });
        group.bench_with_input(BenchmarkId::new("eval_optimized", name), &opt, |b, m| {
            b.iter(|| evaluate_mfa(&setup.doc, m))
        });
    }

    // Pipeline costs: parse, compile, rewrite, optimize.
    let q0 = smoqe::workloads::hospital::Q0;
    group.bench_function("parse_q0", |b| {
        b.iter(|| parse_path(q0, &setup.vocab).unwrap())
    });
    let path = parse_path(q0, &setup.vocab).unwrap();
    group.bench_function("compile_q0", |b| b.iter(|| compile(&path, &setup.vocab)));
    let view_q = parse_path("hospital/patient/(parent/patient)*/treatment", &setup.vocab).unwrap();
    group.bench_function("rewrite_view_closure", |b| {
        b.iter(|| rewrite(&view_q, &setup.spec))
    });
    let rewritten = rewrite(&view_q, &setup.spec);
    group.bench_function("optimize_rewritten", |b| b.iter(|| optimize(&rewritten)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
}
criterion_main!(benches);
