//! Incremental TAX maintenance vs full rebuild across update sizes.
//!
//! An accepted update patches the index for the edited id window plus the
//! splice point's ancestor chain; a rebuild re-runs the bottom-up pass
//! over the whole document. The gap is the point of incremental
//! maintenance: it should stay roughly flat in fragment size while the
//! rebuild pays the full document every time.
//!
//! ```text
//! cargo bench -p smoqe-bench --bench update_maintenance
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe::workloads::hospital;
use smoqe_tax::TaxIndex;
use smoqe_xml::{insert_fragment, Document, SplicePlace, Vocabulary};

/// A patient fragment with `visits` visits (3 nodes per visit + 3 for the
/// patient shell), parsed against `vocab`.
fn patient_fragment(vocab: &Vocabulary, visits: usize) -> Document {
    let mut xml = String::from("<patient><pname>Frag</pname>");
    for i in 0..visits {
        xml.push_str("<visit><treatment><medication>autism</medication></treatment>");
        xml.push_str(&format!("<date>2006-{:02}-01</date></visit>", (i % 12) + 1));
    }
    xml.push_str("</patient>");
    Document::parse_str(&xml, vocab).unwrap()
}

fn bench_update_maintenance(c: &mut Criterion) {
    let vocab = Vocabulary::new();
    hospital::dtd(&vocab);
    let doc = hospital::generate_document(&vocab, 42, 60_000);
    let tax = TaxIndex::build(&doc);

    let mut group = c.benchmark_group("update_maintenance");
    for visits in [1usize, 16, 128] {
        let fragment = patient_fragment(&vocab, visits);
        // The edit itself is shared by both strategies; precompute it so
        // the bench isolates pure index-maintenance cost.
        let (new_doc, span) =
            insert_fragment(&doc, doc.root(), SplicePlace::Into, &fragment).unwrap();
        let label = format!("{}-node-insert", fragment.node_count());
        group.bench_with_input(
            BenchmarkId::new("incremental_patch", &label),
            &new_doc,
            |b, nd| b.iter(|| tax.patched(nd, &span)),
        );
        group.bench_with_input(
            BenchmarkId::new("full_rebuild", &label),
            &new_doc,
            |b, nd| b.iter(|| TaxIndex::build(nd)),
        );
    }
    // End-to-end: one engine update (parse, resolve, splice, patch,
    // validate, install) on the big document. A replace keeps the
    // document size stable across iterations.
    group.bench_function("engine_update_end_to_end", |b| {
        let engine = smoqe::Engine::with_defaults();
        engine.load_dtd(hospital::DTD).unwrap();
        engine.load_document_tree(doc.clone()).unwrap();
        engine.build_tax_index().unwrap();
        engine
            .update(
                "insert <patient><pname>Bench</pname><visit><treatment>\
                 <medication>autism</medication></treatment><date>d</date></visit>\
                 </patient> into hospital",
            )
            .unwrap();
        b.iter(|| {
            engine
                .update("replace hospital/patient[pname = 'Bench']/pname with <pname>Bench</pname>")
                .unwrap()
        })
    });
    // The same update on a durable engine: the delta over the in-memory
    // number is the WAL append (serialize + CRC + buffered write, no
    // per-record fsync). The durability contract budgets this under 15%.
    group.bench_function("engine_update_end_to_end_durable", |b| {
        let dir = std::env::temp_dir().join(format!("smoqe-bench-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // checkpoint_every = 0 keeps periodic checkpoints (which
        // serialize the whole 60k-node document) out of the measurement:
        // this series isolates the per-update WAL append.
        let config = smoqe::EngineConfig {
            checkpoint_every: 0,
            ..smoqe::EngineConfig::default()
        };
        let engine = smoqe::Engine::recover(config, &dir).unwrap();
        engine.load_dtd(hospital::DTD).unwrap();
        engine.load_document_tree(doc.clone()).unwrap();
        engine.build_tax_index().unwrap();
        engine
            .update(
                "insert <patient><pname>Bench</pname><visit><treatment>\
                 <medication>autism</medication></treatment><date>d</date></visit>\
                 </patient> into hospital",
            )
            .unwrap();
        b.iter(|| {
            engine
                .update("replace hospital/patient[pname = 'Bench']/pname with <pname>Bench</pname>")
                .unwrap()
        });
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.finish();
}

criterion_group!(benches, bench_update_maintenance);
criterion_main!(benches);
