//! E5 (cost side): TAX construction, compression and persistence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe_bench::HospitalSetup;
use smoqe_tax::TaxIndex;

fn bench_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    for size in [10_000usize, 50_000] {
        let setup = HospitalSetup::generated(11, size);
        group.bench_with_input(BenchmarkId::new("build", size), &setup.doc, |b, doc| {
            b.iter(|| TaxIndex::build(doc))
        });
        let tax = TaxIndex::build(&setup.doc);
        group.bench_with_input(BenchmarkId::new("save", size), &tax, |b, t| {
            b.iter(|| {
                let mut buf = Vec::new();
                t.save(&mut buf, &setup.vocab).unwrap();
                buf
            })
        });
        let mut buf = Vec::new();
        tax.save(&mut buf, &setup.vocab).unwrap();
        group.bench_with_input(BenchmarkId::new("load", size), &buf, |b, data| {
            b.iter(|| TaxIndex::load(&mut &data[..], &setup.vocab).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_index
}
criterion_main!(benches);
