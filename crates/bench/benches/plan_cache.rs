//! Plan-cache benchmark: how much of a query's latency the shared plan
//! cache removes.
//!
//! `cold` forces the full parse → rewrite → compile → optimize pipeline on
//! every call (cache disabled); `warm` uses a default engine where every
//! call after the first is a cache hit. The gap is the per-query planning
//! cost the catalog amortizes across a serving workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe::workloads::hospital;
use smoqe::{DocHandle, Engine, EngineConfig, User};

fn prepared_document(config: EngineConfig) -> DocHandle {
    let engine = Engine::new(config);
    let doc = engine.open_document("bench");
    doc.load_dtd(hospital::DTD).unwrap();
    doc.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    doc.register_policy("g", hospital::POLICY).unwrap();
    doc
}

fn bench_plan_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_cache");
    let cold = prepared_document(EngineConfig {
        plan_cache_capacity: 0,
        ..EngineConfig::default()
    });
    let warm = prepared_document(EngineConfig::default());
    let user = User::Group("g".into());

    for (name, query) in hospital::VIEW_QUERIES {
        group.bench_with_input(BenchmarkId::new("cold", name), query, |b, q| {
            b.iter(|| cold.plan(&user, q).unwrap())
        });
        // Prime once, then every iteration is a hit.
        warm.plan(&user, query).unwrap();
        group.bench_with_input(BenchmarkId::new("warm", name), query, |b, q| {
            b.iter(|| warm.plan(&user, q).unwrap())
        });
    }

    group.bench_function("end_to_end_query_cold", |b| {
        let session = cold.session(User::Group("g".into()));
        b.iter(|| session.query(hospital::VIEW_QUERIES[0].1).unwrap())
    });
    group.bench_function("end_to_end_query_warm", |b| {
        let session = warm.session(User::Group("g".into()));
        b.iter(|| session.query(hospital::VIEW_QUERIES[0].1).unwrap())
    });
    group.finish();

    let metrics = warm.engine().cache_metrics();
    println!(
        "plan_cache: warm engine saw {} hits / {} misses ({}% hit rate)",
        metrics.hits,
        metrics.misses,
        (metrics.hit_rate() * 100.0).round()
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_plan_cache
}
criterion_main!(benches);
