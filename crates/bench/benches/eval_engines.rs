//! E3: HyPE vs the two-pass baseline vs naive navigation.
//!
//! The paper's evaluator claim: one top-down pass + a Cans pass beats
//! bottom-up+top-down tree-automata evaluation and per-node navigation
//! ("outperforms popular XPath engines such as Xalan").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe::workloads::hospital;
use smoqe_automata::{compile, optimize::optimize};
use smoqe_bench::HospitalSetup;
use smoqe_hype::{evaluate_mfa, evaluate_mfa_twopass};
use smoqe_rxpath::{evaluate as naive, parse_path};

fn bench_engines(c: &mut Criterion) {
    let setup = HospitalSetup::generated(42, 20_000);
    let mut group = c.benchmark_group("eval_engines");
    for (name, q) in hospital::DOC_QUERIES {
        let path = parse_path(q, &setup.vocab).unwrap();
        let mfa = optimize(&compile(&path, &setup.vocab));
        group.bench_with_input(BenchmarkId::new("hype", name), &mfa, |b, m| {
            b.iter(|| evaluate_mfa(&setup.doc, m))
        });
        group.bench_with_input(BenchmarkId::new("twopass", name), &mfa, |b, m| {
            b.iter(|| evaluate_mfa_twopass(&setup.doc, m))
        });
        group.bench_with_input(BenchmarkId::new("naive", name), &path, |b, p| {
            b.iter(|| naive(&setup.doc, p))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines
}
criterion_main!(benches);
