//! E3: HyPE vs the two-pass baseline vs naive navigation — plus the
//! compiled-plan ablation.
//!
//! The paper's evaluator claim: one top-down pass + a Cans pass beats
//! bottom-up+top-down tree-automata evaluation and per-node navigation
//! ("outperforms popular XPath engines such as Xalan"). On top of that,
//! `dom_compiled` / `dom_interpreted` and `stream_compiled` /
//! `stream_interpreted` isolate what the dense-table compilation layer
//! (`smoqe_automata::compile`) buys over per-event NFA interpretation when
//! the plan is precompiled once, as the engine's plan cache does.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe::workloads::hospital;
use smoqe_automata::compile::CompiledMfa;
use smoqe_automata::{compile, optimize::optimize};
use smoqe_bench::HospitalSetup;
use smoqe_hype::dom::{evaluate_mfa_plan, DomOptions};
use smoqe_hype::stream::{evaluate_stream_plan_with, StreamOptions};
use smoqe_hype::{evaluate_mfa, evaluate_mfa_twopass, ExecMode, NoopObserver};
use smoqe_rxpath::{evaluate as naive, parse_path};

fn bench_engines(c: &mut Criterion) {
    let setup = HospitalSetup::generated(42, 20_000);
    let xml = setup.doc.to_xml();
    let mut group = c.benchmark_group("eval_engines");
    for (name, q) in hospital::DOC_QUERIES {
        let path = parse_path(q, &setup.vocab).unwrap();
        let mfa = optimize(&compile(&path, &setup.vocab));
        let plan = CompiledMfa::compile(&mfa);
        // `hype` times the convenience API, which compiles the plan on
        // the fly per call (as PR-3's `Machine::new` re-ran the per-plan
        // analyses per call) — what an uncached caller pays. The
        // `dom_*`/`stream_*` series below precompile once, as the
        // engine's plan cache does.
        group.bench_with_input(BenchmarkId::new("hype", name), &mfa, |b, m| {
            b.iter(|| evaluate_mfa(&setup.doc, m))
        });
        for (id, mode) in [
            ("dom_compiled", ExecMode::Compiled),
            ("dom_interpreted", ExecMode::Interpreted),
        ] {
            group.bench_with_input(BenchmarkId::new(id, name), &plan, |b, p| {
                b.iter(|| {
                    evaluate_mfa_plan(
                        &setup.doc,
                        p,
                        &DomOptions::default(),
                        mode,
                        &mut NoopObserver,
                    )
                })
            });
        }
        for (id, mode) in [
            ("stream_compiled", ExecMode::Compiled),
            ("stream_interpreted", ExecMode::Interpreted),
        ] {
            group.bench_with_input(BenchmarkId::new(id, name), &plan, |b, p| {
                b.iter(|| {
                    evaluate_stream_plan_with(
                        xml.as_bytes(),
                        p,
                        &setup.vocab,
                        StreamOptions::default(),
                        mode,
                        &mut NoopObserver,
                    )
                    .unwrap()
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("twopass", name), &mfa, |b, m| {
            b.iter(|| evaluate_mfa_twopass(&setup.doc, m))
        });
        group.bench_with_input(BenchmarkId::new("naive", name), &path, |b, p| {
            b.iter(|| naive(&setup.doc, p))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines
}
criterion_main!(benches);
