//! E5: effect of the TAX index on evaluation.
//!
//! TAX prunes subtrees that cannot contain required labels — effective
//! "with or without //" on selective queries, neutral on exhaustive ones.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe_automata::{compile, optimize::optimize};
use smoqe_bench::HospitalSetup;
use smoqe_hype::dom::{evaluate_mfa_with, DomOptions};
use smoqe_hype::NoopObserver;
use smoqe_rxpath::parse_path;
use smoqe_tax::TaxIndex;

fn bench_tax(c: &mut Criterion) {
    let setup = HospitalSetup::generated(11, 50_000);
    let tax = TaxIndex::build(&setup.doc);
    let queries = [
        ("selective", "//parent/patient/pname"),
        ("descendant", "//test"),
        ("negation", "//treatment[not(test)]/medication"),
        ("exhaustive", "//patient"),
    ];
    let mut group = c.benchmark_group("tax_pruning");
    for (name, q) in queries {
        let path = parse_path(q, &setup.vocab).unwrap();
        let mfa = optimize(&compile(&path, &setup.vocab));
        group.bench_with_input(BenchmarkId::new("no_tax", name), &mfa, |b, m| {
            let opts = DomOptions::default();
            b.iter(|| evaluate_mfa_with(&setup.doc, m, &opts, &mut NoopObserver))
        });
        group.bench_with_input(BenchmarkId::new("with_tax", name), &mfa, |b, m| {
            let opts = DomOptions { tax: Some(&tax) };
            b.iter(|| evaluate_mfa_with(&setup.doc, m, &opts, &mut NoopObserver))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tax
}
criterion_main!(benches);
