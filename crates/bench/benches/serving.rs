//! Multi-threaded serving benchmark: one engine, many concurrent
//! sessions.
//!
//! Models the paper's Fig. 1 deployment — a population of user-group
//! members firing view queries at a shared engine — and measures total
//! wall-clock for a fixed batch of queries at increasing thread counts.
//! Owned `Send + Sync` sessions and snapshot-based evaluation mean the
//! threads share nothing hot but the plan cache, so the batch should
//! scale with cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe::workloads::hospital;
use smoqe::{Engine, Session, User};
use std::sync::Arc;

const QUERIES_PER_BATCH: usize = 64;

fn serving_sessions() -> Vec<Session> {
    let engine = Engine::with_defaults();
    let doc = engine.open_document("hospital");
    doc.load_dtd(hospital::DTD).unwrap();
    let tree = hospital::generate_document(engine.vocabulary(), 11, 5_000);
    doc.load_document_tree(tree).unwrap();
    doc.build_tax_index().unwrap();
    doc.register_policy("researchers", hospital::POLICY)
        .unwrap();
    vec![
        doc.session(User::Group("researchers".into())),
        doc.session(User::Admin),
    ]
}

/// Runs `QUERIES_PER_BATCH` queries spread over `threads` worker threads.
fn run_batch(sessions: &[Session], threads: usize) -> usize {
    let work: Vec<(Session, &str)> = (0..QUERIES_PER_BATCH)
        .map(|i| {
            let session = sessions[i % sessions.len()].clone();
            let queries = match session.user() {
                User::Admin => hospital::DOC_QUERIES,
                User::Group(_) => hospital::VIEW_QUERIES,
            };
            (session, queries[i % queries.len()].1)
        })
        .collect();
    let work = Arc::new(work);
    let next = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..threads {
        let work = work.clone();
        let next = next.clone();
        handles.push(std::thread::spawn(move || {
            let mut answered = 0usize;
            loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some((session, query)) = work.get(i) else {
                    return answered;
                };
                answered += session.query(query).unwrap().len();
            }
        }));
    }
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

fn bench_serving(c: &mut Criterion) {
    let sessions = serving_sessions();
    // Correctness guard: every thread count must produce the same total.
    let reference = run_batch(&sessions, 1);
    let mut group = c.benchmark_group("serving");
    for threads in [1usize, 2, 4, 8] {
        assert_eq!(run_batch(&sessions, threads), reference);
        group.bench_with_input(
            BenchmarkId::new("batch64", threads),
            &threads,
            |b, &threads| b.iter(|| run_batch(&sessions, threads)),
        );
    }
    group.finish();

    let metrics = sessions[0].engine().cache_metrics();
    println!(
        "serving: plan cache {} hits / {} misses over all batches",
        metrics.hits, metrics.misses
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serving
}
criterion_main!(benches);
