//! Jump-scan vs tree-walk DOM evaluation, and the parallel DOM batch.
//!
//! The jump driver visits O(candidate) nodes by hopping between label
//! occurrences, so selective queries should collapse from hundreds of µs
//! to tens; exhaustive queries stay with the scan walker's constants
//! (which is exactly what auto mode encodes). The `parallel_batch` group
//! measures a DOM query batch partitioned across worker threads sharing
//! one snapshot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe::workloads::hospital;
use smoqe::{Engine, EngineConfig, User};
use smoqe_automata::compile::CompiledMfa;
use smoqe_automata::{compile, optimize::optimize};
use smoqe_bench::HospitalSetup;
use smoqe_hype::dom::{evaluate_mfa_plan, DomOptions};
use smoqe_hype::{ExecMode, NoopObserver};
use smoqe_rxpath::parse_path;
use smoqe_tax::TaxIndex;

fn bench_jump(c: &mut Criterion) {
    let setup = HospitalSetup::generated(11, 50_000);
    let tax = TaxIndex::build(&setup.doc);
    let queries = [
        ("selective", "//parent/patient/pname"),
        ("descendant", "//test"),
        ("exhaustive", "//patient"),
    ];
    let mut group = c.benchmark_group("jump_scan");
    for (name, q) in queries {
        let path = parse_path(q, &setup.vocab).unwrap();
        let plan = CompiledMfa::compile(&optimize(&compile(&path, &setup.vocab)));
        for (mode_name, mode) in [("scan", ExecMode::Compiled), ("jump", ExecMode::Jump)] {
            group.bench_with_input(BenchmarkId::new(mode_name, name), &plan, |b, plan| {
                let opts = DomOptions { tax: Some(&tax) };
                b.iter(|| evaluate_mfa_plan(&setup.doc, plan, &opts, mode, &mut NoopObserver))
            });
        }
    }
    group.finish();
}

fn bench_parallel_batch(c: &mut Criterion) {
    let queries: Vec<&str> = hospital::DOC_QUERIES.iter().map(|(_, q)| *q).collect();
    let mut group = c.benchmark_group("parallel_batch");
    for threads in [2usize, 4] {
        let engine = Engine::new(EngineConfig {
            eval_threads: threads,
            ..EngineConfig::default()
        });
        hospital::dtd(engine.vocabulary());
        let doc = hospital::generate_document(engine.vocabulary(), 17, 30_000);
        engine.load_document_tree(doc).unwrap();
        engine.build_tax_index().unwrap();
        let session = engine.session(User::Admin);
        group.bench_with_input(
            BenchmarkId::new("dom_batch", threads),
            &session,
            |b, session| b.iter(|| session.query_batch(&queries).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_jump, bench_parallel_batch
}
criterion_main!(benches);
