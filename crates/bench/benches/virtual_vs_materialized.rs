//! E6: answering queries on virtual views (rewrite + HyPE) vs
//! materializing the view and evaluating on it — the paper's headline
//! scenario ("prohibitively expensive to materialize and maintain a large
//! number of views").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe::workloads::hospital;
use smoqe_automata::optimize::optimize;
use smoqe_bench::HospitalSetup;
use smoqe_hype::evaluate_mfa;
use smoqe_rewrite::rewrite;
use smoqe_rxpath::{evaluate as naive, parse_path};
use smoqe_view::materialize;

fn bench_virtual(c: &mut Criterion) {
    let setup = HospitalSetup::generated(23, 20_000);
    let mut group = c.benchmark_group("virtual_vs_materialized");
    for (name, q) in hospital::VIEW_QUERIES {
        let path = parse_path(q, &setup.vocab).unwrap();
        let mfa = optimize(&rewrite(&path, &setup.spec));
        group.bench_with_input(BenchmarkId::new("virtual", name), &mfa, |b, m| {
            b.iter(|| evaluate_mfa(&setup.doc, m))
        });
        group.bench_with_input(BenchmarkId::new("materialize", name), &path, |b, p| {
            b.iter(|| {
                let view = materialize(&setup.spec, &setup.doc).unwrap();
                naive(&view.doc, p)
            })
        });
        // Pre-materialized (amortized) evaluation, for fairness.
        let view = materialize(&setup.spec, &setup.doc).unwrap();
        group.bench_with_input(BenchmarkId::new("premat_eval", name), &path, |b, p| {
            b.iter(|| naive(&view.doc, p))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_virtual
}
criterion_main!(benches);
