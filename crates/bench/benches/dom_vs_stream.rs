//! E4: DOM mode vs StAX mode.
//!
//! StAX mode needs one sequential scan and O(depth + candidates) memory;
//! DOM mode pays tree construction but can skip subtrees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe::workloads::hospital;
use smoqe_automata::{compile, optimize::optimize};
use smoqe_hype::evaluate_mfa;
use smoqe_hype::stream::{evaluate_stream, StreamOptions};
use smoqe_rxpath::parse_path;
use smoqe_xml::{generate_to_writer, Document, Vocabulary};

fn bench_modes(c: &mut Criterion) {
    let vocab = Vocabulary::new();
    let dtd = hospital::dtd(&vocab);
    let config = hospital::generator_config(&vocab, 7, 50_000);
    let mut xml = Vec::new();
    generate_to_writer(&dtd, &config, &mut xml).unwrap();
    let xml = String::from_utf8(xml).unwrap();
    let doc = Document::parse_str(&xml, &vocab).unwrap();

    let mut group = c.benchmark_group("dom_vs_stream");
    for (name, q) in &hospital::DOC_QUERIES[..4] {
        let path = parse_path(q, &vocab).unwrap();
        let mfa = optimize(&compile(&path, &vocab));
        group.bench_with_input(BenchmarkId::new("dom_eval", name), &mfa, |b, m| {
            b.iter(|| evaluate_mfa(&doc, m))
        });
        group.bench_with_input(BenchmarkId::new("stream_eval", name), &mfa, |b, m| {
            b.iter(|| evaluate_stream(xml.as_bytes(), m, &vocab, StreamOptions::default()).unwrap())
        });
    }
    // The parse cost DOM mode pays up front.
    group.bench_function("dom_parse_only", |b| {
        b.iter(|| Document::parse_str(&xml, &vocab).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_modes
}
criterion_main!(benches);
