//! Predicated jump-scan: guarded plans navigating by value posting
//! lists, and the shared batch jump frontier.
//!
//! A `text() = 'v'` predicate narrows the jump trigger from a label's
//! full occurrence list to the (label, value) posting list, so a
//! selective predicated query probes only the nodes that can possibly
//! answer — the scan walker still touches the whole document. The
//! workload splices patients with globally unique pname values into the
//! generated document: their posting lists have length 1, so point
//! queries collapse to a handful of probes (the `common` cases keep the
//! generator's pooled values for contrast). The `jump_frontier` group
//! measures a batch of 32 point plans merged into one shared ascending
//! frontier: the whole batch should cost little more than one compiled
//! scan, because every plan hops straight to its few candidates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe_automata::compile::CompiledMfa;
use smoqe_automata::{compile, optimize::optimize};
use smoqe_bench::HospitalSetup;
use smoqe_hype::dom::{evaluate_mfa_plan, DomOptions};
use smoqe_hype::{evaluate_jump_frontier, ExecMode, NoopObserver};
use smoqe_rxpath::parse_path;
use smoqe_tax::TaxIndex;
use smoqe_xml::Vocabulary;

fn plan_for(q: &str, vocab: &Vocabulary) -> CompiledMfa {
    CompiledMfa::compile(&optimize(&compile(&parse_path(q, vocab).unwrap(), vocab)))
}

/// 32 selective point queries, one per spliced unique pname: every plan
/// resolves through a value posting list of length 1.
fn batch_queries() -> Vec<String> {
    (0..32)
        .map(|i| {
            if i % 2 == 0 {
                format!("//patient[pname = 'U{i:02}']")
            } else {
                format!("//pname[. = 'U{i:02}']")
            }
        })
        .collect()
}

fn bench_predicated(c: &mut Criterion) {
    let mut setup = HospitalSetup::generated(11, 30_000);
    setup.with_unique_patients(32);
    let tax = TaxIndex::build(&setup.doc);
    let queries = [
        ("self_text", "//pname[. = 'U00']"),
        ("child_text", "//patient[pname = 'U17']"),
        ("common_self_text", "//medication[. = 'autism']"),
        (
            "common_nested",
            "//visit[treatment/medication = 'flu']/date",
        ),
    ];
    let mut group = c.benchmark_group("predicated_jump");
    for (name, q) in queries {
        let plan = plan_for(q, &setup.vocab);
        for (mode_name, mode) in [("scan", ExecMode::Compiled), ("jump", ExecMode::Jump)] {
            group.bench_with_input(BenchmarkId::new(mode_name, name), &plan, |b, plan| {
                let opts = DomOptions { tax: Some(&tax) };
                b.iter(|| evaluate_mfa_plan(&setup.doc, plan, &opts, mode, &mut NoopObserver))
            });
        }
    }
    group.finish();
}

fn bench_frontier(c: &mut Criterion) {
    let mut setup = HospitalSetup::generated(11, 30_000);
    setup.with_unique_patients(32);
    let tax = TaxIndex::build(&setup.doc);
    let queries = batch_queries();
    let plans: Vec<CompiledMfa> = queries.iter().map(|q| plan_for(q, &setup.vocab)).collect();
    let refs: Vec<&CompiledMfa> = plans.iter().collect();
    let mut group = c.benchmark_group("jump_frontier");
    // One full compiled scan, the yardstick the frontier batch is
    // measured against (the whole 32-plan batch should stay within ~2×).
    let scan_plan = plan_for("//test", &setup.vocab);
    group.bench_function("one_compiled_scan", |b| {
        let opts = DomOptions { tax: Some(&tax) };
        b.iter(|| {
            evaluate_mfa_plan(
                &setup.doc,
                &scan_plan,
                &opts,
                ExecMode::Compiled,
                &mut NoopObserver,
            )
        })
    });
    for threads in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::new("batch32", threads),
            &threads,
            |b, &threads| b.iter(|| evaluate_jump_frontier(&setup.doc, &refs, &tax, threads)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_predicated, bench_frontier
}
criterion_main!(benches);
