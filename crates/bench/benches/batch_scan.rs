//! Batched vs serial streaming: how much does sharing the document scan
//! save when a whole query batch targets one document?
//!
//! Serial streaming costs one full parse per query; the batched driver
//! feeds every pull-parser event to all machines, so the batch costs one
//! parse total plus the (shared) automaton work. The gap widens with
//! batch size — this is the serving-scale story of the paper's one-scan
//! property. The `*_interp` series run the same precompiled plans through
//! the per-event NFA interpreter, isolating the dense-table compilation
//! win in the shared-scan hot loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe::workloads::hospital;
use smoqe_automata::compile::CompiledMfa;
use smoqe_automata::{compile, Mfa};
use smoqe_hype::batch::evaluate_batch_stream_plans;
use smoqe_hype::stream::{evaluate_stream_plan_with, StreamOptions};
use smoqe_hype::{ExecMode, NoopObserver};
use smoqe_xml::Vocabulary;

fn setup(target_nodes: usize) -> (Vocabulary, String, Vec<Mfa>) {
    let vocab = Vocabulary::new();
    hospital::dtd(&vocab);
    let doc = hospital::generate_document(&vocab, 17, target_nodes);
    let xml = doc.to_xml();
    // 32 plans cycling through the workload queries.
    let mfas: Vec<Mfa> = (0..32)
        .map(|i| {
            let (_, q) = hospital::DOC_QUERIES[i % hospital::DOC_QUERIES.len()];
            let path = smoqe_rxpath::parse_path(q, &vocab).unwrap();
            compile(&path, &vocab)
        })
        .collect();
    (vocab, xml, mfas)
}

fn run_serial(xml: &str, plans: &[&CompiledMfa], vocab: &Vocabulary, mode: ExecMode) -> usize {
    plans
        .iter()
        .map(|plan| {
            evaluate_stream_plan_with(
                xml.as_bytes(),
                plan,
                vocab,
                StreamOptions::default(),
                mode,
                &mut NoopObserver,
            )
            .unwrap()
            .answers
            .len()
        })
        .sum()
}

fn run_batched(xml: &str, plans: &[&CompiledMfa], vocab: &Vocabulary, mode: ExecMode) -> usize {
    let each: Vec<(&CompiledMfa, StreamOptions)> = plans
        .iter()
        .map(|&p| (p, StreamOptions::default()))
        .collect();
    evaluate_batch_stream_plans(xml.as_bytes(), &each, vocab, mode)
        .unwrap()
        .outcomes
        .iter()
        .map(|o| o.answers.len())
        .sum()
}

fn bench_batch_scan(c: &mut Criterion) {
    let (vocab, xml, mfas) = setup(30_000);
    let compiled: Vec<CompiledMfa> = mfas.iter().map(CompiledMfa::compile).collect();
    let mut group = c.benchmark_group("batch_scan");
    for batch_size in [1usize, 4, 8, 16, 32] {
        let plans: Vec<&CompiledMfa> = compiled.iter().take(batch_size).collect();
        // Correctness guard: neither batching nor the execution mode may
        // change any answer.
        let reference = run_serial(&xml, &plans, &vocab, ExecMode::Compiled);
        for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
            assert_eq!(
                reference,
                run_batched(&xml, &plans, &vocab, mode),
                "batched answers diverged at batch size {batch_size} ({mode:?})"
            );
        }
        assert_eq!(
            reference,
            run_serial(&xml, &plans, &vocab, ExecMode::Interpreted),
            "interpreted answers diverged at batch size {batch_size}"
        );
        group.bench_with_input(
            BenchmarkId::new("serial", batch_size),
            &batch_size,
            |b, _| b.iter(|| run_serial(&xml, &plans, &vocab, ExecMode::Compiled)),
        );
        group.bench_with_input(
            BenchmarkId::new("batched", batch_size),
            &batch_size,
            |b, _| b.iter(|| run_batched(&xml, &plans, &vocab, ExecMode::Compiled)),
        );
        group.bench_with_input(
            BenchmarkId::new("serial_interp", batch_size),
            &batch_size,
            |b, _| b.iter(|| run_serial(&xml, &plans, &vocab, ExecMode::Interpreted)),
        );
        group.bench_with_input(
            BenchmarkId::new("batched_interp", batch_size),
            &batch_size,
            |b, _| b.iter(|| run_batched(&xml, &plans, &vocab, ExecMode::Interpreted)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch_scan
}
criterion_main!(benches);
