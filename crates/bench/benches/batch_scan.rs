//! Batched vs serial streaming: how much does sharing the document scan
//! save when a whole query batch targets one document?
//!
//! Serial streaming costs one full parse per query; the batched driver
//! feeds every pull-parser event to all machines, so the batch costs one
//! parse total plus the (shared) automaton work. The gap widens with
//! batch size — this is the serving-scale story of the paper's one-scan
//! property.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe::workloads::hospital;
use smoqe_automata::{compile, Mfa};
use smoqe_hype::batch::evaluate_batch_stream_str;
use smoqe_hype::stream::{evaluate_stream_str, StreamOptions};
use smoqe_xml::Vocabulary;

fn setup(target_nodes: usize) -> (Vocabulary, String, Vec<Mfa>) {
    let vocab = Vocabulary::new();
    hospital::dtd(&vocab);
    let doc = hospital::generate_document(&vocab, 17, target_nodes);
    let xml = doc.to_xml();
    // 32 plans cycling through the workload queries.
    let mfas: Vec<Mfa> = (0..32)
        .map(|i| {
            let (_, q) = hospital::DOC_QUERIES[i % hospital::DOC_QUERIES.len()];
            let path = smoqe_rxpath::parse_path(q, &vocab).unwrap();
            compile(&path, &vocab)
        })
        .collect();
    (vocab, xml, mfas)
}

fn run_serial(xml: &str, plans: &[&Mfa], vocab: &Vocabulary) -> usize {
    plans
        .iter()
        .map(|mfa| {
            evaluate_stream_str(xml, mfa, vocab, StreamOptions::default())
                .unwrap()
                .answers
                .len()
        })
        .sum()
}

fn run_batched(xml: &str, plans: &[&Mfa], vocab: &Vocabulary) -> usize {
    evaluate_batch_stream_str(xml, plans, vocab, StreamOptions::default())
        .unwrap()
        .outcomes
        .iter()
        .map(|o| o.answers.len())
        .sum()
}

fn bench_batch_scan(c: &mut Criterion) {
    let (vocab, xml, mfas) = setup(30_000);
    let mut group = c.benchmark_group("batch_scan");
    for batch_size in [1usize, 4, 8, 16, 32] {
        let plans: Vec<&Mfa> = mfas.iter().take(batch_size).collect();
        // Correctness guard: batching must not change any answer.
        assert_eq!(
            run_serial(&xml, &plans, &vocab),
            run_batched(&xml, &plans, &vocab),
            "batched answers diverged at batch size {batch_size}"
        );
        group.bench_with_input(
            BenchmarkId::new("serial", batch_size),
            &batch_size,
            |b, _| b.iter(|| run_serial(&xml, &plans, &vocab)),
        );
        group.bench_with_input(
            BenchmarkId::new("batched", batch_size),
            &batch_size,
            |b, _| b.iter(|| run_batched(&xml, &plans, &vocab)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch_scan
}
criterion_main!(benches);
