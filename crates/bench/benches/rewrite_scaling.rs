//! E2: rewriting cost and output size vs query size.
//!
//! Regenerates the paper's claim that the MFA characterization of the
//! rewritten query is linear in |Q| while the syntactic representation
//! explodes (§3, "Rewriter").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smoqe_bench::HospitalSetup;
use smoqe_rewrite::{rewrite, rewrite_direct};
use smoqe_rxpath::parse_path;

fn query_of_depth(n: usize) -> String {
    format!(
        "hospital/patient{}/treatment",
        "/(parent/patient)*[treatment]".repeat(n)
    )
}

fn bench_rewrite(c: &mut Criterion) {
    let setup = HospitalSetup::sample();
    let mut group = c.benchmark_group("rewrite_scaling");
    for n in [1usize, 2, 3, 4] {
        let path = parse_path(&query_of_depth(n), &setup.vocab).unwrap();
        group.bench_with_input(BenchmarkId::new("mfa", n), &path, |b, p| {
            b.iter(|| rewrite(p, &setup.spec))
        });
        group.bench_with_input(BenchmarkId::new("direct", n), &path, |b, p| {
            b.iter(|| rewrite_direct(p, &setup.spec))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rewrite
}
criterion_main!(benches);
