//! Work budgets: deadlines and cooperative cancellation for evaluators.
//!
//! A [`WorkBudget`] carries an optional wall-clock deadline and an
//! optional shared cancel flag into an evaluation. Drivers thread a
//! [`BudgetMeter`] through their hot loops and call [`BudgetMeter::tick`]
//! once per unit of work (one DOM stack pop, one parser event, one
//! frontier entry, one jump candidate). The meter is built so the
//! unbudgeted case — the common one — costs a single predictable branch:
//!
//! * unarmed (no deadline, no cancel token): `tick` tests one `bool` and
//!   returns;
//! * armed: `tick` decrements a countdown, and only every
//!   `check_interval` events pays for the real check (an atomic load and
//!   an `Instant::now` comparison, kept out of line in a `#[cold]` fn).
//!
//! This bounds both the overhead *and* the overshoot: an expired
//! evaluation runs at most one check interval of extra events before it
//! abandons. Abandonment is safe by construction — evaluators only read
//! immutable snapshots and write evaluator-local state (machine frames,
//! candidate sets, per-driver memos), so dropping them mid-scan cannot
//! corrupt anything shared; the partial [`EvalStats`] travel out in the
//! interrupt for observability.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::stats::EvalStats;
use smoqe_xml::XmlError;

/// Default events between real deadline/cancel checks.
pub const DEFAULT_CHECK_INTERVAL: u32 = 1024;

/// Why an evaluation was interrupted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The budget's deadline passed mid-evaluation.
    DeadlineExceeded,
    /// The budget's cancel token was set mid-evaluation.
    Cancelled,
}

/// An abandoned evaluation: why it stopped plus the counters it had
/// accumulated when it did (partial — `answers`/`cans_size` are only
/// finalized by a completed run; `nodes_visited` is live and is what
/// bounded-abandonment assertions use).
#[derive(Clone, Copy, Debug)]
pub struct EvalInterrupt {
    /// What cut the evaluation short.
    pub kind: Interrupt,
    /// Counters at the moment of abandonment.
    pub stats: EvalStats,
}

/// A streaming/batch driver failure: either the underlying parse failed,
/// or the budget interrupted the scan.
#[derive(Debug)]
pub enum DriverError {
    /// XML parsing failed (the pre-budget error surface).
    Xml(XmlError),
    /// The work budget interrupted the scan.
    Interrupted(EvalInterrupt),
}

impl From<XmlError> for DriverError {
    fn from(e: XmlError) -> Self {
        DriverError::Xml(e)
    }
}

/// Limits on one evaluation: an optional deadline, an optional shared
/// cancel flag, and how often to check them. The default budget is
/// unlimited and free to thread everywhere.
#[derive(Clone, Debug, Default)]
pub struct WorkBudget {
    /// Absolute wall-clock instant after which evaluation abandons.
    pub deadline: Option<Instant>,
    /// Shared flag; once `true`, evaluation abandons at the next check.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Events between real checks (`0` means [`DEFAULT_CHECK_INTERVAL`]).
    pub check_interval: u32,
}

impl WorkBudget {
    /// A budget with no limits (every check is skipped via one branch).
    pub fn unlimited() -> WorkBudget {
        WorkBudget::default()
    }

    /// A deadline-only budget.
    pub fn with_deadline(deadline: Instant) -> WorkBudget {
        WorkBudget {
            deadline: Some(deadline),
            ..WorkBudget::default()
        }
    }

    /// A cancel-token-only budget.
    pub fn with_cancel(cancel: Arc<AtomicBool>) -> WorkBudget {
        WorkBudget {
            cancel: Some(cancel),
            ..WorkBudget::default()
        }
    }

    /// Whether this budget can never interrupt anything.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// The effective check interval.
    pub fn interval(&self) -> u32 {
        if self.check_interval == 0 {
            DEFAULT_CHECK_INTERVAL
        } else {
            self.check_interval
        }
    }

    /// Builds the per-evaluation meter. Each concurrent worker of a
    /// parallel evaluation takes its own meter over the same budget.
    pub fn meter(&self) -> BudgetMeter {
        let interval = self.interval();
        BudgetMeter {
            armed: !self.is_unlimited(),
            countdown: interval,
            interval,
            deadline: self.deadline,
            cancel: self.cancel.clone(),
        }
    }
}

/// The per-evaluation countdown a driver ticks in its hot loop.
#[derive(Clone, Debug)]
pub struct BudgetMeter {
    armed: bool,
    countdown: u32,
    interval: u32,
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Default for BudgetMeter {
    /// An unarmed meter (what [`WorkBudget::unlimited`] produces).
    fn default() -> Self {
        WorkBudget::unlimited().meter()
    }
}

impl BudgetMeter {
    /// Counts one event; every `check_interval` events performs the real
    /// deadline/cancel check. Unarmed meters cost one branch.
    #[inline]
    pub fn tick(&mut self) -> Option<Interrupt> {
        if !self.armed {
            return None;
        }
        self.countdown -= 1;
        if self.countdown != 0 {
            return None;
        }
        self.countdown = self.interval;
        self.check_now()
    }

    /// The real check, paid once per interval (or explicitly before
    /// starting expensive non-tickable work). Cancellation wins ties so a
    /// cancelled-then-expired request reports the caller's action.
    #[cold]
    pub fn check_now(&self) -> Option<Interrupt> {
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Some(Interrupt::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(Interrupt::DeadlineExceeded);
            }
        }
        None
    }

    /// Whether this meter can ever interrupt (drivers may skip bookkeeping
    /// entirely for unarmed meters).
    pub fn is_armed(&self) -> bool {
        self.armed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_budget_never_interrupts() {
        let mut meter = WorkBudget::unlimited().meter();
        assert!(!meter.is_armed());
        for _ in 0..10_000 {
            assert_eq!(meter.tick(), None);
        }
    }

    #[test]
    fn expired_deadline_fires_within_one_interval() {
        let budget = WorkBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            cancel: None,
            check_interval: 64,
        };
        let mut meter = budget.meter();
        let mut ticks = 0u32;
        let interrupt = loop {
            ticks += 1;
            if let Some(i) = meter.tick() {
                break i;
            }
            assert!(ticks <= 64, "must fire within one check interval");
        };
        assert_eq!(interrupt, Interrupt::DeadlineExceeded);
        assert_eq!(ticks, 64);
    }

    #[test]
    fn cancel_token_fires_and_wins_over_deadline() {
        let cancel = Arc::new(AtomicBool::new(false));
        let budget = WorkBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            cancel: Some(cancel.clone()),
            check_interval: 8,
        };
        let mut meter = budget.meter();
        cancel.store(true, Ordering::Relaxed);
        let interrupt = (0..8).find_map(|_| meter.tick()).expect("fires");
        assert_eq!(interrupt, Interrupt::Cancelled);
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let budget = WorkBudget {
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
            cancel: None,
            check_interval: 4,
        };
        let mut meter = budget.meter();
        assert!(meter.is_armed());
        for _ in 0..100 {
            assert_eq!(meter.tick(), None);
        }
    }

    #[test]
    fn zero_interval_means_default() {
        assert_eq!(WorkBudget::unlimited().interval(), DEFAULT_CHECK_INTERVAL);
        let meter = WorkBudget::with_cancel(Arc::new(AtomicBool::new(false))).meter();
        assert!(meter.is_armed());
    }
}
