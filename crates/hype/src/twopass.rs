//! Two-pass baseline evaluator (the "Arb [8]" contrast of the paper).
//!
//! Paper §3: *"previous systems require at least two passes of XML tree
//! traversal to evaluate even XPath queries. For example, Arb requires a
//! bottom-up pass of T to evaluate all the predicates of q, followed by a
//! top-down pass to evaluate the selecting path of q."*
//!
//! This module implements exactly that strategy over the same MFAs:
//!
//! * **Pass 1 (bottom-up)**: one sweep in reverse document order computes,
//!   for every element, the truth of *every* predicate — `text()='c'`
//!   truths via subtree text length/hash, `HasPath` truths via per-node
//!   state sets of the predicate automata (this is the pass whose per-node
//!   state-set tables make the approach memory-heavy, the cost HyPE
//!   avoids);
//! * **Pass 2 (top-down)**: a plain guarded NFA simulation of the
//!   selection path, reading predicate truths from the tables; accepting
//!   states yield answers immediately — no Cans needed, because
//!   everything was precomputed.
//!
//! Subtree text comparison uses a 64-bit polynomial hash (length +
//! rolling hash) as a *filter*, a standard trick to avoid materializing
//! per-node strings. A (length, hash) match alone is **not** proof of
//! equality — wrapping polynomial hashes have constructible collisions
//! (e.g. Thue–Morse strings; see the regression test) and a silent wrong
//! answer is unacceptable in an access-control engine — so every filter
//! hit is confirmed with a real comparison of the node's direct text.

use crate::machine::VIRTUAL_NODE;
use crate::stats::EvalStats;
use smoqe_automata::{Mfa, Nfa, NfaId, Pred, PredId, StateId};
use smoqe_rxpath::NodeSet;
use smoqe_xml::{Document, NodeId};

const B: u64 = 1_000_003;

fn pow_b(mut e: u64) -> u64 {
    let mut base = B;
    let mut acc: u64 = 1;
    while e > 0 {
        if e & 1 == 1 {
            acc = acc.wrapping_mul(base);
        }
        base = base.wrapping_mul(base);
        e >>= 1;
    }
    acc
}

fn hash_str(s: &str) -> (u64, u64) {
    let mut h: u64 = 0;
    for b in s.bytes() {
        h = h.wrapping_mul(B).wrapping_add(b as u64);
    }
    (s.len() as u64, h)
}

/// Whether the concatenated *direct* text children of `node` equal
/// `target` — the authoritative comparison behind the (length, hash)
/// filter. Walks the target in place, so no per-node string is built.
fn direct_text_equals(doc: &Document, node: NodeId, target: &str) -> bool {
    let mut rest = target;
    for c in doc.children(node) {
        if let Some(t) = doc.text(c) {
            match rest.strip_prefix(t) {
                Some(tail) => rest = tail,
                None => return false,
            }
        }
    }
    rest.is_empty()
}

/// Dense bitset over (node, state) pairs for one NFA.
struct ReachTable {
    words_per_node: usize,
    bits: Vec<u64>,
}

impl ReachTable {
    fn new(nodes: usize, states: usize) -> Self {
        let words_per_node = states.div_ceil(64).max(1);
        ReachTable {
            words_per_node,
            bits: vec![0; nodes * words_per_node],
        }
    }

    #[inline]
    fn get(&self, node: usize, state: StateId) -> bool {
        let w = node * self.words_per_node + state.index() / 64;
        self.bits[w] & (1u64 << (state.index() % 64)) != 0
    }

    #[inline]
    fn set(&mut self, node: usize, state: StateId) {
        let w = node * self.words_per_node + state.index() / 64;
        self.bits[w] |= 1u64 << (state.index() % 64);
    }

    fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// Reverse ε-adjacency of an NFA (targets -> sources), guards preserved.
struct ReverseEps {
    /// per state: (source, guard) edges pointing *into* it.
    incoming: Vec<Vec<(StateId, Option<PredId>)>>,
}

impl ReverseEps {
    fn build(nfa: &Nfa) -> Self {
        let mut incoming = vec![Vec::new(); nfa.state_count()];
        for s in nfa.states() {
            for e in nfa.eps_edges(s) {
                incoming[e.target.index()].push((s, e.guard));
            }
        }
        ReverseEps { incoming }
    }
}

/// Outcome details beyond the answers (memory cost of the tables is the
/// headline difference vs. HyPE).
#[derive(Debug, Clone, Copy)]
pub struct TwoPassReport {
    /// Bytes used by the per-node predicate/state tables.
    pub table_bytes: usize,
}

/// Evaluates `mfa` with the two-pass strategy.
pub fn evaluate_mfa_twopass(doc: &Document, mfa: &Mfa) -> (NodeSet, EvalStats) {
    evaluate_mfa_twopass_report(doc, mfa).0
}

/// Two-pass evaluation, also returning the table-memory report.
pub fn evaluate_mfa_twopass_report(
    doc: &Document,
    mfa: &Mfa,
) -> ((NodeSet, EvalStats), TwoPassReport) {
    let n = doc.node_count();
    let mut stats = EvalStats {
        tree_passes: 2,
        ..Default::default()
    };

    // ---- Pass 1: bottom-up --------------------------------------------
    // Direct text (len, hash) per element (text() = 'c' semantics).
    let mut text_len = vec![0u64; n];
    let mut text_hash = vec![0u64; n];
    // Predicate truth tables: bit per (pred, node).
    let pred_count = mfa.pred_count();
    let words = n.div_ceil(64).max(1);
    let mut truth: Vec<Vec<u64>> = vec![vec![0u64; words]; pred_count];
    // Targets of TextEq preds, prehashed.
    let targets: Vec<Option<(u64, u64)>> = mfa
        .preds()
        .map(|(_, p)| match p {
            Pred::TextEq(c) => Some(hash_str(c)),
            _ => None,
        })
        .collect();
    // Reach tables per HasPath pred.
    let mut reach: Vec<Option<(NfaId, ReachTable, ReverseEps)>> = mfa
        .preds()
        .map(|(_, p)| match p {
            Pred::HasPath(nid) => {
                let nfa = mfa.nfa(*nid);
                Some((
                    *nid,
                    ReachTable::new(n, nfa.state_count()),
                    ReverseEps::build(nfa),
                ))
            }
            _ => None,
        })
        .collect();

    let get_truth = |truth: &Vec<Vec<u64>>, p: PredId, node: usize| -> bool {
        truth[p.index()][node / 64] & (1u64 << (node % 64)) != 0
    };

    for raw in (0..n as u32).rev() {
        let node = NodeId(raw);
        let idx = raw as usize;
        match doc.text(node) {
            Some(t) => {
                let (l, h) = hash_str(t);
                text_len[idx] = l;
                text_hash[idx] = h;
                continue;
            }
            None => {
                // Element: combine *direct text children* in order.
                let mut l: u64 = 0;
                let mut h: u64 = 0;
                for c in doc.children(node) {
                    if doc.text(c).is_none() {
                        continue;
                    }
                    let ci = c.index();
                    h = h
                        .wrapping_mul(pow_b(text_len[ci]))
                        .wrapping_add(text_hash[ci]);
                    l += text_len[ci];
                }
                text_len[idx] = l;
                text_hash[idx] = h;
            }
        }
        stats.nodes_visited += 1;
        // Predicates in ascending id order (children precede parents by
        // construction).
        for pid in (0..pred_count as u32).map(PredId) {
            let value = match mfa.pred(pid) {
                Pred::True => true,
                Pred::TextEq(target) => {
                    let (tl, th) = targets[pid.index()].expect("prehashed");
                    // (len, hash) only filters; a hit must be confirmed
                    // against the actual text (collisions exist).
                    text_len[idx] == tl
                        && text_hash[idx] == th
                        && direct_text_equals(doc, node, target)
                }
                Pred::HasPath(_) => {
                    let (nid, mut table, rev) = reach[pid.index()].take().expect("present");
                    let nfa = mfa.nfa(nid);
                    // Seed: accept, plus states with a transition into a
                    // child's reach set.
                    let mut seed: Vec<StateId> = vec![nfa.accept()];
                    for c in doc.child_elements(node) {
                        let cl = doc.label(c).expect("element");
                        for s in nfa.states() {
                            for t in nfa.transitions(s) {
                                if t.test.matches(cl) && table.get(c.index(), t.target) {
                                    seed.push(s);
                                }
                            }
                        }
                    }
                    // Backward ε-closure with guards evaluated at `node`.
                    let mut in_set = vec![false; nfa.state_count()];
                    let mut work = Vec::new();
                    for s in seed {
                        if !in_set[s.index()] {
                            in_set[s.index()] = true;
                            work.push(s);
                        }
                    }
                    while let Some(s) = work.pop() {
                        for &(src, guard) in &rev.incoming[s.index()] {
                            let ok = match guard {
                                None => true,
                                Some(g) => get_truth(&truth, g, idx),
                            };
                            if ok && !in_set[src.index()] {
                                in_set[src.index()] = true;
                                work.push(src);
                            }
                        }
                    }
                    // Store and read off start membership.
                    for (i, &b) in in_set.iter().enumerate() {
                        if b {
                            table.set(idx, StateId(i as u32));
                        }
                    }
                    let value = table.get(idx, nfa.start());
                    reach[pid.index()] = Some((nid, table, rev));
                    value
                }
                Pred::Not(sub) => !get_truth(&truth, *sub, idx),
                Pred::And(subs) => subs.iter().all(|&s| get_truth(&truth, s, idx)),
                Pred::Or(subs) => subs.iter().any(|&s| get_truth(&truth, s, idx)),
            };
            if value {
                truth[pid.index()][idx / 64] |= 1u64 << (idx % 64);
            }
        }
    }

    // ---- Virtual-context predicate truths ------------------------------
    let root = doc.root();
    let mut virtual_truth = vec![false; pred_count];
    for pid in (0..pred_count as u32).map(PredId) {
        let value = match mfa.pred(pid) {
            Pred::True => true,
            Pred::TextEq(_) => {
                // The virtual document node has no direct text.
                let (tl, th) = targets[pid.index()].expect("prehashed");
                tl == 0 && th == 0
            }
            Pred::HasPath(nid) => {
                let nfa = mfa.nfa(*nid);
                let table = &reach[pid.index()].as_ref().expect("present").1;
                let rev = &reach[pid.index()].as_ref().expect("present").2;
                let rl = doc.label(root).expect("element root");
                let mut seed: Vec<StateId> = vec![nfa.accept()];
                for s in nfa.states() {
                    for t in nfa.transitions(s) {
                        if t.test.matches(rl) && table.get(root.index(), t.target) {
                            seed.push(s);
                        }
                    }
                }
                let mut in_set = vec![false; nfa.state_count()];
                let mut work = Vec::new();
                for s in seed {
                    if !in_set[s.index()] {
                        in_set[s.index()] = true;
                        work.push(s);
                    }
                }
                while let Some(s) = work.pop() {
                    for &(src, guard) in &rev.incoming[s.index()] {
                        let ok = match guard {
                            None => true,
                            Some(g) => virtual_truth[g.index()],
                        };
                        if ok && !in_set[src.index()] {
                            in_set[src.index()] = true;
                            work.push(src);
                        }
                    }
                }
                in_set[nfa.start().index()]
            }
            Pred::Not(sub) => !virtual_truth[sub.index()],
            Pred::And(subs) => subs.iter().all(|&s| virtual_truth[s.index()]),
            Pred::Or(subs) => subs.iter().any(|&s| virtual_truth[s.index()]),
        };
        virtual_truth[pid.index()] = value;
    }

    // ---- Pass 2: top-down selection ------------------------------------
    let top = mfa.nfa(mfa.top());
    let closure = |set: &mut Vec<bool>, node: u32| {
        let mut work: Vec<StateId> = (0..set.len())
            .filter(|&i| set[i])
            .map(|i| StateId(i as u32))
            .collect();
        while let Some(s) = work.pop() {
            for e in top.eps_edges(s) {
                let ok = match e.guard {
                    None => true,
                    Some(g) => {
                        if node == VIRTUAL_NODE {
                            virtual_truth[g.index()]
                        } else {
                            get_truth(&truth, g, node as usize)
                        }
                    }
                };
                if ok && !set[e.target.index()] {
                    set[e.target.index()] = true;
                    work.push(e.target);
                }
            }
        }
    };

    let mut answers: Vec<u32> = Vec::new();
    let mut initial = vec![false; top.state_count()];
    initial[top.start().index()] = true;
    closure(&mut initial, VIRTUAL_NODE);

    let mut stack: Vec<(NodeId, Option<Vec<bool>>)> = vec![(root, Some(initial))];
    while let Some((node, parent_set)) = stack.pop() {
        let set = parent_set.expect("pushed with a set");
        let label = doc.label(node).expect("elements only");
        let mut next = vec![false; top.state_count()];
        let mut any = false;
        for (i, &on) in set.iter().enumerate() {
            if !on {
                continue;
            }
            for t in top.transitions(StateId(i as u32)) {
                if t.test.matches(label) {
                    next[t.target.index()] = true;
                    any = true;
                }
            }
        }
        if !any {
            continue;
        }
        stats.nodes_visited += 1;
        closure(&mut next, node.0);
        if next[top.accept().index()] {
            answers.push(node.0);
        }
        let children: Vec<NodeId> = doc.child_elements(node).collect();
        for &c in children.iter().rev() {
            stack.push((c, Some(next.clone())));
        }
    }

    answers.sort_unstable();
    answers.dedup();
    stats.answers = answers.len();
    let table_bytes = truth.iter().map(|t| t.len() * 8).sum::<usize>()
        + reach
            .iter()
            .filter_map(|r| r.as_ref().map(|(_, t, _)| t.memory_bytes()))
            .sum::<usize>()
        + n * 16;
    (
        (
            NodeSet::from_sorted(answers.into_iter().map(NodeId).collect()),
            stats,
        ),
        TwoPassReport { table_bytes },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_automata::compile;
    use smoqe_rxpath::{evaluate as naive, parse_path};
    use smoqe_xml::Vocabulary;

    fn check(xml: &str, query: &str) {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(xml, &vocab).unwrap();
        let path = parse_path(query, &vocab).unwrap();
        let mfa = compile(&path, &vocab);
        let (got, stats) = evaluate_mfa_twopass(&doc, &mfa);
        let want = naive(&doc, &path);
        assert_eq!(got, want, "query `{query}` on `{xml}`");
        assert_eq!(stats.tree_passes, 2);
    }

    #[test]
    fn agrees_with_naive_on_basics() {
        check("<a><b>1</b><c>2</c><b>3</b></a>", "a/b");
        check("<a><b><c>x</c></b><c>y</c></a>", "//c");
        check("<a><b><a><b><a/></b></a></b></a>", "(a/b)*/a");
    }

    #[test]
    fn agrees_on_predicates() {
        let doc = "<a><b><c>yes</c></b><b><d/></b><b><c>no</c></b></a>";
        check(doc, "a/b[c]");
        check(doc, "a/b[c = 'yes']");
        check(doc, "a/b[not(c)]");
        check(doc, "a/b[c and d]");
        check(doc, "a/b[c or d]");
        check(doc, "a/b[text() = 'yes']");
    }

    #[test]
    fn agrees_on_nested_predicates() {
        let doc = "<a><b><c><d>v</d></c></b><b><c><e/></c></b></a>";
        check(doc, "a/b[c[d]]");
        check(doc, "a/b[c[not(d)]]");
        check(doc, "a/b[c/d = 'v']");
        check(doc, "//b[c[d = 'v' or e]]");
    }

    #[test]
    fn agrees_on_paper_q0() {
        let xml = "<hospital>\
               <patient><pname>Ann</pname>\
                 <visit><treatment><test>blood</test></treatment><date>d1</date></visit>\
                 <visit><treatment><medication>headache</medication></treatment><date>d2</date></visit>\
               </patient>\
               <patient><pname>Cat</pname>\
                 <parent><patient><pname>Dan</pname>\
                   <visit><treatment><test>x-ray</test></treatment><date>d4</date></visit>\
                 </patient></parent>\
                 <visit><treatment><medication>headache</medication></treatment><date>d5</date></visit>\
               </patient>\
             </hospital>";
        check(
            xml,
            "hospital/patient[(parent/patient)*/visit/treatment/test and \
             visit/treatment[medication/text() = 'headache']]/pname",
        );
    }

    /// Thue–Morse anti-hash pair: for any odd base B, the length-2^k
    /// Thue–Morse string over {a, b} and its complement have equal
    /// wrapping 64-bit polynomial hashes once the 2-adic valuation of
    /// prod_{j<k} (B^(2^j) - 1) reaches 64 — for B = 1_000_003 that
    /// happens at k = 10 (length 1024).
    fn thue_morse_collision_pair() -> (String, String) {
        let tm = |even: char, odd: char| -> String {
            (0u32..1024)
                .map(|i| if i.count_ones() % 2 == 0 { even } else { odd })
                .collect()
        };
        (tm('a', 'b'), tm('b', 'a'))
    }

    #[test]
    fn text_eq_survives_a_real_hash_collision() {
        let (t1, t2) = thue_morse_collision_pair();
        assert_ne!(t1, t2);
        // Precondition: the two texts genuinely collide in (len, hash) —
        // without the string confirmation, the evaluator cannot tell them
        // apart, and an access-control predicate would silently pass for
        // the wrong node.
        assert_eq!(hash_str(&t1), hash_str(&t2));
        let xml = format!("<r><x>{t1}</x><x>{t2}</x></r>");
        check(&xml, &format!("r/x[text() = '{t1}']"));
        // And explicitly: exactly ONE x may match.
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(&xml, &vocab).unwrap();
        let path = parse_path(&format!("r/x[text() = '{t1}']"), &vocab).unwrap();
        let mfa = compile(&path, &vocab);
        let (got, _) = evaluate_mfa_twopass(&doc, &mfa);
        assert_eq!(got.len(), 1, "the colliding sibling must not match");
    }

    #[test]
    fn split_direct_text_confirms_across_child_elements() {
        // Direct text "xy" is split around <c/>: the confirmation walk
        // must concatenate the pieces exactly like the hash did.
        check("<a><b>x<c>NO</c>y</b><b>xy</b></a>", "a/b[text() = 'xy']");
        check("<a><b>x<c>NO</c>y</b></a>", "a/b[text() = 'x']");
    }

    #[test]
    fn reports_table_memory() {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str("<a><b><c/></b></a>", &vocab).unwrap();
        let path = parse_path("a/b[c]", &vocab).unwrap();
        let mfa = compile(&path, &vocab);
        let (_, report) = evaluate_mfa_twopass_report(&doc, &mfa);
        assert!(report.table_bytes > 0);
    }
}
