//! Evaluation statistics.
//!
//! These counters back both the experiments (E3 reports |Cans| vs |T|,
//! E5 reports pruned subtrees) and the trace visualizations that stand in
//! for the iSMOQE monitoring views.

/// Counters collected during one evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Element nodes the evaluator actually entered.
    pub nodes_visited: usize,
    /// Subtrees skipped because the TAX index proved them useless.
    pub subtrees_pruned_tax: usize,
    /// Subtrees skipped because every automaton run died on entry.
    pub subtrees_skipped_dead: usize,
    /// Candidates parked in Cans (unresolved at discovery time).
    pub cans_size: usize,
    /// Answers that were provable immediately at discovery.
    pub immediate_answers: usize,
    /// Total answers returned.
    pub answers: usize,
    /// Predicate instances spawned.
    pub pred_instances: usize,
    /// Predicate runs (HasPath automata) spawned.
    pub runs_spawned: usize,
    /// Formula nodes allocated for validity tracking.
    pub formula_nodes: usize,
    /// Guard evaluations performed outside the main traversal (jump-scan
    /// verification probes: text comparisons and `HasPath` witness walks
    /// at candidate nodes). Zero for scan evaluations, where guards
    /// resolve inside the single pass.
    pub guard_probes: usize,
    /// Maximum depth reached.
    pub max_depth: usize,
    /// Full passes over the document tree (1 for HyPE, 2 for the two-pass
    /// baseline).
    pub tree_passes: usize,
    /// The serving-layer request these counters were collected for
    /// (`0` = not part of a traced request). Evaluators never set this;
    /// the server stamps it from the request's `RequestContext` so a
    /// stats line in a trace dump can be grepped back to the wire request
    /// that caused it.
    pub request_id: u64,
}

impl EvalStats {
    /// Accumulates another evaluation's counters into this one (additive
    /// counters sum, `max_depth` takes the maximum) — used to merge
    /// per-worker statistics of a parallel batch.
    pub fn merge(&mut self, other: &EvalStats) {
        self.nodes_visited += other.nodes_visited;
        self.subtrees_pruned_tax += other.subtrees_pruned_tax;
        self.subtrees_skipped_dead += other.subtrees_skipped_dead;
        self.cans_size += other.cans_size;
        self.immediate_answers += other.immediate_answers;
        self.answers += other.answers;
        self.pred_instances += other.pred_instances;
        self.runs_spawned += other.runs_spawned;
        self.formula_nodes += other.formula_nodes;
        self.guard_probes += other.guard_probes;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.tree_passes += other.tree_passes;
        // Request ids do not add: a merged figure keeps its own id (or
        // adopts the other's when it has none), mirroring how a batch is
        // one wire request.
        if self.request_id == 0 {
            self.request_id = other.request_id;
        }
    }

    /// Fraction of visited nodes that became candidates — the paper's
    /// "Cans is often much smaller than the XML document tree".
    pub fn cans_ratio(&self) -> f64 {
        if self.nodes_visited == 0 {
            0.0
        } else {
            self.cans_size as f64 / self.nodes_visited as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cans_ratio_handles_zero() {
        assert_eq!(EvalStats::default().cans_ratio(), 0.0);
        let s = EvalStats {
            nodes_visited: 100,
            cans_size: 5,
            ..Default::default()
        };
        assert!((s.cans_ratio() - 0.05).abs() < 1e-9);
    }
}
