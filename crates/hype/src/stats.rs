//! Evaluation statistics.
//!
//! These counters back both the experiments (E3 reports |Cans| vs |T|,
//! E5 reports pruned subtrees) and the trace visualizations that stand in
//! for the iSMOQE monitoring views.

/// Counters collected during one evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Element nodes the evaluator actually entered.
    pub nodes_visited: usize,
    /// Subtrees skipped because the TAX index proved them useless.
    pub subtrees_pruned_tax: usize,
    /// Subtrees skipped because every automaton run died on entry.
    pub subtrees_skipped_dead: usize,
    /// Candidates parked in Cans (unresolved at discovery time).
    pub cans_size: usize,
    /// Answers that were provable immediately at discovery.
    pub immediate_answers: usize,
    /// Total answers returned.
    pub answers: usize,
    /// Predicate instances spawned.
    pub pred_instances: usize,
    /// Predicate runs (HasPath automata) spawned.
    pub runs_spawned: usize,
    /// Formula nodes allocated for validity tracking.
    pub formula_nodes: usize,
    /// Maximum depth reached.
    pub max_depth: usize,
    /// Full passes over the document tree (1 for HyPE, 2 for the two-pass
    /// baseline).
    pub tree_passes: usize,
}

impl EvalStats {
    /// Fraction of visited nodes that became candidates — the paper's
    /// "Cans is often much smaller than the XML document tree".
    pub fn cans_ratio(&self) -> f64 {
        if self.nodes_visited == 0 {
            0.0
        } else {
            self.cans_size as f64 / self.nodes_visited as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cans_ratio_handles_zero() {
        assert_eq!(EvalStats::default().cans_ratio(), 0.0);
        let s = EvalStats {
            nodes_visited: 100,
            cans_size: 5,
            ..Default::default()
        };
        assert!((s.cans_ratio() - 0.05).abs() < 1e-9);
    }
}
