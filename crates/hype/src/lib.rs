//! # smoqe-hype — HyPE, the Hybrid Pass Evaluator
//!
//! HyPE (paper §3, "Evaluator") evaluates MFAs with **a single top-down
//! depth-first traversal** during which it both advances the selection NFA
//! and resolves predicates, parking potential answers in the `Cans`
//! structure; one final pass over `Cans` yields the answer. The crate
//! contains:
//!
//! * [`dom`] — DOM mode, with automaton-driven subtree skipping and
//!   TAX-index pruning ([`evaluate_mfa`]);
//! * [`jump`] — jump-scan DOM mode: DFA plans (exact for the guard-free
//!   fragment, guard-stripped with exact re-verification for predicated
//!   ones) hop between candidate subtrees through the positional label
//!   and value posting indexes, visiting O(candidate) nodes instead of
//!   O(n);
//! * [`frontier`] — shared batch jump frontier: a batch of jump-eligible
//!   plans merges its candidate lists into one ascending sweep,
//!   partitioned by frontier ranges across worker threads
//!   ([`evaluate_jump_frontier`]);
//! * [`stream`] — StAX mode: the same core over pull-parser events with
//!   candidate-subtree buffering ([`evaluate_stream`]);
//! * [`batch`] — batched StAX mode: one shared sequential scan answers a
//!   whole set of compiled plans at once ([`evaluate_batch_stream`]);
//! * [`twopass`] — the bottom-up + top-down baseline the paper contrasts
//!   with (Arb-style);
//! * [`observer`] / [`stats`] — monitoring hooks and counters used by the
//!   iSMOQE-substitute visualizers and the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod budget;
pub mod cans;
pub mod dom;
pub mod frontier;
pub mod jump;
pub mod machine;
pub mod observer;
pub mod stats;
pub mod stream;
pub mod twopass;

pub use batch::{
    evaluate_batch_stream, evaluate_batch_stream_each, evaluate_batch_stream_plans,
    evaluate_batch_stream_plans_budgeted, evaluate_batch_stream_plans_with,
    evaluate_batch_stream_str, evaluate_batch_stream_with, BatchOutcome,
};
pub use budget::{
    BudgetMeter, DriverError, EvalInterrupt, Interrupt, WorkBudget, DEFAULT_CHECK_INTERVAL,
};
pub use dom::{
    evaluate_mfa, evaluate_mfa_plan, evaluate_mfa_plan_budgeted, evaluate_mfa_with, DomOptions,
};
pub use frontier::{evaluate_jump_frontier, evaluate_jump_frontier_budgeted};
pub use jump::{
    evaluate_jump, jump_available, jump_eligible, selectivity_estimate, start_region_triggers,
    SelectivityEstimate, TriggerInfo, TriggerKind,
};
pub use machine::ExecMode;
pub use observer::{EvalObserver, NoopObserver, PruneReason};
pub use stats::EvalStats;
pub use stream::{
    evaluate_stream, evaluate_stream_plan_budgeted, evaluate_stream_plan_with, evaluate_stream_str,
    StreamOptions, StreamOutcome,
};
pub use twopass::{evaluate_mfa_twopass, evaluate_mfa_twopass_report, TwoPassReport};
