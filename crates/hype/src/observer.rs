//! Observation hooks into the evaluator.
//!
//! iSMOQE "opens a window of the system to let user visually monitor the
//! internals of the engine" (paper §2): which nodes are visited, which land
//! in Cans, which subtrees are pruned and why. The evaluators accept an
//! [`EvalObserver`] and report those events; `smoqe-viz` implements a trace
//! collector on top, and the default [`NoopObserver`] compiles away.

use smoqe_xml::Label;

/// Why a subtree was skipped without being traversed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PruneReason {
    /// Every automaton run died on the child's label.
    DeadRuns,
    /// The TAX index proved no required label exists in the subtree.
    TaxIndex,
}

/// Receiver for evaluation events. All methods default to no-ops.
pub trait EvalObserver {
    /// Whether this observer ignores every event. The evaluator caches the
    /// answer at `begin` and skips the per-event virtual dispatch entirely
    /// when it is `true` — with millions of events per scan, even an empty
    /// indirect call is measurable.
    fn is_noop(&self) -> bool {
        false
    }

    /// An element node is entered (pre-order).
    fn enter_node(&mut self, node: u32, label: Label, depth: usize) {
        let _ = (node, label, depth);
    }

    /// An element node is left (post-order).
    fn leave_node(&mut self, node: u32) {
        let _ = node;
    }

    /// A subtree rooted at a child with `label` was skipped.
    fn subtree_pruned(&mut self, parent: u32, label: Label, reason: PruneReason) {
        let _ = (parent, label, reason);
    }

    /// `node` became a candidate; `immediate` means it was provable on the
    /// spot (no pending predicates).
    fn candidate(&mut self, node: u32, immediate: bool) {
        let _ = (node, immediate);
    }

    /// A predicate instance was spawned at `node`.
    fn instance_spawned(&mut self, inst: usize, node: u32) {
        let _ = (inst, node);
    }

    /// A predicate instance resolved to `value`.
    fn instance_resolved(&mut self, inst: usize, value: bool) {
        let _ = (inst, value);
    }

    /// The final Cans pass kept (`true`) or dropped (`false`) a candidate.
    fn candidate_resolved(&mut self, node: u32, kept: bool) {
        let _ = (node, kept);
    }
}

/// An observer that ignores everything (zero overhead).
#[derive(Default, Clone, Copy, Debug)]
pub struct NoopObserver;

impl EvalObserver for NoopObserver {
    fn is_noop(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_observer_accepts_all_events() {
        let mut o = NoopObserver;
        o.enter_node(0, Label(0), 0);
        o.leave_node(0);
        o.subtree_pruned(0, Label(0), PruneReason::TaxIndex);
        o.candidate(1, true);
        o.instance_spawned(0, 1);
        o.instance_resolved(0, false);
        o.candidate_resolved(1, true);
    }
}
