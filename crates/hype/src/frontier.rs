//! Shared batch jump frontier: many selective plans, one merged cursor.
//!
//! A batch of jump-eligible plans evaluated one after another repeats the
//! same work per plan: each binary-searches the same occurrence lists and
//! walks its own cursor over the same document. This module merges the
//! plans' **root-region candidate lists** into one ascending frontier of
//! `(node, plan)` entries and processes it in a single sweep — every
//! candidate is touched once, in document order, for exactly the plans
//! that asked for it. The frontier is partitioned into contiguous ranges
//! across worker threads; per-plan cursors are recovered at a chunk
//! boundary by replaying the plan's candidate prefix (every probed
//! candidate unconditionally skips its whole subtree, so the cursor after
//! a prefix is independent of probe outcomes — replay needs only
//! `subtree_end`, no evaluation).
//!
//! Deeper jump regions (a candidate whose own subtree jump-scans again)
//! stay inside the owning plan's probe: only the **root** region is
//! shared. That is where batches overlap — all plans start at the same
//! root — and it keeps per-plan probes independent, which is what makes
//! the range partition embarrassingly parallel.
//!
//! Answers per plan are identical to [`crate::jump::evaluate_jump`] by
//! construction: the same candidates are probed in the same order with
//! the same per-probe driver logic, whatever the thread count.

use crate::budget::{EvalInterrupt, WorkBudget};
use crate::jump::{frontier_setup, FrontierSetup, Jump, RegionPlan};
use crate::stats::EvalStats;
use smoqe_automata::compile::CompiledMfa;
use smoqe_rxpath::NodeSet;
use smoqe_tax::TaxIndex;
use smoqe_xml::Document;

/// Raw `(answers, stats)` probe output, one entry per region.
type RegionParts = Vec<(Vec<u32>, EvalStats)>;

/// Per-region raw probe output of one frontier chunk, plus the first
/// interrupt the chunk hit (if any — the parts then cover a prefix).
type ChunkOut = (RegionParts, Option<EvalInterrupt>);

/// Evaluates a batch of plans over one document through a shared jump
/// frontier. The returned vector is parallel to `plans`:
///
/// * `Some((answers, stats))` — the plan was evaluated in jump mode
///   (through the shared frontier, or outright during setup when its
///   root region was dead, pruned, a leaf, or child-stepping);
/// * `None` — the plan cannot jump (no DFA, or no positional index for
///   this document); the caller must evaluate it in scan mode.
///
/// `threads` bounds the worker count for the frontier sweep; `1` runs
/// the whole sweep inline on the calling thread.
pub fn evaluate_jump_frontier(
    doc: &Document,
    plans: &[&CompiledMfa],
    tax: &TaxIndex,
    threads: usize,
) -> Vec<Option<(NodeSet, EvalStats)>> {
    match evaluate_jump_frontier_budgeted(doc, plans, tax, threads, &WorkBudget::unlimited()) {
        Ok(results) => results,
        Err(_) => unreachable!("an unlimited budget never interrupts"),
    }
}

/// [`evaluate_jump_frontier`] under a [`WorkBudget`]: every chunk sweeps
/// with its own meter (ticking once per frontier entry, on top of the
/// drivers' own per-node ticks) and the whole batch abandons with merged
/// partial counters as soon as any chunk observes the deadline or the
/// cancel token. Abandonment drops only per-chunk drivers and cursors —
/// the document, the TAX index, and the plans are shared immutable
/// snapshots.
pub fn evaluate_jump_frontier_budgeted(
    doc: &Document,
    plans: &[&CompiledMfa],
    tax: &TaxIndex,
    threads: usize,
    budget: &WorkBudget,
) -> Result<Vec<Option<(NodeSet, EvalStats)>>, EvalInterrupt> {
    let mut results: Vec<Option<(NodeSet, EvalStats)>> = Vec::with_capacity(plans.len());
    results.resize_with(plans.len(), || None);
    // Admit each plan: setup handles the root step; jumpable root regions
    // contribute their candidates to the shared frontier.
    let mut regions: Vec<(usize, RegionPlan<'_>)> = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        match frontier_setup(doc, plan, tax, budget.meter()) {
            None => {}
            Some(FrontierSetup::Done(result)) => results[i] = Some(result),
            Some(FrontierSetup::Interrupted(interrupt)) => return Err(interrupt),
            Some(FrontierSetup::Region(region)) => regions.push((i, region)),
        }
    }
    if regions.is_empty() {
        return Ok(results);
    }
    // The shared frontier: all candidates of all regions, ascending.
    // Ties (one node wanted by several plans) order by region — each
    // probe is per-plan, so the tie order is immaterial.
    let mut frontier: Vec<(u32, u32)> = Vec::new();
    for (r, (_, region)) in regions.iter().enumerate() {
        frontier.extend(region.candidates.iter().map(|&c| (c, r as u32)));
    }
    frontier.sort_unstable();
    let workers = threads.max(1).min(frontier.len().max(1));
    let chunk_len = frontier.len().div_ceil(workers);
    // chunk_results[chunk][region] = (answers, stats) for that slice.
    let chunk_results: Vec<ChunkOut> = if workers == 1 {
        vec![sweep_chunk(&regions, &frontier, 0, frontier.len(), budget)]
    } else {
        let mut slots: Vec<Option<ChunkOut>> = Vec::new();
        slots.resize_with(workers, || None);
        std::thread::scope(|scope| {
            for (w, slot) in slots.iter_mut().enumerate() {
                let regions = &regions;
                let frontier = &frontier;
                scope.spawn(move || {
                    let start = (w * chunk_len).min(frontier.len());
                    let end = ((w + 1) * chunk_len).min(frontier.len());
                    *slot = Some(sweep_chunk(regions, frontier, start, end, budget));
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every frontier chunk is swept"))
            .collect()
    };
    // Any interrupted chunk abandons the whole batch; the counters merged
    // across every chunk's partial output travel out for observability.
    if let Some(kind) = chunk_results
        .iter()
        .find_map(|(_, interrupt)| interrupt.map(|i| i.kind))
    {
        let mut stats = EvalStats::default();
        for (parts, _) in &chunk_results {
            for (_, chunk_stats) in parts {
                stats.merge(chunk_stats);
            }
        }
        return Err(EvalInterrupt { kind, stats });
    }
    // Stitch: per region, concatenate chunk outputs in chunk order
    // (probed candidates ascend across chunks and skip disjoint
    // subtrees, so the concatenation is sorted).
    let mut per_region: Vec<RegionParts> = Vec::new();
    per_region.resize_with(regions.len(), Vec::new);
    for (parts, _) in chunk_results {
        for (r, pair) in parts.into_iter().enumerate() {
            per_region[r].push(pair);
        }
    }
    for ((i, region), chunks) in regions.iter().zip(per_region) {
        results[*i] = Some(region.assemble(chunks));
    }
    Ok(results)
}

/// Sweeps `frontier[start..end)`, probing each entry for its region, and
/// returns per-region `(answers, stats)` for the slice.
///
/// The per-region cursor at `start` is recovered by replaying the
/// region's candidates in `frontier[..start]`: a candidate at or past the
/// cursor would have been probed — and **every** probed candidate
/// advances the cursor past its whole subtree, whether it was entered,
/// dead, pruned, or guard-dead — while a candidate below the cursor
/// leaves it unchanged. The replay is therefore exact without evaluating
/// anything.
fn sweep_chunk(
    regions: &[(usize, RegionPlan<'_>)],
    frontier: &[(u32, u32)],
    start: usize,
    end: usize,
    budget: &WorkBudget,
) -> ChunkOut {
    let mut cursors: Vec<u32> = regions.iter().map(|(_, region)| region.lo).collect();
    for &(node, r) in &frontier[..start] {
        let r = r as usize;
        if node >= cursors[r] {
            cursors[r] = regions[r].1.subtree_end(node);
        }
    }
    let mut drivers: Vec<_> = regions
        .iter()
        .map(|(_, region)| region.driver(budget.meter()))
        .collect();
    let mut meter = budget.meter();
    let mut interrupted = None;
    for &(node, r) in &frontier[start..end] {
        let r = r as usize;
        if let Some(kind) = meter.tick() {
            interrupted = Some(kind);
            break;
        }
        if node < cursors[r] {
            continue; // inside an already-probed candidate's subtree
        }
        drivers[r].step_into(node, regions[r].1.state);
        cursors[r] = regions[r].1.subtree_end(node);
        if let Some(interrupt) = drivers[r].take_interrupt() {
            interrupted = Some(interrupt.kind);
            break;
        }
    }
    let parts: RegionParts = drivers.into_iter().map(Jump::into_parts).collect();
    let interrupt = interrupted.map(|kind| {
        let mut stats = EvalStats::default();
        for (_, part_stats) in &parts {
            stats.merge(part_stats);
        }
        EvalInterrupt { kind, stats }
    });
    (parts, interrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_automata::compile;
    use smoqe_rxpath::parse_path;
    use smoqe_xml::Vocabulary;

    fn setup(xml: &str) -> (Vocabulary, Document, TaxIndex) {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(xml, &vocab).unwrap();
        let tax = TaxIndex::build(&doc);
        (vocab, doc, tax)
    }

    fn plan_for(q: &str, vocab: &Vocabulary) -> CompiledMfa {
        CompiledMfa::compile(&compile(&parse_path(q, vocab).unwrap(), vocab))
    }

    /// The frontier must agree with per-plan jump evaluation for every
    /// plan, at every thread count.
    fn check_batch(xml: &str, queries: &[&str]) {
        let (vocab, doc, tax) = setup(xml);
        let plans: Vec<CompiledMfa> = queries.iter().map(|q| plan_for(q, &vocab)).collect();
        let refs: Vec<&CompiledMfa> = plans.iter().collect();
        let solo: Vec<_> = refs
            .iter()
            .map(|p| crate::jump::evaluate_jump(&doc, p, &tax))
            .collect();
        for threads in [1, 2, 5] {
            let batch = evaluate_jump_frontier(&doc, &refs, &tax, threads);
            for ((q, solo), batch) in queries.iter().zip(&solo).zip(&batch) {
                match (solo, batch) {
                    (Some((sa, ss)), Some((ba, bs))) => {
                        assert_eq!(sa, ba, "`{q}` answers @ {threads} threads");
                        assert_eq!(
                            ss.nodes_visited, bs.nodes_visited,
                            "`{q}` visits @ {threads} threads"
                        );
                        assert_eq!(bs.tree_passes, 1, "`{q}` passes");
                        assert_eq!(bs.answers, ba.len(), "`{q}` answer counter");
                    }
                    (None, None) => {}
                    other => panic!("`{q}`: solo/batch availability split: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn batch_agrees_with_per_plan_jump() {
        let xml = "<lib><shelf><book><title>x</title></book>\
                   <book><title>y</title></book></shelf>\
                   <shelf><cd><title>x</title></cd></shelf><misc/></lib>";
        check_batch(
            xml,
            &[
                "//book/title",
                "//cd",
                "//book[title = 'x']",
                "//title[. = 'y']",
                "//missing",
                "lib/misc",
                "//shelf//title",
            ],
        );
    }

    #[test]
    fn batch_handles_root_edge_cases() {
        // Root answer, leaf root region, dead root, child-stepping root.
        check_batch("<a/>", &["a", "b", "//a", "."]);
        check_batch(
            "<a><b/><c><b/></c></a>",
            &["a", ".", "a/*", "//*", "a/b", "//b"],
        );
    }

    #[test]
    fn many_selective_plans_share_one_frontier() {
        // 40 sections, each with a unique id value; 8 point queries.
        let body: String = (0..40)
            .map(|i| format!("<sec><id>k{i}</id><data><x/><x/></data></sec>"))
            .collect();
        let xml = format!("<db>{body}</db>");
        let queries: Vec<String> = (0..8)
            .map(|i| format!("//sec[id = 'k{}']", i * 5))
            .collect();
        let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        check_batch(&xml, &refs);
        // Every plan finds exactly its one section.
        let (vocab, doc, tax) = setup(&xml);
        let plans: Vec<CompiledMfa> = refs.iter().map(|q| plan_for(q, &vocab)).collect();
        let plan_refs: Vec<&CompiledMfa> = plans.iter().collect();
        let batch = evaluate_jump_frontier(&doc, &plan_refs, &tax, 3);
        for (q, result) in refs.iter().zip(&batch) {
            let (answers, stats) = result.as_ref().expect("indexed doc: all plans jump");
            assert_eq!(answers.len(), 1, "`{q}`");
            assert!(
                stats.nodes_visited <= 4,
                "`{q}` visited {} nodes",
                stats.nodes_visited
            );
        }
    }

    #[test]
    fn expired_deadline_interrupts_the_sweep_at_any_thread_count() {
        use crate::budget::{Interrupt, WorkBudget};
        use std::time::{Duration, Instant};
        let body: String = (0..60)
            .map(|i| format!("<sec><id>k{i}</id><data><x/></data></sec>"))
            .collect();
        let xml = format!("<db>{body}</db>");
        let (vocab, doc, tax) = setup(&xml);
        let queries: Vec<String> = (0..4).map(|i| format!("//sec[id = 'k{i}']")).collect();
        let plans: Vec<CompiledMfa> = queries.iter().map(|q| plan_for(q, &vocab)).collect();
        let refs: Vec<&CompiledMfa> = plans.iter().collect();
        let budget = WorkBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            cancel: None,
            check_interval: 1,
        };
        for threads in [1, 3] {
            let interrupt = evaluate_jump_frontier_budgeted(&doc, &refs, &tax, threads, &budget)
                .expect_err("an already-expired deadline must interrupt");
            assert_eq!(interrupt.kind, Interrupt::DeadlineExceeded, "@{threads}");
        }
        // A generous budget changes nothing.
        let generous = WorkBudget::with_deadline(Instant::now() + Duration::from_secs(3600));
        let plain = evaluate_jump_frontier(&doc, &refs, &tax, 2);
        let budgeted = evaluate_jump_frontier_budgeted(&doc, &refs, &tax, 2, &generous)
            .expect("a generous deadline never fires");
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn unavailable_plans_report_none() {
        let (vocab, doc, _) = setup("<a><b/></a>");
        let other = Document::parse_str("<a><b/><b/></a>", &vocab).unwrap();
        let stale = TaxIndex::build(&other);
        let plan = plan_for("//b", &vocab);
        let batch = evaluate_jump_frontier(&doc, &[&plan], &stale, 2);
        assert_eq!(batch, vec![None]);
    }
}
