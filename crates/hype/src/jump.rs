//! Jump-scan evaluation: visit O(candidate) nodes instead of O(n).
//!
//! The DOM walker in [`crate::dom`] already *skips* subtrees (dead runs,
//! TAX pruning), but it still walks to every subtree it skips: a highly
//! selective query over a large document pays for the whole tree. This
//! driver turns the pruning metadata into **sub-linear navigation** using
//! the positional label index ([`smoqe_tax::LabelIndex`]):
//!
//! * For the current DFA state, partition the label columns into
//!   **stutters** (`step(s, col) == s`) and **triggers** (everything
//!   else, including transitions to [`DEAD`]). When the wildcard column
//!   stutters, the automaton provably cannot change state anywhere in the
//!   subtree except at trigger-labelled elements — so the driver
//!   binary-searches the trigger occurrence lists for the next candidate
//!   and skips everything between.
//! * Candidates are processed in ascending pre-order; entering or
//!   discarding a candidate always advances the cursor past its whole
//!   subtree (`subtree_end`). That ordering is the soundness argument: by
//!   the time a candidate is reached, every ancestor between it and the
//!   jump origin is a stutter, so the origin state applies verbatim — no
//!   ancestor replay is needed beyond the [`LabelIndex::level`] the stats
//!   use.
//! * States whose wildcard column does **not** stutter (e.g. a child-axis
//!   step where unknown labels kill the run) fall back to stepping the
//!   node's element children directly — still bounded by the candidates'
//!   fan-out, never by the document.
//!
//! TAX pruning applies exactly as in scan mode: a candidate whose stepped
//! state has no label requirement satisfiable within the subtree's
//! descendant-label set is discarded without a visit, and a whole jump
//! region is abandoned early when its trigger set does not even intersect
//! the available labels ([`LabelSet::intersects`] — a word-wise
//! short-circuit, no intersection is materialized).
//!
//! The driver applies to **predicate-free plans whose top NFA compiled to
//! a dense DFA** (the same population as the scan walker's lean
//! `enter_simple` path). Everything else — guarded plans, text
//! predicates, missing index — evaluates in scan mode; the engine's auto
//! mode additionally weighs [`estimated_selectivity`] so unselective
//! queries keep the scan walker's better constants. By construction jump
//! mode enters a subset of the nodes scan mode enters, and produces
//! identical answers (property-tested in `tests/jump_differential.rs`).

use crate::stats::EvalStats;
use smoqe_automata::compile::{CompiledMfa, CompiledNfa, DfaTable, DEAD};
use smoqe_rxpath::NodeSet;
use smoqe_tax::{LabelIndex, TaxIndex};
use smoqe_xml::{Document, Label, LabelSet, NodeId};
use std::rc::Rc;

/// Whether `plan` can execute as a jump scan at all: no predicates, and
/// the top NFA subset-constructed into a dense DFA.
pub fn jump_eligible(plan: &CompiledMfa) -> bool {
    plan.mfa().pred_count() == 0 && plan.nfa(plan.mfa().top()).dfa().is_some()
}

/// Whether a jump evaluation of `plan` over `doc` would actually engage:
/// the plan is eligible and `tax` carries a positional label index
/// describing exactly this document.
pub fn jump_available(doc: &Document, plan: &CompiledMfa, tax: Option<&TaxIndex>) -> bool {
    jump_eligible(plan)
        && tax
            .and_then(TaxIndex::label_index)
            .is_some_and(|li| li.node_count() == doc.node_count())
}

/// Estimated fraction of the document a jump scan would have to consider:
/// the occurrence count of the rarest label **required on every accepting
/// path** from the start state, over the node count.
///
/// `None` when there is no basis for an estimate (no label is required —
/// wildcard-shaped queries match almost everywhere), which auto mode
/// treats as unselective. A dead start state estimates `0.0`: nothing can
/// match, either mode finishes instantly.
pub fn estimated_selectivity(plan: &CompiledMfa, tax: &TaxIndex) -> Option<f64> {
    let li = tax.label_index()?;
    let top = plan.mfa().top();
    let start = plan.mfa().nfa(top).start();
    let req = &plan.nfa(top).required()[start.index()];
    if req.dead {
        return Some(0.0);
    }
    let rarest = req.labels.iter().map(|l| li.occurrences(l).len()).min()?;
    Some(rarest as f64 / li.node_count().max(1) as f64)
}

/// Evaluates an eligible plan by jump scan. Returns `None` when the plan
/// is not eligible or `tax` has no positional index for `doc` (callers
/// fall back to the scan walker).
pub fn evaluate_jump(
    doc: &Document,
    plan: &CompiledMfa,
    tax: &TaxIndex,
) -> Option<(NodeSet, EvalStats)> {
    if !jump_eligible(plan) {
        return None;
    }
    let li = tax.label_index()?;
    if li.node_count() != doc.node_count() {
        return None; // the index describes a different document
    }
    let compiled = plan.nfa(plan.mfa().top());
    let dfa = compiled.dfa().expect("eligible plans have a top DFA");
    let mut driver = Jump {
        doc,
        plan,
        compiled,
        dfa,
        tax,
        li,
        infos: vec![None; dfa.state_count()],
        answers: Vec::new(),
        stats: EvalStats {
            tree_passes: 1,
            ..Default::default()
        },
    };
    // The root is a candidate like any other: step it from the DFA start
    // state (the virtual document node above it is never an answer).
    driver.step_into(doc.root().0, dfa.start());
    let Jump {
        answers, mut stats, ..
    } = driver;
    stats.answers = answers.len();
    stats.immediate_answers = answers.len();
    Some((
        NodeSet::from_sorted(answers.into_iter().map(NodeId).collect()),
        stats,
    ))
}

/// Per-DFA-state jump classification, computed lazily and cached.
struct StateInfo {
    /// The wildcard column stutters and the state is not accepting: the
    /// subtree can be scanned through trigger occurrence lists alone.
    jumpable: bool,
    /// Labels whose column does not stutter in this state (only non-zero
    /// columns can appear; labels interned after plan compilation share
    /// the wildcard column and therefore stutter whenever it does).
    triggers: Vec<Label>,
    /// The same labels as a set, for the `intersects` early-out against a
    /// subtree's descendant labels.
    trigger_set: LabelSet,
}

struct Jump<'a> {
    doc: &'a Document,
    plan: &'a CompiledMfa,
    compiled: &'a CompiledNfa,
    dfa: &'a DfaTable,
    tax: &'a TaxIndex,
    li: &'a LabelIndex,
    infos: Vec<Option<Rc<StateInfo>>>,
    answers: Vec<u32>,
    stats: EvalStats,
}

impl Jump<'_> {
    /// Lazily computes the jump classification of `state`.
    fn info(&mut self, state: u32) -> Rc<StateInfo> {
        if let Some(info) = &self.infos[state as usize] {
            return info.clone();
        }
        let wildcard_stutters = self.dfa.step(state, 0) == state;
        let jumpable = wildcard_stutters && !self.dfa.accept(state);
        let mut triggers = Vec::new();
        let mut trigger_set = LabelSet::default();
        if jumpable {
            for (label, col) in self.plan.referenced_labels() {
                if self.dfa.step(state, col) != state {
                    triggers.push(label);
                    trigger_set.insert(label);
                }
            }
        }
        let info = Rc::new(StateInfo {
            jumpable,
            triggers,
            trigger_set,
        });
        self.infos[state as usize] = Some(info.clone());
        info
    }

    /// Whether any accepting continuation from `state` fits in a subtree
    /// offering `available` labels — the same per-subtree TAX gate the
    /// scan walker's `preview` applies (checking the ε-closed subset
    /// members is equivalent to checking the pre-closure transition
    /// targets: requirements only grow along ε-edges).
    fn satisfiable(&self, state: u32, available: &LabelSet) -> bool {
        let req = self.compiled.required();
        self.dfa
            .members(state)
            .iter()
            .any(|&m| req[m.index()].satisfiable_within(available))
    }

    /// Steps `node` from its parent's `state` and, if the automaton
    /// advances and the TAX gate passes, enters it.
    fn step_into(&mut self, node: u32, state: u32) {
        let id = NodeId(node);
        let label = self.doc.label(id).expect("candidates are elements");
        let next = self.dfa.step(state, self.plan.col(label));
        if next == DEAD {
            self.stats.subtrees_skipped_dead += 1;
            return;
        }
        if !self.satisfiable(next, self.tax.descendant_labels(id)) {
            self.stats.subtrees_pruned_tax += 1;
            return;
        }
        self.enter(node, next);
    }

    /// Visits `node` (stepped to live state `state`), records it if
    /// accepting, and processes its subtree.
    fn enter(&mut self, node: u32, state: u32) {
        let id = NodeId(node);
        self.stats.nodes_visited += 1;
        // The scan walker counts the virtual document frame in its depth.
        self.stats.max_depth = self.stats.max_depth.max(self.li.level(id) as usize + 1);
        if self.dfa.accept(state) {
            self.answers.push(node);
        }
        let lo = node + 1;
        let hi = self.li.subtree_end(id);
        if lo >= hi {
            return; // leaf
        }
        let info = self.info(state);
        if info.jumpable {
            // Word-wise short-circuit intersection test: if no trigger
            // label occurs anywhere below, the state cannot change inside
            // the subtree — and non-accepting stutter states yield no
            // answers — so the whole region is done without a single
            // binary search.
            if !info.trigger_set.intersects(self.tax.descendant_labels(id)) {
                self.stats.subtrees_pruned_tax += 1;
                return;
            }
            self.jump_scan(lo, hi, state, &info);
        } else {
            // Wildcard column moves the state: every child matters. Step
            // the element children directly (bounded by this candidate's
            // fan-out, not by the subtree). `doc` outlives the driver, so
            // iterating it does not hold a borrow of `self`.
            let doc = self.doc;
            for c in doc.child_elements(id) {
                self.step_into(c.0, state);
            }
        }
    }

    /// Scans `[lo, hi)` in state `state` by hopping between trigger
    /// occurrences; everything between provably stutters.
    fn jump_scan(&mut self, lo: u32, hi: u32, state: u32, info: &StateInfo) {
        let mut cursor = lo;
        while cursor < hi {
            // Next trigger occurrence at or after the cursor: min over the
            // per-label sorted lists (k is the handful of labels the plan
            // mentions).
            let mut next = u32::MAX;
            for &label in &info.triggers {
                let list = self.li.occurrences(label);
                let i = list.partition_point(|&x| x < cursor);
                if i < list.len() {
                    next = next.min(list[i]);
                }
            }
            if next >= hi {
                return; // no candidate left in the region
            }
            // All of `next`'s ancestors inside the region stutter: any
            // trigger ancestor would have been the earlier candidate and
            // advanced the cursor past this whole subtree.
            self.step_into(next, state);
            cursor = self.li.subtree_end(NodeId(next));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::{evaluate_mfa_plan, DomOptions};
    use crate::machine::ExecMode;
    use crate::observer::NoopObserver;
    use smoqe_automata::compile;
    use smoqe_rxpath::parse_path;
    use smoqe_xml::Vocabulary;

    /// Jump answers must equal scan answers, visiting no more nodes.
    fn check(xml: &str, query: &str) -> (EvalStats, EvalStats) {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(xml, &vocab).unwrap();
        let tax = TaxIndex::build(&doc);
        let path = parse_path(query, &vocab).unwrap();
        let plan = CompiledMfa::compile(&compile(&path, &vocab));
        let options = DomOptions { tax: Some(&tax) };
        let (scan, scan_stats) =
            evaluate_mfa_plan(&doc, &plan, &options, ExecMode::Compiled, &mut NoopObserver);
        let (jump, jump_stats) =
            evaluate_mfa_plan(&doc, &plan, &options, ExecMode::Jump, &mut NoopObserver);
        assert_eq!(jump, scan, "`{query}` on `{xml}`");
        assert!(
            jump_stats.nodes_visited <= scan_stats.nodes_visited,
            "jump visited {} > scan {} on `{query}`",
            jump_stats.nodes_visited,
            scan_stats.nodes_visited
        );
        (jump_stats, scan_stats)
    }

    #[test]
    fn agrees_on_descendant_queries() {
        let xml = "<a><z><b/><b/><c><b/></c></z><b/><z><y/></z></a>";
        let (j, s) = check(xml, "//b");
        assert!(j.nodes_visited < s.nodes_visited, "jump must skip");
        check(xml, "//c/b");
        check(xml, "//z//b");
        check(xml, "//nothing");
    }

    #[test]
    fn agrees_on_child_paths_and_unions() {
        let xml = "<a><b><c>1</c></b><d><c>2</c></d><b/><e><b><c/></b></e></a>";
        check(xml, "a/b/c");
        check(xml, "a/(b | d)/c");
        check(xml, "a/*/c");
        check(xml, "a/b");
        check(xml, "zzz");
    }

    #[test]
    fn agrees_on_closures_and_recursion() {
        let xml = "<a><b><a><b><a><c/></a></b></a></b><c/></a>";
        check(xml, "(a/b)*/a");
        check(xml, "a/(b/a)*/c");
        check(xml, "//a/c");
    }

    #[test]
    fn wildcard_shaped_queries_stay_correct() {
        // Accepting stutter states (everything matches) must not lose
        // answers: the driver degrades to child-stepping there.
        let xml = "<a><b><c/></b><d/></a>";
        check(xml, "//*");
        check(xml, "a//*");
        check(xml, ".");
    }

    #[test]
    fn guarded_plans_fall_back_to_scan() {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str("<a><b><c/></b><b/></a>", &vocab).unwrap();
        let tax = TaxIndex::build(&doc);
        let path = parse_path("a/b[c]", &vocab).unwrap();
        let plan = CompiledMfa::compile(&compile(&path, &vocab));
        assert!(!jump_eligible(&plan));
        assert!(evaluate_jump(&doc, &plan, &tax).is_none());
        // Through the driver entry point the fallback is transparent.
        let options = DomOptions { tax: Some(&tax) };
        let (jump, _) = evaluate_mfa_plan(&doc, &plan, &options, ExecMode::Jump, &mut NoopObserver);
        let (scan, _) =
            evaluate_mfa_plan(&doc, &plan, &options, ExecMode::Compiled, &mut NoopObserver);
        assert_eq!(jump, scan);
    }

    #[test]
    fn availability_requires_a_matching_label_index() {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str("<a><b/></a>", &vocab).unwrap();
        let other = Document::parse_str("<a><b/><b/></a>", &vocab).unwrap();
        let tax = TaxIndex::build(&other); // wrong document
        let path = parse_path("//b", &vocab).unwrap();
        let plan = CompiledMfa::compile(&compile(&path, &vocab));
        assert!(jump_eligible(&plan));
        assert!(!jump_available(&doc, &plan, Some(&tax)));
        assert!(!jump_available(&doc, &plan, None));
        assert!(jump_available(&other, &plan, Some(&tax)));
    }

    #[test]
    fn selectivity_estimates_rarest_required_label() {
        let vocab = Vocabulary::new();
        let xml = format!("<a>{}<z/></a>", "<b/>".repeat(30));
        let doc = Document::parse_str(&xml, &vocab).unwrap();
        let tax = TaxIndex::build(&doc);
        let plan_for =
            |q: &str| CompiledMfa::compile(&compile(&parse_path(q, &vocab).unwrap(), &vocab));
        let selective = estimated_selectivity(&plan_for("//z"), &tax).unwrap();
        let unselective = estimated_selectivity(&plan_for("//b"), &tax).unwrap();
        assert!(selective < unselective);
        assert!(selective < 0.05, "one z in {} nodes", doc.node_count());
        // No required label -> no basis for an estimate.
        assert!(estimated_selectivity(&plan_for("//*"), &tax).is_none());
    }
}
