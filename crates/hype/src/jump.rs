//! Jump-scan evaluation: visit O(candidate) nodes instead of O(n).
//!
//! The DOM walker in [`crate::dom`] already *skips* subtrees (dead runs,
//! TAX pruning), but it still walks to every subtree it skips: a highly
//! selective query over a large document pays for the whole tree. This
//! driver turns the pruning metadata into **sub-linear navigation** using
//! the positional label index ([`smoqe_tax::LabelIndex`]) and, for value
//! predicates, the text-value posting index ([`smoqe_tax::ValueIndex`]):
//!
//! * Navigation runs on a DFA of the top NFA: the exact subset DFA for
//!   guard-free plans, or the **guard-stripped DFA** for guarded ones
//!   (guards treated as true during subset construction — an
//!   overapproximation, so it may navigate to non-answers but never past
//!   an answer). For the current DFA state, label columns partition into
//!   **stutters** (`step(s, col) == s`) and **triggers** (everything
//!   else, including transitions to [`DEAD`]). When the wildcard column
//!   stutters, the automaton provably cannot change state anywhere in the
//!   subtree except at trigger-labelled elements — so the driver
//!   binary-searches the trigger occurrence lists for the next candidate
//!   and skips everything between.
//! * On guarded plans, answers and guard verdicts are **re-verified
//!   exactly** at each candidate: the guard-aware state set of a node is
//!   reconstructed along its ancestor chain (memoized), `text()='v'`
//!   guards compare the document text, and `HasPath` guards run a
//!   TAX-pruned witness search over the candidate's subtree. Verification
//!   work is counted in [`EvalStats::guard_probes`], not `nodes_visited`.
//! * When a trigger's post-step states are reachable **only** through a
//!   recognized value guard (`text()='v'` shapes, see
//!   [`smoqe_automata::guards`]), the trigger is **narrowed**: instead of
//!   probing every occurrence of the label, the driver probes only the
//!   (label, value) posting lists — plus, for `[b = 'v']` child-witness
//!   guards, the parents of the witness postings. Occurrences outside
//!   those lists provably behave as stutters and are never touched.
//! * Candidates are processed in ascending pre-order; entering or
//!   discarding a candidate always advances the cursor past its whole
//!   subtree (`subtree_end`). That ordering is the soundness argument: by
//!   the time a candidate is reached, every ancestor between it and the
//!   jump origin is a stutter, so the origin state applies verbatim.
//!
//! TAX pruning applies exactly as in scan mode: a candidate whose stepped
//! state has no label requirement satisfiable within the subtree's
//! descendant-label set is discarded without a visit, and a whole jump
//! region is abandoned early when its trigger set does not even intersect
//! the available labels.
//!
//! The driver applies to **plans whose top NFA has a DFA** — exact or
//! guard-stripped. Everything else (subset blow-up past the cap, missing
//! index, streaming input) evaluates in scan mode; the engine's auto mode
//! additionally weighs [`selectivity_estimate`] so unselective queries
//! keep the scan walker's better constants. By construction jump mode
//! enters a subset of the nodes scan mode enters, and produces identical
//! answers (property-tested in `tests/jump_differential.rs`).

use crate::budget::{BudgetMeter, EvalInterrupt, Interrupt, WorkBudget};
use crate::machine::VIRTUAL_NODE;
use crate::stats::EvalStats;
use smoqe_automata::compile::{CompiledMfa, CompiledNfa, DfaTable, DEAD};
use smoqe_automata::guards::{classify_value_guard, ValueGuard};
use smoqe_automata::{NfaId, Pred, PredId, StateId};
use smoqe_rxpath::NodeSet;
use smoqe_tax::{LabelIndex, TaxIndex, ValueIndex};
use smoqe_xml::{Document, Label, LabelSet, NodeId};
use std::collections::HashMap;
use std::rc::Rc;

/// The navigation DFA of `plan`'s top NFA: the exact subset DFA when the
/// NFA is guard-free (`true`), the guard-stripped DFA otherwise (`false` —
/// verdicts must be re-verified guard-aware).
fn nav(plan: &CompiledMfa) -> Option<(&DfaTable, bool)> {
    let top = plan.nfa(plan.mfa().top());
    if let Some(dfa) = top.dfa() {
        return Some((dfa, true));
    }
    top.stripped_dfa().map(|dfa| (dfa, false))
}

/// Whether `plan` can execute as a jump scan at all: the top NFA subset-
/// constructed into a dense DFA, exact or guard-stripped.
pub fn jump_eligible(plan: &CompiledMfa) -> bool {
    nav(plan).is_some()
}

/// Whether a jump evaluation of `plan` over `doc` would actually engage:
/// the plan is eligible and `tax` carries a positional label index
/// describing exactly this document. (The value index is optional — it
/// only narrows triggers; without it, guarded plans still jump on full
/// occurrence lists.)
pub fn jump_available(doc: &Document, plan: &CompiledMfa, tax: Option<&TaxIndex>) -> bool {
    jump_eligible(plan)
        && tax
            .and_then(TaxIndex::label_index)
            .is_some_and(|li| li.node_count() == doc.node_count())
}

/// Outcome of [`selectivity_estimate`]: either a measured candidate
/// fraction, or the reason no number exists. Auto mode treats both
/// non-measured cases as "stay on the scan walker", but callers can now
/// report *why* (the PR 5 heuristic silently returned `None` for a
/// missing index and an estimate-free plan alike).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SelectivityEstimate {
    /// Estimated fraction of the document a jump scan would consider.
    Measured(f64),
    /// No label is required on every accepting path and no trigger list
    /// bounds the candidates: wildcard-shaped, assume unselective.
    NoRequiredLabel,
    /// No positional index describes this document — no basis for an
    /// estimate (and no way to jump).
    NoIndex,
}

impl SelectivityEstimate {
    /// The measured fraction, if one exists.
    pub fn measured(self) -> Option<f64> {
        match self {
            SelectivityEstimate::Measured(f) => Some(f),
            _ => None,
        }
    }
}

/// Estimated fraction of the document a jump scan of `plan` would have to
/// consider, from real occurrence statistics: the minimum of
///
/// * the occurrence count of the rarest label **required on every
///   accepting path** from the start state, and
/// * the total size of the candidate source lists (trigger occurrence
///   lists, or (label, value) posting lists for narrowed triggers) of the
///   root region's state,
///
/// over the node count. The second bound is what makes predicated plans
/// measurable: `//patient[pname = 'Ann']` has an unremarkable required
/// label (`patient`) but a tiny posting list for `(pname, 'Ann')`.
pub fn selectivity_estimate(
    doc: &Document,
    plan: &CompiledMfa,
    tax: Option<&TaxIndex>,
) -> SelectivityEstimate {
    let Some(li) = tax
        .and_then(TaxIndex::label_index)
        .filter(|li| li.node_count() == doc.node_count())
    else {
        return SelectivityEstimate::NoIndex;
    };
    let top = plan.mfa().top();
    let start = plan.mfa().nfa(top).start();
    let req = &plan.nfa(top).required()[start.index()];
    if req.dead {
        return SelectivityEstimate::Measured(0.0);
    }
    let n = li.node_count().max(1) as f64;
    let rarest = req.labels.iter().map(|l| li.occurrences(l).len()).min();
    let triggers = root_region_candidate_total(doc, plan, tax.expect("index present"), li);
    match (rarest, triggers) {
        (None, None) => SelectivityEstimate::NoRequiredLabel,
        (a, b) => {
            let best = a.unwrap_or(usize::MAX).min(b.unwrap_or(usize::MAX));
            SelectivityEstimate::Measured(best as f64 / n)
        }
    }
}

/// Total candidate-source size of the root region, if the root's state is
/// jumpable (`None` otherwise — child-stepping states give no bound).
fn root_region_candidate_total(
    doc: &Document,
    plan: &CompiledMfa,
    tax: &TaxIndex,
    li: &LabelIndex,
) -> Option<usize> {
    let (dfa, exact) = nav(plan)?;
    let vi = tax
        .value_index()
        .filter(|vi| vi.node_count() == doc.node_count());
    let root_label = doc.label(doc.root()).expect("root is an element");
    let q1 = dfa.step(dfa.start(), plan.col(root_label));
    if q1 == DEAD {
        return Some(0);
    }
    let info = trigger_sources(plan, dfa, exact, vi, q1);
    if !info.jumpable {
        return None;
    }
    let mut total = 0usize;
    for src in &info.sources {
        match src {
            TriggerSource::Full(label) => total += li.occurrences(*label).len(),
            TriggerSource::Narrowed {
                label,
                self_values,
                child_values,
            } => {
                let vi = vi.expect("narrowed triggers require a value index");
                for v in self_values {
                    total += vi.occurrences(*label, v).len();
                }
                for (p, v) in child_values {
                    total += vi.occurrences(*p, v).len();
                }
            }
        }
    }
    Some(total)
}

/// How a trigger list sources its candidates — reported by
/// [`start_region_triggers`] for `query --explain`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerKind {
    /// Every occurrence of the label is probed.
    Full,
    /// Only the (label, value) posting list is probed.
    NarrowedValue,
    /// Parents of the (child label, value) posting list are probed.
    ChildEvidence,
}

/// One candidate source of the root region's jump state.
#[derive(Clone, Debug)]
pub struct TriggerInfo {
    /// The indexed label (the trigger label, or the witness child label
    /// for [`TriggerKind::ChildEvidence`]).
    pub label: Label,
    /// The pinned text value, for narrowed sources.
    pub value: Option<String>,
    /// Length of the source list over the whole document.
    pub len: usize,
    /// How candidates are drawn from the list.
    pub kind: TriggerKind,
}

/// The candidate sources a jump evaluation of `plan` would probe in the
/// region under the document root — empty when the plan cannot jump, the
/// index is missing, or the root's state falls back to child-stepping.
pub fn start_region_triggers(
    doc: &Document,
    plan: &CompiledMfa,
    tax: Option<&TaxIndex>,
) -> Vec<TriggerInfo> {
    let Some((dfa, exact)) = nav(plan) else {
        return Vec::new();
    };
    let Some(li) = tax
        .and_then(TaxIndex::label_index)
        .filter(|li| li.node_count() == doc.node_count())
    else {
        return Vec::new();
    };
    let vi = tax
        .and_then(|t| t.value_index())
        .filter(|vi| vi.node_count() == doc.node_count());
    let root_label = doc.label(doc.root()).expect("root is an element");
    let q1 = dfa.step(dfa.start(), plan.col(root_label));
    if q1 == DEAD {
        return Vec::new();
    }
    let info = trigger_sources(plan, dfa, exact, vi, q1);
    if !info.jumpable {
        return Vec::new();
    }
    let mut out = Vec::new();
    for src in &info.sources {
        match src {
            TriggerSource::Full(label) => out.push(TriggerInfo {
                label: *label,
                value: None,
                len: li.occurrences(*label).len(),
                kind: TriggerKind::Full,
            }),
            TriggerSource::Narrowed {
                label,
                self_values,
                child_values,
            } => {
                let vi = vi.expect("narrowed triggers require a value index");
                for v in self_values {
                    out.push(TriggerInfo {
                        label: *label,
                        value: Some(v.clone()),
                        len: vi.occurrences(*label, v).len(),
                        kind: TriggerKind::NarrowedValue,
                    });
                }
                for (p, v) in child_values {
                    out.push(TriggerInfo {
                        label: *p,
                        value: Some(v.clone()),
                        len: vi.occurrences(*p, v).len(),
                        kind: TriggerKind::ChildEvidence,
                    });
                }
            }
        }
    }
    out
}

/// Evaluates an eligible plan by jump scan. Returns `None` when the plan
/// is not eligible or `tax` has no positional index for `doc` (callers
/// fall back to the scan walker).
pub fn evaluate_jump(
    doc: &Document,
    plan: &CompiledMfa,
    tax: &TaxIndex,
) -> Option<(NodeSet, EvalStats)> {
    match evaluate_jump_budgeted(doc, plan, tax, &WorkBudget::unlimited()) {
        None => None,
        Some(Ok(result)) => Some(result),
        Some(Err(_)) => unreachable!("an unlimited budget never interrupts"),
    }
}

/// [`evaluate_jump`] under a [`WorkBudget`]: the driver checks the budget
/// once per probed candidate (and per `HasPath` witness step) and
/// abandons with its partial counters when the budget interrupts. `None`
/// still means "not jump-eligible" — budgeting never changes eligibility.
pub fn evaluate_jump_budgeted(
    doc: &Document,
    plan: &CompiledMfa,
    tax: &TaxIndex,
    budget: &WorkBudget,
) -> Option<Result<(NodeSet, EvalStats), EvalInterrupt>> {
    let (dfa, exact) = nav(plan)?;
    let li = tax.label_index()?;
    if li.node_count() != doc.node_count() {
        return None; // the index describes a different document
    }
    let vi = tax
        .value_index()
        .filter(|vi| vi.node_count() == doc.node_count());
    let mut driver = Jump::new(doc, plan, dfa, exact, tax, li, vi).with_meter(budget.meter());
    // The root is a candidate like any other: step it from the DFA start
    // state (the virtual document node above it is never an answer).
    driver.step_into(doc.root().0, dfa.start());
    if let Some(interrupt) = driver.take_interrupt() {
        return Some(Err(interrupt));
    }
    Some(Ok(driver.finish()))
}

/// One plan's admission to a shared batch jump frontier
/// (see [`crate::frontier`]).
pub(crate) enum FrontierSetup<'a> {
    /// The evaluation already finished during setup: the root step died,
    /// was pruned, the root is a leaf, or its state falls back to
    /// child-stepping (evaluated serially — it cannot share a candidate
    /// frontier).
    Done((NodeSet, EvalStats)),
    /// The root entered a jumpable state: the plan contributes its
    /// region candidates to the shared frontier.
    Region(RegionPlan<'a>),
    /// The work budget interrupted the setup itself (possible on plans
    /// that fall back to child-stepping or verify guards during setup).
    Interrupted(EvalInterrupt),
}

/// A plan whose root region joins a shared jump frontier: everything a
/// worker needs to probe this plan's candidates independently.
pub(crate) struct RegionPlan<'a> {
    doc: &'a Document,
    plan: &'a CompiledMfa,
    dfa: &'a DfaTable,
    exact: bool,
    tax: &'a TaxIndex,
    li: &'a LabelIndex,
    vi: Option<&'a ValueIndex>,
    /// The jumpable DFA state of the root region.
    pub(crate) state: u32,
    /// First pre-order id of the region (root + 1).
    pub(crate) lo: u32,
    /// Ascending, deduplicated candidate ids in the root region — the
    /// exact superset the serial `jump_scan` would consider.
    pub(crate) candidates: Vec<u32>,
    /// Root visit bookkeeping (and the root answer, if any), merged into
    /// the final result.
    setup_answers: Vec<u32>,
    setup_stats: EvalStats,
}

impl<'a> RegionPlan<'a> {
    /// A fresh driver for one frontier chunk of this plan. Drivers are
    /// thread-local (memos, budget meter and all); a plan split across
    /// chunks gets one per chunk.
    pub(crate) fn driver(&self, meter: BudgetMeter) -> Jump<'a> {
        Jump::new(
            self.doc, self.plan, self.dfa, self.exact, self.tax, self.li, self.vi,
        )
        .with_meter(meter)
    }

    /// End of the subtree rooted at `node` (exclusive) — the frontier's
    /// cursor rule: every probed candidate skips its whole subtree.
    pub(crate) fn subtree_end(&self, node: u32) -> u32 {
        self.li.subtree_end(NodeId(node))
    }

    /// Assembles the final result from per-chunk probe outcomes, in
    /// ascending chunk order (probed candidates ascend and skip disjoint
    /// subtrees, so concatenated answers stay sorted).
    pub(crate) fn assemble(&self, chunks: Vec<(Vec<u32>, EvalStats)>) -> (NodeSet, EvalStats) {
        let mut answers = self.setup_answers.clone();
        let mut stats = self.setup_stats;
        for (chunk_answers, chunk_stats) in chunks {
            answers.extend(chunk_answers);
            stats.merge(&chunk_stats);
        }
        stats.tree_passes = 1; // one logical pass, however many chunks
        stats.answers = answers.len();
        stats.immediate_answers = answers.len();
        (
            NodeSet::from_sorted(answers.into_iter().map(NodeId).collect()),
            stats,
        )
    }
}

/// Finishes a setup-time driver, preferring its interrupt (budget fired
/// during setup) over its result.
fn setup_done(driver: Jump<'_>) -> FrontierSetup<'_> {
    match driver.take_interrupt() {
        Some(interrupt) => FrontierSetup::Interrupted(interrupt),
        None => FrontierSetup::Done(driver.finish()),
    }
}

/// Admits `plan` to a shared jump frontier over `doc`: performs the root
/// step (the only part that is not frontier-shaped) and either finishes
/// the evaluation outright or returns the plan's region candidates.
/// `None` means the plan cannot jump at all (no DFA, or no matching
/// positional index) and the caller must evaluate it in scan mode.
pub(crate) fn frontier_setup<'a>(
    doc: &'a Document,
    plan: &'a CompiledMfa,
    tax: &'a TaxIndex,
    meter: BudgetMeter,
) -> Option<FrontierSetup<'a>> {
    let (dfa, exact) = nav(plan)?;
    let li = tax.label_index()?;
    if li.node_count() != doc.node_count() {
        return None;
    }
    let vi = tax
        .value_index()
        .filter(|vi| vi.node_count() == doc.node_count());
    let mut driver = Jump::new(doc, plan, dfa, exact, tax, li, vi).with_meter(meter);
    let root = doc.root();
    let label = doc.label(root).expect("root is an element");
    let state = dfa.step(dfa.start(), plan.col(label));
    // Mirror `step_into` on the root.
    if state == DEAD {
        driver.stats.subtrees_skipped_dead += 1;
        return Some(setup_done(driver));
    }
    if !driver.satisfiable(state, tax.descendant_labels(root)) {
        driver.stats.subtrees_pruned_tax += 1;
        return Some(setup_done(driver));
    }
    let verified = if exact {
        None
    } else {
        let set = driver.exact_set(root.0);
        if set.is_empty() {
            driver.stats.subtrees_skipped_dead += 1;
            return Some(setup_done(driver));
        }
        Some(set)
    };
    // Mirror `enter` on the root, without descending.
    driver.stats.nodes_visited += 1;
    driver.stats.max_depth = driver.stats.max_depth.max(li.level(root) as usize + 1);
    let root_accepts = match &verified {
        None => dfa.accept(state),
        Some(set) => set.binary_search(&driver.accept).is_ok(),
    };
    if root_accepts {
        driver.answers.push(root.0);
    }
    let lo = root.0 + 1;
    let hi = li.subtree_end(root);
    if lo >= hi {
        return Some(setup_done(driver));
    }
    let info = driver.info(state);
    if !info.jumpable {
        // Child-stepping root: no candidate lists to share; finish the
        // whole evaluation here.
        let doc = driver.doc;
        for c in doc.child_elements(root) {
            driver.step_into(c.0, state);
        }
        return Some(setup_done(driver));
    }
    if !info.trigger_set.intersects(tax.descendant_labels(root)) {
        driver.stats.subtrees_pruned_tax += 1;
        return Some(setup_done(driver));
    }
    let candidates = driver.region_candidates(lo, hi, &info);
    if let Some(interrupt) = driver.take_interrupt() {
        return Some(FrontierSetup::Interrupted(interrupt));
    }
    let Jump { answers, stats, .. } = driver;
    Some(FrontierSetup::Region(RegionPlan {
        doc,
        plan,
        dfa,
        exact,
        tax,
        li,
        vi,
        state,
        lo,
        candidates,
        setup_answers: answers,
        setup_stats: stats,
    }))
}

/// How one trigger label of a jumpable state sources its candidates.
#[derive(Clone, Debug)]
enum TriggerSource {
    /// Probe every occurrence of the label.
    Full(Label),
    /// The post-step states are reachable only through recognized value
    /// guards: probe only where one of the value constraints can hold.
    /// Every other occurrence provably behaves as a stutter.
    Narrowed {
        label: Label,
        /// The candidate's own direct text must equal one of these.
        self_values: Vec<String>,
        /// Or a child with the given label must carry the given text.
        child_values: Vec<(Label, String)>,
    },
}

/// Per-DFA-state jump classification, computed lazily and cached.
struct StateInfo {
    /// The wildcard column stutters and the state is not accepting: the
    /// subtree can be scanned through trigger occurrence lists alone.
    jumpable: bool,
    /// Candidate sources, one per trigger label (only non-zero columns
    /// can appear; labels interned after plan compilation share the
    /// wildcard column and therefore stutter whenever it does).
    sources: Vec<TriggerSource>,
    /// All trigger labels as a set, for the `intersects` early-out
    /// against a subtree's descendant labels.
    trigger_set: LabelSet,
}

/// Classifies `state`'s columns into stutters and triggers, narrowing
/// triggers through value postings where sound. Shared by the driver
/// (cached per state) and the selectivity / explain entry points.
fn trigger_sources(
    plan: &CompiledMfa,
    dfa: &DfaTable,
    exact: bool,
    vi: Option<&ValueIndex>,
    state: u32,
) -> StateInfo {
    let wildcard_stutters = dfa.step(state, 0) == state;
    let jumpable = wildcard_stutters && !dfa.accept(state);
    let mut sources = Vec::new();
    let mut trigger_set = LabelSet::default();
    if jumpable {
        for (label, col) in plan.referenced_labels() {
            if dfa.step(state, col) == state {
                continue;
            }
            trigger_set.insert(label);
            sources.push(narrow_trigger(plan, dfa, exact, vi, state, label, col));
        }
    }
    StateInfo {
        jumpable,
        sources,
        trigger_set,
    }
}

/// Decides whether the trigger on `label` in `state` can be narrowed to
/// value posting lists.
///
/// Soundness: let `moved` be the label-step targets of the state's subset
/// members, and close `moved` over every ε-edge **except** recognized
/// value guards (unrecognized guards are crossed — conservative). If
/// every closed state either stays inside the stutter subset
/// `members(state)` or is **inert** (non-accepting, no outgoing
/// consuming transitions — the guard-holding mid states of value
/// predicates are the canonical case), then at any occurrence where no
/// recognized value condition holds the exact state set is a subset of
/// the stutter orbit plus inert states: nothing accepts at the
/// occurrence (the stutter state is non-accepting since jumpable, and
/// inert states are non-accepting by definition), and the evolution
/// below it cannot differ from the plain stutter evolution (inert states
/// contribute no transitions). The occurrence behaves exactly like a
/// stutter and need not be probed. Occurrences where a value condition
/// *can* hold are exactly the (label, value) posting lists — hash
/// collisions only add false positives, and probing a false positive is
/// harmless (verification is exact).
fn narrow_trigger(
    plan: &CompiledMfa,
    dfa: &DfaTable,
    exact: bool,
    vi: Option<&ValueIndex>,
    state: u32,
    label: Label,
    col: usize,
) -> TriggerSource {
    if exact || vi.is_none() {
        return TriggerSource::Full(label);
    }
    let top = plan.mfa().top();
    let compiled = plan.nfa(top);
    let members = dfa.members(state);
    let mut moved: Vec<StateId> = members
        .iter()
        .flat_map(|&s| compiled.row(s, col).iter().copied())
        .collect();
    moved.sort_unstable();
    moved.dedup();
    if moved.is_empty() {
        // A DEAD step still needs probing: the occurrence's subtree must
        // be cursor-skipped, or triggers inside it would be probed at the
        // wrong state.
        return TriggerSource::Full(label);
    }
    // Close over ε-edges, holding recognized value guards back.
    let nfa = plan.mfa().nfa(top);
    let mut seen = vec![false; nfa.state_count()];
    let mut work = moved.clone();
    for s in &work {
        seen[s.index()] = true;
    }
    let mut self_values: Vec<String> = Vec::new();
    let mut child_values: Vec<(Label, String)> = Vec::new();
    while let Some(s) = work.pop() {
        for e in nfa.eps_edges(s) {
            let cross = match e.guard {
                None => true,
                Some(g) => match classify_value_guard(plan.mfa(), g) {
                    Some(ValueGuard::SelfText(v)) => {
                        if !self_values.contains(&v) {
                            self_values.push(v);
                        }
                        false
                    }
                    Some(ValueGuard::ChildText(l, v)) => {
                        let entry = (l, v);
                        if !child_values.contains(&entry) {
                            child_values.push(entry);
                        }
                        false
                    }
                    // Unrecognized guard: assume it may hold anywhere.
                    None => true,
                },
            };
            if cross && !seen[e.target.index()] {
                seen[e.target.index()] = true;
                work.push(e.target);
            }
        }
    }
    let accept = nfa.accept();
    let inert =
        |s: StateId| s != accept && (0..plan.width()).all(|c| compiled.row(s, c).is_empty());
    let escapes = seen.iter().enumerate().filter(|&(_, &s)| s).any(|(i, _)| {
        let s = StateId(i as u32);
        members.binary_search(&s).is_err() && !inert(s)
    });
    if escapes || (self_values.is_empty() && child_values.is_empty()) {
        return TriggerSource::Full(label);
    }
    TriggerSource::Narrowed {
        label,
        self_values,
        child_values,
    }
}

pub(crate) struct Jump<'a> {
    doc: &'a Document,
    plan: &'a CompiledMfa,
    /// Compiled top NFA (rows for exact stepping, required labels).
    compiled: &'a CompiledNfa,
    /// Navigation DFA: exact for guard-free plans, guard-stripped else.
    dfa: &'a DfaTable,
    /// Whether the navigation DFA is exact (no verification needed).
    exact: bool,
    tax: &'a TaxIndex,
    li: &'a LabelIndex,
    vi: Option<&'a ValueIndex>,
    /// The top NFA's accept state (verification checks membership).
    accept: StateId,
    infos: Vec<Option<Rc<StateInfo>>>,
    /// Guard-aware state set per node, reconstructed along ancestor
    /// chains. An empty set means the machine is dormant at the node.
    exact_memo: HashMap<u32, Rc<Vec<StateId>>>,
    /// Guard verdicts per (predicate, node).
    pred_memo: HashMap<(PredId, u32), bool>,
    answers: Vec<u32>,
    stats: EvalStats,
    /// Work-budget countdown, ticked per probed candidate and per
    /// `HasPath` witness step (unarmed by default — one branch).
    meter: BudgetMeter,
    /// Set once the meter fires; every later probe returns immediately,
    /// so the whole recursion unwinds within one check interval.
    interrupted: Option<Interrupt>,
}

impl<'a> Jump<'a> {
    fn new(
        doc: &'a Document,
        plan: &'a CompiledMfa,
        dfa: &'a DfaTable,
        exact: bool,
        tax: &'a TaxIndex,
        li: &'a LabelIndex,
        vi: Option<&'a ValueIndex>,
    ) -> Self {
        let top = plan.mfa().top();
        Jump {
            doc,
            plan,
            compiled: plan.nfa(top),
            dfa,
            exact,
            tax,
            li,
            vi,
            accept: plan.mfa().nfa(top).accept(),
            infos: vec![None; dfa.state_count()],
            exact_memo: HashMap::new(),
            pred_memo: HashMap::new(),
            answers: Vec::new(),
            stats: EvalStats {
                tree_passes: 1,
                ..Default::default()
            },
            meter: BudgetMeter::default(),
            interrupted: None,
        }
    }

    /// Arms this driver with a budget meter.
    fn with_meter(mut self, meter: BudgetMeter) -> Self {
        self.meter = meter;
        self
    }

    /// The interrupt that abandoned this driver, with its partial
    /// counters, if the budget fired.
    pub(crate) fn take_interrupt(&self) -> Option<EvalInterrupt> {
        self.interrupted.map(|kind| EvalInterrupt {
            kind,
            stats: self.stats,
        })
    }

    /// Lazily computes the jump classification of `state`.
    fn info(&mut self, state: u32) -> Rc<StateInfo> {
        if let Some(info) = &self.infos[state as usize] {
            return info.clone();
        }
        let info = Rc::new(trigger_sources(
            self.plan, self.dfa, self.exact, self.vi, state,
        ));
        self.infos[state as usize] = Some(info.clone());
        info
    }

    /// Whether any accepting continuation from `state` fits in a subtree
    /// offering `available` labels — the same per-subtree TAX gate the
    /// scan walker's `preview` applies (checking the ε-closed subset
    /// members is equivalent to checking the pre-closure transition
    /// targets: requirements only grow along ε-edges).
    fn satisfiable(&self, state: u32, available: &LabelSet) -> bool {
        let req = self.compiled.required();
        self.dfa
            .members(state)
            .iter()
            .any(|&m| req[m.index()].satisfiable_within(available))
    }

    // -- guard-aware verification ------------------------------------------

    /// The exact (guard-aware) top-NFA state set at `node`, reconstructed
    /// along the ancestor chain and memoized. Empty means every run is
    /// dormant at the node — nothing at or below it can match.
    fn exact_set(&mut self, node: u32) -> Rc<Vec<StateId>> {
        if let Some(s) = self.exact_memo.get(&node) {
            return s.clone();
        }
        // Walk up to the nearest memoized ancestor (or the virtual node),
        // then fold the chain back down. Iterative: document depth may
        // exceed the stack.
        let mut chain: Vec<u32> = Vec::new();
        let mut cur = node;
        let mut set: Rc<Vec<StateId>> = loop {
            if let Some(s) = self.exact_memo.get(&cur) {
                break s.clone();
            }
            chain.push(cur);
            if cur == VIRTUAL_NODE {
                // Base case: guard-aware start closure at the virtual
                // document node (matching `Machine::begin`).
                let top = self.plan.mfa().top();
                let start = self.plan.mfa().nfa(top).start();
                let base = self.close_guard_aware(top, vec![start], VIRTUAL_NODE);
                let rc = Rc::new(base);
                self.exact_memo.insert(VIRTUAL_NODE, rc.clone());
                chain.pop();
                break rc;
            }
            cur = self
                .doc
                .parent(NodeId(cur))
                .map(|p| p.0)
                .unwrap_or(VIRTUAL_NODE);
        };
        for &n in chain.iter().rev() {
            let computed = if set.is_empty() {
                Vec::new() // dormancy is hereditary
            } else {
                let label = self.doc.label(NodeId(n)).expect("elements only");
                let col = self.plan.col(label);
                let mut seed: Vec<StateId> = set
                    .iter()
                    .flat_map(|&s| self.compiled.row(s, col).iter().copied())
                    .collect();
                seed.sort_unstable();
                seed.dedup();
                if seed.is_empty() {
                    Vec::new()
                } else {
                    let top = self.plan.mfa().top();
                    self.close_guard_aware(top, seed, n)
                }
            };
            let rc = Rc::new(computed);
            self.exact_memo.insert(n, rc.clone());
            set = rc;
        }
        set
    }

    /// Guard-aware ε-closure of `seed` in `nfa_id` at `node`: guarded
    /// edges are crossed iff their predicate holds at the node. Returns a
    /// sorted state set.
    fn close_guard_aware(&mut self, nfa_id: NfaId, seed: Vec<StateId>, node: u32) -> Vec<StateId> {
        let plan: &'a CompiledMfa = self.plan;
        let nfa = plan.mfa().nfa(nfa_id);
        let mut seen = vec![false; nfa.state_count()];
        let mut out = Vec::new();
        let mut work = seed;
        for s in &work {
            seen[s.index()] = true;
        }
        while let Some(s) = work.pop() {
            out.push(s);
            for e in nfa.eps_edges(s) {
                if seen[e.target.index()] {
                    continue;
                }
                let cross = match e.guard {
                    None => true,
                    Some(g) => self.holds(g, node),
                };
                if cross {
                    seen[e.target.index()] = true;
                    work.push(e.target);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Whether predicate `pred` holds at `node` (memoized). Matches the
    /// machine's semantics exactly: `text()='v'` compares the node's
    /// direct text (the virtual node has none), `HasPath` searches the
    /// node's subtree for a witness.
    fn holds(&mut self, pred: PredId, node: u32) -> bool {
        if let Some(&v) = self.pred_memo.get(&(pred, node)) {
            return v;
        }
        self.stats.guard_probes += 1;
        let plan: &'a CompiledMfa = self.plan;
        let v = match plan.mfa().pred(pred) {
            Pred::True => true,
            Pred::TextEq(t) => {
                if node == VIRTUAL_NODE {
                    t.is_empty()
                } else {
                    self.doc.direct_text_cow(NodeId(node)).as_ref() == t.as_str()
                }
            }
            Pred::HasPath(sub) => self.has_path(*sub, node),
            Pred::Not(p) => !self.holds(*p, node),
            Pred::And(ps) => ps.iter().all(|&p| self.holds(p, node)),
            Pred::Or(ps) => ps.iter().any(|&p| self.holds(p, node)),
        };
        self.pred_memo.insert((pred, node), v);
        v
    }

    /// Whether a downward path from `origin` matches sub-NFA `sub`:
    /// TAX-pruned subset simulation over the subtree, accepting at the
    /// origin itself for nullable paths (the machine's accept-at-spawn).
    fn has_path(&mut self, sub: NfaId, origin: u32) -> bool {
        let plan: &'a CompiledMfa = self.plan;
        let nfa = plan.mfa().nfa(sub);
        let compiled_sub = plan.nfa(sub);
        let accept = nfa.accept();
        let start_set = self.close_guard_aware(sub, vec![nfa.start()], origin);
        if start_set.binary_search(&accept).is_ok() {
            return true;
        }
        let mut stack: Vec<(u32, Vec<StateId>)> = vec![(origin, start_set)];
        while let Some((n, set)) = stack.pop() {
            // Witness walks can span whole hidden subtrees; tick so a
            // deadline cuts them off like any other traversal (the
            // caller's verdict is discarded along with the evaluation).
            if let Some(kind) = self.meter.tick() {
                self.interrupted = Some(kind);
                return false;
            }
            let children: Vec<NodeId> = if n == VIRTUAL_NODE {
                vec![self.doc.root()]
            } else {
                self.doc.child_elements(NodeId(n)).collect()
            };
            for c in children {
                let label = self.doc.label(c).expect("child_elements yields elements");
                let col = plan.col(label);
                let mut seed: Vec<StateId> = set
                    .iter()
                    .flat_map(|&s| compiled_sub.row(s, col).iter().copied())
                    .collect();
                if seed.is_empty() {
                    continue; // the run is dormant below this child
                }
                seed.sort_unstable();
                seed.dedup();
                let closed = self.close_guard_aware(sub, seed, c.0);
                if closed.binary_search(&accept).is_ok() {
                    return true;
                }
                // Descend only if an accepting continuation fits below.
                let req = compiled_sub.required();
                let avail = self.tax.descendant_labels(c);
                if closed
                    .iter()
                    .any(|&s| req[s.index()].satisfiable_within(avail))
                {
                    stack.push((c.0, closed));
                }
            }
        }
        false
    }

    // -- navigation --------------------------------------------------------

    /// Steps `node` from its parent's `state` and, if the automaton
    /// advances and the TAX gate passes, enters it. On guarded plans the
    /// exact state set is reconstructed first: a guard-dead node is
    /// skipped wholesale, exactly like a DEAD step (and like the scan
    /// walker, which never enters it either).
    pub(crate) fn step_into(&mut self, node: u32, state: u32) {
        if self.interrupted.is_some() {
            return;
        }
        if let Some(kind) = self.meter.tick() {
            self.interrupted = Some(kind);
            return;
        }
        let id = NodeId(node);
        let label = self.doc.label(id).expect("candidates are elements");
        let next = self.dfa.step(state, self.plan.col(label));
        if next == DEAD {
            self.stats.subtrees_skipped_dead += 1;
            return;
        }
        if !self.satisfiable(next, self.tax.descendant_labels(id)) {
            self.stats.subtrees_pruned_tax += 1;
            return;
        }
        if self.exact {
            self.enter(node, next, None);
        } else {
            let set = self.exact_set(node);
            if set.is_empty() {
                self.stats.subtrees_skipped_dead += 1;
                return;
            }
            self.enter(node, next, Some(set));
        }
    }

    /// Visits `node` (stepped to live navigation state `state`), records
    /// it if accepting — per the DFA when exact, per the verified state
    /// set otherwise — and processes its subtree.
    fn enter(&mut self, node: u32, state: u32, verified: Option<Rc<Vec<StateId>>>) {
        let id = NodeId(node);
        self.stats.nodes_visited += 1;
        // The scan walker counts the virtual document frame in its depth.
        self.stats.max_depth = self.stats.max_depth.max(self.li.level(id) as usize + 1);
        let accepting = match &verified {
            None => self.dfa.accept(state),
            Some(set) => set.binary_search(&self.accept).is_ok(),
        };
        if accepting {
            self.answers.push(node);
        }
        let lo = node + 1;
        let hi = self.li.subtree_end(id);
        if lo >= hi {
            return; // leaf
        }
        let info = self.info(state);
        if info.jumpable {
            // Word-wise short-circuit intersection test: if no trigger
            // label occurs anywhere below, the state cannot change inside
            // the subtree — and non-accepting stutter states yield no
            // answers — so the whole region is done without a single
            // binary search.
            if !info.trigger_set.intersects(self.tax.descendant_labels(id)) {
                self.stats.subtrees_pruned_tax += 1;
                return;
            }
            self.jump_scan(lo, hi, state, &info);
        } else {
            // Wildcard column moves the state: every child matters. Step
            // the element children directly (bounded by this candidate's
            // fan-out, not by the subtree). `doc` outlives the driver, so
            // iterating it does not hold a borrow of `self`.
            let doc = self.doc;
            for c in doc.child_elements(id) {
                self.step_into(c.0, state);
            }
        }
    }

    /// Scans `[lo, hi)` in state `state` by hopping between candidate
    /// occurrences; everything between provably stutters.
    fn jump_scan(&mut self, lo: u32, hi: u32, state: u32, info: &StateInfo) {
        // Child-evidence candidates are materialized for the region up
        // front: witness postings map to *parents*, which can precede
        // later witnesses in pre-order — a merged cursor over the raw
        // evidence lists would probe ancestors after their descendants
        // and break the ascending-candidate invariant.
        let evidence = self.evidence_candidates(lo, hi, info);
        // Per-source sorted lists (a handful — the labels and values the
        // plan mentions) with monotone cursors: the region cursor only
        // ever advances, so each list index advances amortized O(1)
        // instead of restarting a binary search per candidate.
        let li = self.li;
        let vi = self.vi;
        let mut lists: Vec<&[u32]> = Vec::with_capacity(info.sources.len() + 1);
        for src in &info.sources {
            match src {
                TriggerSource::Full(label) => lists.push(li.occurrences(*label)),
                TriggerSource::Narrowed {
                    label, self_values, ..
                } => {
                    let vi = vi.expect("narrowed triggers require a value index");
                    for v in self_values {
                        lists.push(vi.occurrences(*label, v));
                    }
                }
            }
        }
        lists.push(&evidence);
        let mut idx: Vec<usize> = lists
            .iter()
            .map(|list| list.partition_point(|&x| x < lo))
            .collect();
        let mut cursor = lo;
        while cursor < hi {
            // Next candidate at or after the cursor: min over the lists.
            let mut next = u32::MAX;
            for (list, i) in lists.iter().zip(idx.iter_mut()) {
                while *i < list.len() && list[*i] < cursor {
                    *i += 1;
                }
                if *i < list.len() {
                    next = next.min(list[*i]);
                }
            }
            if next >= hi {
                return; // no candidate left in the region
            }
            // All of `next`'s ancestors inside the region stutter: any
            // probed ancestor would have been the earlier candidate and
            // advanced the cursor past this whole subtree, and narrowed-
            // out occurrences provably behave as stutters.
            self.step_into(next, state);
            if self.interrupted.is_some() {
                return;
            }
            cursor = self.li.subtree_end(NodeId(next));
        }
    }

    /// Sorted, deduplicated candidates in `[lo, hi)` drawn from child-
    /// witness postings: parents (with the trigger label) of witness
    /// occurrences in the region.
    fn evidence_candidates(&self, lo: u32, hi: u32, info: &StateInfo) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for src in &info.sources {
            let TriggerSource::Narrowed {
                label,
                child_values,
                ..
            } = src
            else {
                continue;
            };
            let vi = self.vi.expect("narrowed triggers require a value index");
            for (p, v) in child_values {
                let list = vi.occurrences(*p, v);
                let a = list.partition_point(|&x| x < lo);
                let b = list.partition_point(|&x| x < hi);
                for &e in &list[a..b] {
                    let Some(parent) = self.doc.parent(NodeId(e)) else {
                        continue;
                    };
                    // The candidate is the witness's parent — probe it
                    // only when it is an occurrence of the trigger label
                    // inside this region.
                    if parent.0 >= lo && self.doc.label(parent) == Some(*label) {
                        out.push(parent.0);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All candidates of one jumpable region, materialized: full trigger
    /// occurrences, narrowed self postings, and child-witness evidence
    /// parents, restricted to `[lo, hi)`, ascending and deduplicated.
    /// `jump_scan`'s incremental min-probe considers exactly this set —
    /// the frontier materializes it to merge candidates across plans.
    fn region_candidates(&self, lo: u32, hi: u32, info: &StateInfo) -> Vec<u32> {
        let mut out = self.evidence_candidates(lo, hi, info);
        let push_range = |out: &mut Vec<u32>, list: &[u32]| {
            let a = list.partition_point(|&x| x < lo);
            let b = list.partition_point(|&x| x < hi);
            out.extend_from_slice(&list[a..b]);
        };
        for src in &info.sources {
            match src {
                TriggerSource::Full(label) => {
                    push_range(&mut out, self.li.occurrences(*label));
                }
                TriggerSource::Narrowed {
                    label, self_values, ..
                } => {
                    let vi = self.vi.expect("narrowed triggers require a value index");
                    for v in self_values {
                        push_range(&mut out, vi.occurrences(*label, v));
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Consumes the driver into its final `(answers, stats)` pair with
    /// answer counters filled in.
    fn finish(self) -> (NodeSet, EvalStats) {
        let Jump {
            answers, mut stats, ..
        } = self;
        stats.answers = answers.len();
        stats.immediate_answers = answers.len();
        (
            NodeSet::from_sorted(answers.into_iter().map(NodeId).collect()),
            stats,
        )
    }

    /// Consumes the driver into raw per-chunk outputs (for
    /// [`RegionPlan::assemble`], which fills the counters in).
    pub(crate) fn into_parts(self) -> (Vec<u32>, EvalStats) {
        (self.answers, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::{evaluate_mfa_plan, DomOptions};
    use crate::machine::ExecMode;
    use crate::observer::NoopObserver;
    use smoqe_automata::compile;
    use smoqe_rxpath::parse_path;
    use smoqe_xml::Vocabulary;

    /// Jump answers must equal scan answers, visiting no more nodes.
    fn check(xml: &str, query: &str) -> (EvalStats, EvalStats) {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(xml, &vocab).unwrap();
        let tax = TaxIndex::build(&doc);
        let path = parse_path(query, &vocab).unwrap();
        let plan = CompiledMfa::compile(&compile(&path, &vocab));
        let options = DomOptions { tax: Some(&tax) };
        let (scan, scan_stats) =
            evaluate_mfa_plan(&doc, &plan, &options, ExecMode::Compiled, &mut NoopObserver);
        let (jump, jump_stats) =
            evaluate_mfa_plan(&doc, &plan, &options, ExecMode::Jump, &mut NoopObserver);
        assert_eq!(jump, scan, "`{query}` on `{xml}`");
        assert!(
            jump_stats.nodes_visited <= scan_stats.nodes_visited,
            "jump visited {} > scan {} on `{query}`",
            jump_stats.nodes_visited,
            scan_stats.nodes_visited
        );
        (jump_stats, scan_stats)
    }

    #[test]
    fn agrees_on_descendant_queries() {
        let xml = "<a><z><b/><b/><c><b/></c></z><b/><z><y/></z></a>";
        let (j, s) = check(xml, "//b");
        assert!(j.nodes_visited < s.nodes_visited, "jump must skip");
        check(xml, "//c/b");
        check(xml, "//z//b");
        check(xml, "//nothing");
    }

    #[test]
    fn agrees_on_child_paths_and_unions() {
        let xml = "<a><b><c>1</c></b><d><c>2</c></d><b/><e><b><c/></b></e></a>";
        check(xml, "a/b/c");
        check(xml, "a/(b | d)/c");
        check(xml, "a/*/c");
        check(xml, "a/b");
        check(xml, "zzz");
    }

    #[test]
    fn agrees_on_closures_and_recursion() {
        let xml = "<a><b><a><b><a><c/></a></b></a></b><c/></a>";
        check(xml, "(a/b)*/a");
        check(xml, "a/(b/a)*/c");
        check(xml, "//a/c");
    }

    #[test]
    fn wildcard_shaped_queries_stay_correct() {
        // Accepting stutter states (everything matches) must not lose
        // answers: the driver degrades to child-stepping there.
        let xml = "<a><b><c/></b><d/></a>";
        check(xml, "//*");
        check(xml, "a//*");
        check(xml, ".");
    }

    #[test]
    fn guarded_plans_are_eligible_and_verified() {
        let xml = "<a><b><c/></b><b/><b><d/><c/></b></a>";
        check(xml, "a/b[c]");
        check(xml, "//b[c]");
        check(xml, "a/b[not(c)]");
        check(xml, "a/b[c and d]");
        check(xml, "a/b[c or d]");
        check(xml, "//b[c]/c");
    }

    #[test]
    fn text_predicates_agree() {
        let xml = "<a><b>x</b><b>y</b><c><b>x</b></c><b><d>x</d></b></a>";
        check(xml, "//b[. = 'x']");
        check(xml, "a/b[. = 'y']");
        check(xml, "//b[d = 'x']");
        check(xml, "//b[. = 'missing']");
        check(xml, "//b[not(. = 'x')]");
    }

    #[test]
    fn guard_dead_subtrees_are_skipped_without_visits() {
        // `a[. = 'v']/b`: when the text guard fails, the scan walker goes
        // dormant below `a` — jump must not visit the `b`s either.
        let xml = "<r><a>v<b/><b/></a><a>w<b/><b/></a></r>";
        let (j, s) = check(xml, "//a[. = 'v']/b");
        assert!(j.nodes_visited <= s.nodes_visited);
        // Only the matching a's subtree contributes candidate visits.
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(xml, &vocab).unwrap();
        let tax = TaxIndex::build(&doc);
        let path = parse_path("//a[. = 'v']/b", &vocab).unwrap();
        let plan = CompiledMfa::compile(&compile(&path, &vocab));
        let (answers, _) = evaluate_jump(&doc, &plan, &tax).unwrap();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn narrowed_triggers_probe_only_posting_lists() {
        // 30 b's with text "x", one with "y": a narrowed trigger probes
        // only the (b, 'y') posting list, not every b.
        let xml = format!("<a>{}<b>y</b></a>", "<b>x</b>".repeat(30));
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(&xml, &vocab).unwrap();
        let tax = TaxIndex::build(&doc);
        let path = parse_path("//b[. = 'y']", &vocab).unwrap();
        let plan = CompiledMfa::compile(&compile(&path, &vocab));
        let (answers, stats) = evaluate_jump(&doc, &plan, &tax).unwrap();
        assert_eq!(answers.len(), 1);
        assert!(
            stats.nodes_visited <= 3,
            "narrowed probe visited {} nodes",
            stats.nodes_visited
        );
        let (_, j) = check(&xml, "//b[. = 'y']");
        assert!(j.nodes_visited > 10, "scan walks all the bs");
    }

    #[test]
    fn child_evidence_candidates_follow_witness_postings() {
        // `//p[n = 'Ann']` with many p's: only parents of (n, 'Ann')
        // witnesses are probed.
        let xml = format!(
            "<r>{}<p><n>Ann</n><x/></p></r>",
            "<p><n>Bob</n><x/></p>".repeat(20)
        );
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(&xml, &vocab).unwrap();
        let tax = TaxIndex::build(&doc);
        let path = parse_path("//p[n = 'Ann']", &vocab).unwrap();
        let plan = CompiledMfa::compile(&compile(&path, &vocab));
        let (answers, stats) = evaluate_jump(&doc, &plan, &tax).unwrap();
        assert_eq!(answers.len(), 1);
        assert!(
            stats.nodes_visited <= 3,
            "evidence probe visited {} nodes",
            stats.nodes_visited
        );
        check(&xml, "//p[n = 'Ann']");
    }

    #[test]
    fn availability_requires_a_matching_label_index() {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str("<a><b/></a>", &vocab).unwrap();
        let other = Document::parse_str("<a><b/><b/></a>", &vocab).unwrap();
        let tax = TaxIndex::build(&other); // wrong document
        let path = parse_path("//b", &vocab).unwrap();
        let plan = CompiledMfa::compile(&compile(&path, &vocab));
        assert!(jump_eligible(&plan));
        assert!(!jump_available(&doc, &plan, Some(&tax)));
        assert!(!jump_available(&doc, &plan, None));
        assert!(jump_available(&other, &plan, Some(&tax)));
    }

    #[test]
    fn selectivity_measures_posting_lists_for_predicated_plans() {
        let vocab = Vocabulary::new();
        let xml = format!("<a>{}<b>rare</b><z/></a>", "<b>common</b>".repeat(30));
        let doc = Document::parse_str(&xml, &vocab).unwrap();
        let tax = TaxIndex::build(&doc);
        let plan_for =
            |q: &str| CompiledMfa::compile(&compile(&parse_path(q, &vocab).unwrap(), &vocab));
        let est = |q: &str| selectivity_estimate(&doc, &plan_for(q), Some(&tax));
        let selective = est("//z").measured().unwrap();
        let unselective = est("//b").measured().unwrap();
        assert!(selective < unselective);
        assert!(selective < 0.05, "one z in {} nodes", doc.node_count());
        // The narrowed predicated plan measures its posting list, far
        // below the label-count bound.
        let predicated = est("//b[. = 'rare']").measured().unwrap();
        assert!(
            predicated < unselective,
            "predicated {predicated} >= label bound {unselective}"
        );
        assert!(predicated < 0.05);
        // No required label and no trigger bound -> explicit reason.
        assert_eq!(est("//*"), SelectivityEstimate::NoRequiredLabel);
        // Missing index -> explicit reason, not a silent default.
        assert_eq!(
            selectivity_estimate(&doc, &plan_for("//z"), None),
            SelectivityEstimate::NoIndex
        );
    }

    #[test]
    fn start_region_triggers_report_sources() {
        let vocab = Vocabulary::new();
        let xml = format!("<a>{}<b>rare</b><z/></a>", "<b>common</b>".repeat(30));
        let doc = Document::parse_str(&xml, &vocab).unwrap();
        let tax = TaxIndex::build(&doc);
        let plan_for =
            |q: &str| CompiledMfa::compile(&compile(&parse_path(q, &vocab).unwrap(), &vocab));
        let full = start_region_triggers(&doc, &plan_for("//z"), Some(&tax));
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].kind, TriggerKind::Full);
        assert_eq!(full[0].len, 1);
        let narrowed = start_region_triggers(&doc, &plan_for("//b[. = 'rare']"), Some(&tax));
        assert_eq!(narrowed.len(), 1);
        assert_eq!(narrowed[0].kind, TriggerKind::NarrowedValue);
        assert_eq!(narrowed[0].value.as_deref(), Some("rare"));
        assert_eq!(narrowed[0].len, 1);
        assert!(start_region_triggers(&doc, &plan_for("//z"), None).is_empty());
    }
}
