//! HyPE in StAX mode: evaluate an MFA in one sequential scan.
//!
//! Paper §2: *"in StAX mode the document does not need to be loaded into
//! memory and only one sequential scan of the document from disk is needed
//! for the evaluation"*. The same [`Machine`](crate::machine::Machine)
//! core runs over pull-parser events; differences from DOM mode:
//!
//! * node ids are assigned by a document-order counter that mirrors
//!   [`smoqe_xml::TreeBuilder`]'s numbering (adjacent text events are
//!   coalesced into one id, exactly like the builder merges them), so
//!   stream answers are directly comparable to DOM answers;
//! * `text()='c'` predicates accumulate character data until their origin
//!   element closes;
//! * subtrees whose runs all died are skipped *logically* (the events are
//!   still read — it is a sequential scan — but no automaton work is
//!   done);
//! * answers can be emitted as serialized XML: candidate subtrees are
//!   buffered while their predicates are pending and emitted or discarded
//!   on resolution — the memory HyPE needs beyond the parser is
//!   O(depth + buffered candidates), which experiment E4 measures.
//!
//! The driver itself lives in [`crate::batch`]: a single-plan evaluation
//! is the 1-lane special case of the batched evaluator, so both paths
//! share one implementation.

use crate::batch::{
    evaluate_batch_stream_plans_budgeted, evaluate_batch_stream_plans_with,
    evaluate_batch_stream_with,
};
use crate::budget::{DriverError, WorkBudget};
use crate::machine::ExecMode;
use crate::observer::{EvalObserver, NoopObserver};
use crate::stats::EvalStats;
use smoqe_automata::compile::CompiledMfa;
use smoqe_automata::Mfa;
use smoqe_xml::{Vocabulary, XmlError};
use std::io::BufRead;

/// Result of a streaming evaluation.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Answer node ids (document-order numbering, matching DOM NodeIds).
    pub answers: Vec<u32>,
    /// Serialized answer subtrees in document order (when requested).
    pub answer_xml: Option<Vec<String>>,
    /// Evaluation statistics.
    pub stats: EvalStats,
    /// Peak bytes buffered for unresolved candidates.
    pub peak_buffered_bytes: usize,
    /// Total parser events processed.
    pub events: usize,
}

/// Options for streaming evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamOptions {
    /// Buffer and return the serialized XML of each answer subtree.
    pub want_xml: bool,
}

/// Evaluates `mfa` over the XML text arriving from `reader`.
pub fn evaluate_stream<R: BufRead>(
    reader: R,
    mfa: &Mfa,
    vocab: &Vocabulary,
    options: StreamOptions,
) -> Result<StreamOutcome, XmlError> {
    evaluate_stream_with(reader, mfa, vocab, options, &mut NoopObserver)
}

/// Evaluates `mfa` over a string slice (convenience).
pub fn evaluate_stream_str(
    input: &str,
    mfa: &Mfa,
    vocab: &Vocabulary,
    options: StreamOptions,
) -> Result<StreamOutcome, XmlError> {
    evaluate_stream(input.as_bytes(), mfa, vocab, options)
}

/// Full-control variant with an observer.
pub fn evaluate_stream_with<R: BufRead>(
    reader: R,
    mfa: &Mfa,
    vocab: &Vocabulary,
    options: StreamOptions,
    observer: &mut dyn EvalObserver,
) -> Result<StreamOutcome, XmlError> {
    let mut observers: [&mut dyn EvalObserver; 1] = [observer];
    let out = evaluate_batch_stream_with(reader, &[mfa], vocab, options, &mut observers)?;
    Ok(out
        .outcomes
        .into_iter()
        .next()
        .expect("one plan in, one outcome out"))
}

/// Evaluates a precompiled plan — the engine's streaming path. `mode`
/// selects the dense-table executor or the per-event interpreter.
pub fn evaluate_stream_plan_with<R: BufRead>(
    reader: R,
    plan: &CompiledMfa,
    vocab: &Vocabulary,
    options: StreamOptions,
    mode: ExecMode,
    observer: &mut dyn EvalObserver,
) -> Result<StreamOutcome, XmlError> {
    let mut observers: [&mut dyn EvalObserver; 1] = [observer];
    let out =
        evaluate_batch_stream_plans_with(reader, &[(plan, options)], vocab, mode, &mut observers)?;
    Ok(out
        .outcomes
        .into_iter()
        .next()
        .expect("one plan in, one outcome out"))
}

/// [`evaluate_stream_plan_with`] under a [`WorkBudget`] (the 1-lane
/// special case of [`evaluate_batch_stream_plans_budgeted`]): the scan
/// checks the budget once per parser event and abandons with the partial
/// counters when the deadline passes or the cancel token flips.
pub fn evaluate_stream_plan_budgeted<R: BufRead>(
    reader: R,
    plan: &CompiledMfa,
    vocab: &Vocabulary,
    options: StreamOptions,
    mode: ExecMode,
    observer: &mut dyn EvalObserver,
    budget: &WorkBudget,
) -> Result<StreamOutcome, DriverError> {
    let mut observers: [&mut dyn EvalObserver; 1] = [observer];
    let out = evaluate_batch_stream_plans_budgeted(
        reader,
        &[(plan, options)],
        vocab,
        mode,
        &mut observers,
        budget,
    )?;
    Ok(out
        .outcomes
        .into_iter()
        .next()
        .expect("one plan in, one outcome out"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::evaluate_mfa;
    use smoqe_automata::compile;
    use smoqe_rxpath::parse_path;
    use smoqe_xml::Document;

    fn check(xml: &str, query: &str) -> StreamOutcome {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(xml, &vocab).unwrap();
        let path = parse_path(query, &vocab).unwrap();
        let mfa = compile(&path, &vocab);
        let (dom_answers, _) = evaluate_mfa(&doc, &mfa);
        let out = evaluate_stream_str(xml, &mfa, &vocab, StreamOptions { want_xml: true }).unwrap();
        let dom_ids: Vec<u32> = dom_answers.iter().map(|n| n.0).collect();
        assert_eq!(out.answers, dom_ids, "query `{query}` on `{xml}`");
        // The serialized answers must match DOM subtree serialization.
        let xmls = out.answer_xml.as_ref().unwrap();
        for (i, n) in dom_answers.iter().enumerate() {
            assert_eq!(
                xmls[i],
                smoqe_xml::serialize::subtree_to_string(&doc, n),
                "answer {i} of `{query}`"
            );
        }
        out
    }

    #[test]
    fn stream_matches_dom_simple() {
        check("<a><b>1</b><c>2</c><b>3</b></a>", "a/b");
        check("<a><b/><c/></a>", "a/*");
        check("<a><b/></a>", "zzz");
    }

    #[test]
    fn stream_matches_dom_descendants() {
        check("<a><b><c>x</c></b><c>y</c></a>", "//c");
        check("<a><b><a><b><a/></b></a></b></a>", "(a/b)*/a");
    }

    #[test]
    fn stream_matches_dom_predicates() {
        let doc = "<a><b><c>yes</c></b><b><d/></b><b><c>no</c></b></a>";
        check(doc, "a/b[c]");
        check(doc, "a/b[c = 'yes']");
        check(doc, "a/b[not(c)]");
        check(doc, "a/b[text() = 'yes']");
    }

    #[test]
    fn text_accumulation_uses_direct_text() {
        // Direct text of the first b is "xy" (around <c/>); text inside
        // children does not count.
        check(
            "<a><b>x<c>NO</c>y</b><b><c>xy</c></b></a>",
            "a/b[text() = 'xy']",
        );
        check("<a><b>x<c>NO</c>y</b></a>", "a/b[text() = 'xNOy']");
    }

    #[test]
    fn buffered_candidate_discarded_on_false_predicate() {
        let out = check("<a><b><x/><w0/></b><b><x/></b></a>", "a/b[w]/x");
        assert_eq!(out.answers.len(), 0);
    }

    #[test]
    fn buffered_candidate_kept_on_true_predicate() {
        let out = check("<a><b><x/><w/></b><b><x/></b></a>", "a/b[w]/x");
        assert_eq!(out.answers.len(), 1);
        assert_eq!(out.answer_xml.unwrap()[0], "<x/>");
    }

    #[test]
    fn paper_q0_streams() {
        let xml = "<hospital>\
               <patient><pname>Ann</pname>\
                 <visit><treatment><test>blood</test></treatment><date>d1</date></visit>\
                 <visit><treatment><medication>headache</medication></treatment><date>d2</date></visit>\
               </patient>\
               <patient><pname>Bob</pname>\
                 <visit><treatment><medication>headache</medication></treatment><date>d3</date></visit>\
               </patient>\
             </hospital>";
        let out = check(
            xml,
            "hospital/patient[(parent/patient)*/visit/treatment/test and \
             visit/treatment[medication/text() = 'headache']]/pname",
        );
        assert_eq!(out.answer_xml.unwrap(), vec!["<pname>Ann</pname>"]);
    }

    #[test]
    fn nested_candidates_both_recorded() {
        let out = check("<a><b><b/></b></a>", "//b");
        assert_eq!(out.answers.len(), 2);
        let xmls = out.answer_xml.unwrap();
        assert_eq!(xmls[0], "<b><b/></b>");
        assert_eq!(xmls[1], "<b/>");
    }

    #[test]
    fn malformed_input_propagates_error() {
        let vocab = Vocabulary::new();
        let p = parse_path("a", &vocab).unwrap();
        let mfa = compile(&p, &vocab);
        assert!(evaluate_stream_str("<a><b></a>", &mfa, &vocab, StreamOptions::default()).is_err());
    }

    #[test]
    fn event_count_reported() {
        let out = check("<a><b/><b/></a>", "a/b");
        assert_eq!(out.events, 7); // a, b, /b, b, /b, /a, end
    }

    #[test]
    fn cdata_split_text_keeps_node_ids_aligned_with_dom() {
        // `a<![CDATA[&]]>b` arrives as three Text events but is ONE text
        // node in the DOM builder; node ids of later elements must agree.
        check("<r><b>a<![CDATA[&]]>b</b><c/></r>", "r/c");
        // The accumulated text must also satisfy text()='c' as one value.
        check(
            "<r><b>a<![CDATA[&]]>b</b><b>x</b></r>",
            "r/b[text() = 'a&b']",
        );
        check(
            "<r><b><![CDATA[one]]><![CDATA[two]]></b><c/><b>onetwo</b></r>",
            "r/b[text() = 'onetwo']",
        );
    }

    #[test]
    fn entity_references_in_text_agree_with_dom() {
        check("<r><b>a&amp;b</b><c/></r>", "r/b[text() = 'a&b']");
        check("<r><b>a&amp;b</b><c/></r>", "r/c");
        check("<r><b>x&#65;y</b><c/></r>", "r/b[text() = 'xAy']");
    }
}
