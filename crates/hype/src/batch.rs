//! Batched StAX evaluation: **one document scan serves a whole query
//! batch**.
//!
//! Paper §2 promises that a single query needs only one sequential scan of
//! the document; at serving scale the next bottleneck is that N concurrent
//! queries over the same document still cost N scans. This module
//! amortizes the pass: every pull-parser event is fed to every live
//! [`Machine`] (one per compiled plan — the plans may belong to different
//! user groups, i.e. be rewritten through different security views), the
//! document-order node counter and the event stream are shared, and each
//! machine independently suspends work below subtrees where all of *its*
//! runs died (per-machine `skip_from`). The document is parsed exactly
//! once regardless of batch size — [`BatchOutcome::events`] is the proof.
//!
//! The single-query driver in [`crate::stream`] is the 1-plan special case
//! of this driver, so both paths share one implementation (and one set of
//! parity guarantees against DOM mode, e.g. coalescing of character data
//! split across CDATA/entity boundaries).

use crate::budget::{DriverError, EvalInterrupt, WorkBudget};
use crate::machine::{ExecMode, Machine};
use crate::observer::{EvalObserver, NoopObserver};
use crate::stats::EvalStats;
use crate::stream::{StreamOptions, StreamOutcome};
use smoqe_automata::compile::CompiledMfa;
use smoqe_automata::Mfa;
use smoqe_xml::serialize::XmlWriter;
use smoqe_xml::stax::{PullParser, RawEvent};
use smoqe_xml::{Attribute, Label, Vocabulary, XmlError};
use std::collections::HashMap;
use std::io::BufRead;

/// Result of a batched streaming evaluation.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One outcome per plan, in input order. Every outcome's `events`
    /// field equals [`BatchOutcome::events`]: the scan was shared.
    pub outcomes: Vec<StreamOutcome>,
    /// Parser events processed by the single shared scan of the document.
    pub events: usize,
}

/// Buffers one candidate subtree while its predicates are pending.
struct Recorder {
    node: u32,
    depth: usize,
    writer: XmlWriter<Vec<u8>>,
    done: bool,
}

/// Per-plan evaluation state riding the shared scan.
struct Lane<'a> {
    machine: Machine<'a>,
    options: StreamOptions,
    /// When `Some(d)`: automaton work suspended for the subtree opened at
    /// depth d — all of *this* lane's runs are dead there. Other lanes
    /// keep working; the events are read either way (sequential scan).
    skip_from: Option<usize>,
    recorders: Vec<Recorder>,
    finished_xml: HashMap<u32, String>,
    peak_buffered: usize,
}

impl<'a> Lane<'a> {
    fn new(plan: &'a CompiledMfa, options: StreamOptions, mode: ExecMode) -> Self {
        Lane {
            machine: Machine::with_mode(plan, None, mode),
            options,
            skip_from: None,
            recorders: Vec::new(),
            finished_xml: HashMap::new(),
            peak_buffered: 0,
        }
    }

    fn on_start(
        &mut self,
        name: &str,
        attributes: &[Attribute],
        label: Option<Label>,
        node: u32,
        depth: usize,
        observer: &mut dyn EvalObserver,
    ) -> Result<(), XmlError> {
        if self.options.want_xml {
            for r in self.recorders.iter_mut().filter(|r| !r.done) {
                r.writer.start_element(name)?;
                for a in attributes {
                    r.writer.attribute(&a.name, &a.value)?;
                }
            }
        }
        if self.skip_from.is_some() {
            return Ok(());
        }
        let label = label.expect("label interned whenever a lane is live");
        let alive = self.machine.enter(label, node, observer);
        if let Some((cand, _immediate)) = self.machine.take_last_candidate() {
            if self.options.want_xml {
                let mut w = XmlWriter::new(Vec::new());
                w.start_element(name)?;
                for a in attributes {
                    w.attribute(&a.name, &a.value)?;
                }
                self.recorders.push(Recorder {
                    node: cand,
                    depth,
                    writer: w,
                    done: false,
                });
            }
        }
        if !alive && !self.machine.has_open_texteq() && self.recorders.iter().all(|r| r.done) {
            self.skip_from = Some(depth);
        }
        Ok(())
    }

    fn on_text(&mut self, content: &str) -> Result<(), XmlError> {
        if self.options.want_xml {
            for r in self.recorders.iter_mut().filter(|r| !r.done) {
                r.writer.text(content)?;
            }
        }
        if self.skip_from.is_none() {
            self.machine.text(content);
        }
        Ok(())
    }

    fn on_end(&mut self, depth: usize, observer: &mut dyn EvalObserver) -> Result<(), XmlError> {
        if self.options.want_xml {
            let mut newly_done = false;
            for r in self.recorders.iter_mut().filter(|r| !r.done) {
                r.writer.end_element()?;
                if r.depth == depth {
                    r.done = true;
                    newly_done = true;
                }
            }
            let buffered: usize = self.recorders.iter().map(|r| r.writer.sink().len()).sum();
            let finished: usize = self.finished_xml.values().map(String::len).sum();
            self.peak_buffered = self.peak_buffered.max(buffered + finished);
            if newly_done {
                let finished_xml = &mut self.finished_xml;
                self.recorders.retain_mut(|r| {
                    if r.done {
                        let bytes = std::mem::take(r.writer.sink_mut());
                        finished_xml.insert(
                            r.node,
                            String::from_utf8(bytes).expect("writer emits UTF-8"),
                        );
                        false
                    } else {
                        true
                    }
                });
            }
        }
        match self.skip_from {
            Some(d) if d == depth => {
                self.skip_from = None;
                self.machine.leave(observer);
            }
            Some(_) => {}
            None => self.machine.leave(observer),
        }
        Ok(())
    }

    fn finish(mut self, events: usize, observer: &mut dyn EvalObserver) -> StreamOutcome {
        let (answers, mut stats) = self.machine.end(observer);
        stats.answers = answers.len();
        let answer_xml = if self.options.want_xml {
            Some(
                answers
                    .iter()
                    .map(|n| self.finished_xml.remove(n).unwrap_or_default())
                    .collect(),
            )
        } else {
            None
        };
        StreamOutcome {
            answers,
            answer_xml,
            stats,
            peak_buffered_bytes: self.peak_buffered,
            events,
        }
    }
}

/// Evaluates all `plans` over the XML text arriving from `reader` in one
/// sequential scan (compiling each plan on the fly; the engine paths use
/// [`evaluate_batch_stream_plans`] with cached compiled plans).
pub fn evaluate_batch_stream<R: BufRead>(
    reader: R,
    plans: &[&Mfa],
    vocab: &Vocabulary,
    options: StreamOptions,
) -> Result<BatchOutcome, XmlError> {
    let mut observers: Vec<NoopObserver> = plans.iter().map(|_| NoopObserver).collect();
    let mut dyns: Vec<&mut dyn EvalObserver> = observers
        .iter_mut()
        .map(|o| o as &mut dyn EvalObserver)
        .collect();
    evaluate_batch_stream_with(reader, plans, vocab, options, &mut dyns)
}

/// Evaluates all `plans` over a string slice (convenience).
pub fn evaluate_batch_stream_str(
    input: &str,
    plans: &[&Mfa],
    vocab: &Vocabulary,
    options: StreamOptions,
) -> Result<BatchOutcome, XmlError> {
    evaluate_batch_stream(input.as_bytes(), plans, vocab, options)
}

/// Per-plan options variant: each plan rides the shared scan with its own
/// [`StreamOptions`] — e.g. only some of the batch's answers need their
/// XML buffered.
pub fn evaluate_batch_stream_each<R: BufRead>(
    reader: R,
    plans: &[(&Mfa, StreamOptions)],
    vocab: &Vocabulary,
) -> Result<BatchOutcome, XmlError> {
    let compiled: Vec<CompiledMfa> = plans
        .iter()
        .map(|&(mfa, _)| CompiledMfa::compile(mfa))
        .collect();
    let mut observers: Vec<NoopObserver> = plans.iter().map(|_| NoopObserver).collect();
    let mut dyns: Vec<&mut dyn EvalObserver> = observers
        .iter_mut()
        .map(|o| o as &mut dyn EvalObserver)
        .collect();
    let lanes = compiled
        .iter()
        .zip(plans)
        .map(|(plan, &(_, options))| Lane::new(plan, options, ExecMode::Compiled))
        .collect();
    run_batch(reader, lanes, vocab, &mut dyns)
}

/// Full-control variant: one observer per plan, in the same order.
///
/// # Panics
/// Panics if `observers.len() != plans.len()`.
pub fn evaluate_batch_stream_with<R: BufRead>(
    reader: R,
    plans: &[&Mfa],
    vocab: &Vocabulary,
    options: StreamOptions,
    observers: &mut [&mut dyn EvalObserver],
) -> Result<BatchOutcome, XmlError> {
    let compiled: Vec<CompiledMfa> = plans.iter().map(|&mfa| CompiledMfa::compile(mfa)).collect();
    let lanes = compiled
        .iter()
        .map(|plan| Lane::new(plan, options, ExecMode::Compiled))
        .collect();
    run_batch(reader, lanes, vocab, observers)
}

/// Precompiled-plan variant — what the engine's batch path calls: plans
/// come straight from the shared plan cache, so no per-request analysis
/// or table construction happens here. `mode` selects the dense-table
/// executor or the per-event interpreter for every lane.
pub fn evaluate_batch_stream_plans<R: BufRead>(
    reader: R,
    plans: &[(&CompiledMfa, StreamOptions)],
    vocab: &Vocabulary,
    mode: ExecMode,
) -> Result<BatchOutcome, XmlError> {
    let mut observers: Vec<NoopObserver> = plans.iter().map(|_| NoopObserver).collect();
    let mut dyns: Vec<&mut dyn EvalObserver> = observers
        .iter_mut()
        .map(|o| o as &mut dyn EvalObserver)
        .collect();
    evaluate_batch_stream_plans_with(reader, plans, vocab, mode, &mut dyns)
}

/// Precompiled-plan variant with one observer per plan.
///
/// # Panics
/// Panics if `observers.len() != plans.len()`.
pub fn evaluate_batch_stream_plans_with<R: BufRead>(
    reader: R,
    plans: &[(&CompiledMfa, StreamOptions)],
    vocab: &Vocabulary,
    mode: ExecMode,
    observers: &mut [&mut dyn EvalObserver],
) -> Result<BatchOutcome, XmlError> {
    match evaluate_batch_stream_plans_budgeted(
        reader,
        plans,
        vocab,
        mode,
        observers,
        &WorkBudget::unlimited(),
    ) {
        Ok(out) => Ok(out),
        Err(DriverError::Xml(e)) => Err(e),
        Err(DriverError::Interrupted(_)) => unreachable!("an unlimited budget never interrupts"),
    }
}

/// [`evaluate_batch_stream_plans_with`] under a [`WorkBudget`]: the shared
/// scan checks the budget once per parser event and abandons every lane
/// with the merged partial counters when the deadline passes or the cancel
/// token flips. Abandonment drops the parser and all lane-local machines
/// and buffers — nothing shared is touched.
///
/// # Panics
/// Panics if `observers.len() != plans.len()`.
pub fn evaluate_batch_stream_plans_budgeted<R: BufRead>(
    reader: R,
    plans: &[(&CompiledMfa, StreamOptions)],
    vocab: &Vocabulary,
    mode: ExecMode,
    observers: &mut [&mut dyn EvalObserver],
    budget: &WorkBudget,
) -> Result<BatchOutcome, DriverError> {
    let lanes = plans
        .iter()
        .map(|&(plan, options)| Lane::new(plan, options, mode))
        .collect();
    run_batch_budgeted(reader, lanes, vocab, observers, budget)
}

/// The shared driver: one parser, one event loop, N lanes.
fn run_batch<R: BufRead>(
    reader: R,
    lanes: Vec<Lane>,
    vocab: &Vocabulary,
    observers: &mut [&mut dyn EvalObserver],
) -> Result<BatchOutcome, XmlError> {
    match run_batch_budgeted(reader, lanes, vocab, observers, &WorkBudget::unlimited()) {
        Ok(out) => Ok(out),
        Err(DriverError::Xml(e)) => Err(e),
        Err(DriverError::Interrupted(_)) => unreachable!("an unlimited budget never interrupts"),
    }
}

/// [`run_batch`] with a budget meter ticking once per parser event.
fn run_batch_budgeted<R: BufRead>(
    reader: R,
    mut lanes: Vec<Lane>,
    vocab: &Vocabulary,
    observers: &mut [&mut dyn EvalObserver],
    budget: &WorkBudget,
) -> Result<BatchOutcome, DriverError> {
    assert_eq!(
        lanes.len(),
        observers.len(),
        "one observer per plan in the batch"
    );
    let mut parser = PullParser::new(reader);
    for (lane, obs) in lanes.iter_mut().zip(observers.iter_mut()) {
        lane.machine.begin(&mut **obs);
    }

    let mut meter = budget.meter();
    let mut next_id: u32 = 0;
    let mut depth: usize = 0;
    let mut events: usize = 0;
    // Adjacent Text events (character data split across CDATA sections or
    // entity references) form ONE text node in the DOM builder, so only
    // the first event of a run may consume a node id — otherwise stream
    // node ids drift from DOM NodeIds.
    let mut in_text_run = false;

    loop {
        // Borrowed events: the parser reuses its scratch buffers, so the
        // whole scan performs no per-event allocation.
        if let Some(kind) = meter.tick() {
            let mut stats = EvalStats::default();
            for lane in lanes.iter_mut() {
                stats.merge(lane.machine.stats_mut());
            }
            return Err(DriverError::Interrupted(EvalInterrupt { kind, stats }));
        }
        let event = parser.next_raw()?;
        events += 1;
        match event {
            RawEvent::StartElement { name, attributes } => {
                in_text_run = false;
                let node = next_id;
                next_id += 1;
                depth += 1;
                // Interning takes a shared lock on the vocabulary; inside
                // a subtree every lane is skipping, no automaton needs the
                // label, so keep the skip path lock-free.
                let label = if lanes.iter().any(|l| l.skip_from.is_none()) {
                    Some(vocab.intern(name))
                } else {
                    None
                };
                for (lane, obs) in lanes.iter_mut().zip(observers.iter_mut()) {
                    lane.on_start(name, attributes, label, node, depth, &mut **obs)?;
                }
            }
            RawEvent::Text(t) => {
                if !in_text_run {
                    next_id += 1; // text nodes occupy an id, like in DOM mode
                    in_text_run = true;
                }
                for lane in lanes.iter_mut() {
                    lane.on_text(t)?;
                }
            }
            RawEvent::EndElement { .. } => {
                in_text_run = false;
                for (lane, obs) in lanes.iter_mut().zip(observers.iter_mut()) {
                    lane.on_end(depth, &mut **obs)?;
                }
                depth -= 1;
            }
            RawEvent::EndDocument => break,
        }
    }
    let mut outcomes = Vec::with_capacity(lanes.len());
    for (lane, obs) in lanes.into_iter().zip(observers.iter_mut()) {
        outcomes.push(lane.finish(events, &mut **obs));
    }
    Ok(BatchOutcome { outcomes, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::evaluate_mfa;
    use smoqe_automata::compile;
    use smoqe_rxpath::parse_path;
    use smoqe_xml::Document;

    fn compile_all(queries: &[&str], vocab: &Vocabulary) -> Vec<Mfa> {
        queries
            .iter()
            .map(|q| compile(&parse_path(q, vocab).unwrap(), vocab))
            .collect()
    }

    /// Batched answers must equal per-query DOM answers, and the scan must
    /// be shared.
    fn check_batch(xml: &str, queries: &[&str]) -> BatchOutcome {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(xml, &vocab).unwrap();
        let mfas = compile_all(queries, &vocab);
        let plans: Vec<&Mfa> = mfas.iter().collect();
        let out = evaluate_batch_stream_str(xml, &plans, &vocab, StreamOptions { want_xml: true })
            .unwrap();
        assert_eq!(out.outcomes.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let (dom_answers, _) = evaluate_mfa(&doc, &mfas[i]);
            let dom_ids: Vec<u32> = dom_answers.iter().map(|n| n.0).collect();
            assert_eq!(out.outcomes[i].answers, dom_ids, "query `{q}` on `{xml}`");
            let xmls = out.outcomes[i].answer_xml.as_ref().unwrap();
            for (j, n) in dom_answers.iter().enumerate() {
                assert_eq!(
                    xmls[j],
                    smoqe_xml::serialize::subtree_to_string(&doc, n),
                    "answer {j} of `{q}`"
                );
            }
            assert_eq!(out.outcomes[i].events, out.events, "shared scan");
        }
        out
    }

    #[test]
    fn batch_matches_dom_per_query() {
        check_batch(
            "<a><b>1</b><c>2</c><b>3</b></a>",
            &["a/b", "a/c", "a/*", "//b", "zzz"],
        );
    }

    #[test]
    fn batch_with_predicates_and_closure() {
        check_batch(
            "<a><b><c>yes</c></b><b><d/></b><b><c>no</c></b></a>",
            &[
                "a/b[c]",
                "a/b[c = 'yes']",
                "a/b[not(c)]",
                "a/b[text() = 'yes']",
            ],
        );
        check_batch(
            "<a><b><a><b><a/></b></a></b></a>",
            &["(a/b)*/a", "//a", "a/b"],
        );
    }

    #[test]
    fn one_scan_regardless_of_batch_size() {
        let xml = "<a><b>1</b><c>2</c><b>3</b></a>";
        let one = check_batch(xml, &["a/b"]);
        let many = check_batch(xml, &["a/b", "a/c", "//b", "a/*", "zzz", "a/b[c]"]);
        assert_eq!(one.events, many.events, "batching must not re-scan");
    }

    #[test]
    fn per_lane_skipping_is_independent() {
        // Query 0 dies immediately at the root; query 1 must still see
        // everything below it.
        let xml = "<a><b><c/></b><b><c/></b></a>";
        let out = check_batch(xml, &["zzz", "//c"]);
        assert!(out.outcomes[0].answers.is_empty());
        assert_eq!(out.outcomes[1].answers.len(), 2);
    }

    #[test]
    fn empty_batch_still_scans_once() {
        let vocab = Vocabulary::new();
        let out = evaluate_batch_stream_str("<a><b/></a>", &[], &vocab, StreamOptions::default())
            .unwrap();
        assert!(out.outcomes.is_empty());
        assert_eq!(out.events, 5); // a, b, /b, /a, end
    }

    #[test]
    fn expired_deadline_interrupts_the_shared_scan() {
        use crate::budget::{DriverError, Interrupt, WorkBudget};
        use std::time::{Duration, Instant};
        let body: String = (0..200).map(|i| format!("<b>{i}</b>")).collect();
        let xml = format!("<a>{body}</a>");
        let vocab = Vocabulary::new();
        let mfas = compile_all(&["//b", "a/b"], &vocab);
        let compiled: Vec<CompiledMfa> = mfas.iter().map(CompiledMfa::compile).collect();
        let plans: Vec<(&CompiledMfa, StreamOptions)> = compiled
            .iter()
            .map(|p| (p, StreamOptions::default()))
            .collect();
        let mut observers = [NoopObserver, NoopObserver];
        let mut dyns: Vec<&mut dyn EvalObserver> = observers
            .iter_mut()
            .map(|o| o as &mut dyn EvalObserver)
            .collect();
        let budget = WorkBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            cancel: None,
            check_interval: 16,
        };
        let err = evaluate_batch_stream_plans_budgeted(
            xml.as_bytes(),
            &plans,
            &vocab,
            ExecMode::Compiled,
            &mut dyns,
            &budget,
        )
        .expect_err("an already-expired deadline must interrupt");
        match err {
            DriverError::Interrupted(interrupt) => {
                assert_eq!(interrupt.kind, Interrupt::DeadlineExceeded);
                // Two lanes, ticked per event: bounded by one interval of
                // events each.
                assert!(
                    interrupt.stats.nodes_visited <= 2 * 16,
                    "visited {} nodes past an expired deadline",
                    interrupt.stats.nodes_visited
                );
            }
            DriverError::Xml(e) => panic!("expected an interrupt, got parse error {e:?}"),
        }
    }

    #[test]
    fn malformed_input_propagates_error() {
        let vocab = Vocabulary::new();
        let p = parse_path("a", &vocab).unwrap();
        let mfa = compile(&p, &vocab);
        assert!(
            evaluate_batch_stream_str("<a><b></a>", &[&mfa], &vocab, StreamOptions::default())
                .is_err()
        );
    }
}
