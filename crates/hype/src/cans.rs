//! `Cans` (candidate answers) and the validity formulas that guard them.
//!
//! HyPE finds *potential* answer nodes during its single top-down pass:
//! a node reached in an accepting selection state is a **candidate**, but
//! whether it is a real answer can depend on predicates whose witnesses lie
//! in subtrees that have not been traversed yet. The paper (§3,
//! "Evaluator"): *"The potential answer nodes are collected and stored in
//! an auxiliary structure, referred to as Cans (candidate answers), which
//! is often much smaller than the XML document tree. After the traversal
//! of the document tree, HyPE only needs a single pass of Cans to select
//! the nodes that are in the answer."*
//!
//! A candidate's guard is a **monotone boolean formula over predicate
//! instances**: `valid(v, s) = (∨ over predecessor states) ∧ (guards picked
//! up on the ε-path into s)`. Most states carry no guards, so most validity
//! tags stay the constant *true* and never allocate; only genuinely
//! predicate-dependent candidates enter `Cans` with a formula. The final
//! pass evaluates the formula DAG against the resolved instance truths.

use std::collections::BTreeSet;

/// Index of a predicate instance (a predicate attached to a specific node
/// during this evaluation).
pub type InstId = usize;

/// Index of a formula node in the [`FormulaArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FId(pub u32);

/// A validity tag: either a known constant or a formula over instances.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tag {
    /// Valid unconditionally.
    True,
    /// Validity given by the formula node.
    Formula(FId),
}

/// One term of a conjunction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum FTerm {
    /// Truth of a predicate instance.
    Inst(InstId),
    /// Truth of another formula node.
    Sub(FId),
}

/// A formula node.
#[derive(Clone, Debug)]
pub enum FNode {
    /// Conjunction of terms.
    And(Vec<FTerm>),
    /// Disjunction of sub-formulas.
    Or(Vec<FId>),
}

/// Arena of formula nodes built during one evaluation.
#[derive(Default, Debug)]
pub struct FormulaArena {
    nodes: Vec<FNode>,
}

impl FormulaArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of formula nodes allocated (a stats metric: how much
    /// predicate bookkeeping the query actually required).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no formula was ever needed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, node: FNode) -> FId {
        self.nodes.push(node);
        FId((self.nodes.len() - 1) as u32)
    }

    /// Conjunction of a base tag with one pending instance.
    pub fn and_inst(&mut self, base: Tag, inst: InstId) -> Tag {
        match base {
            Tag::True => Tag::Formula(self.push(FNode::And(vec![FTerm::Inst(inst)]))),
            Tag::Formula(f) => {
                Tag::Formula(self.push(FNode::And(vec![FTerm::Sub(f), FTerm::Inst(inst)])))
            }
        }
    }

    /// Disjunction of a set of alternatives (`None` = empty disjunction =
    /// false, which callers treat as "no tag").
    pub fn or_tags(&mut self, tags: &BTreeSet<FId>, any_true: bool) -> Option<Tag> {
        if any_true {
            return Some(Tag::True);
        }
        match tags.len() {
            0 => None,
            1 => Some(Tag::Formula(*tags.iter().next().expect("len checked"))),
            _ => Some(Tag::Formula(
                self.push(FNode::Or(tags.iter().copied().collect())),
            )),
        }
    }

    /// Disjunction of an already-sorted, deduplicated id slice — the
    /// allocation-free counterpart of [`FormulaArena::or_tags`] used by the
    /// compiled evaluator's dense closure builder.
    pub fn or_sorted(&mut self, parts: &[FId]) -> Option<Tag> {
        match parts.len() {
            0 => None,
            1 => Some(Tag::Formula(parts[0])),
            _ => Some(Tag::Formula(self.push(FNode::Or(parts.to_vec())))),
        }
    }

    /// Evaluates `tag` under the given instance truths. Returns `None` if
    /// the tag references an unresolved instance (used to defer instance
    /// finalization until dependencies settle).
    pub fn eval(&self, tag: Tag, truths: &[Option<bool>]) -> Option<bool> {
        match tag {
            Tag::True => Some(true),
            Tag::Formula(f) => self.eval_node(f, truths),
        }
    }

    fn eval_node(&self, f: FId, truths: &[Option<bool>]) -> Option<bool> {
        match &self.nodes[f.0 as usize] {
            FNode::And(terms) => {
                let mut all_known = true;
                for t in terms {
                    match self.eval_term(*t, truths) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => all_known = false,
                    }
                }
                if all_known {
                    Some(true)
                } else {
                    None
                }
            }
            FNode::Or(subs) => {
                let mut all_known = true;
                for s in subs {
                    match self.eval_node(*s, truths) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => all_known = false,
                    }
                }
                if all_known {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }

    fn eval_term(&self, t: FTerm, truths: &[Option<bool>]) -> Option<bool> {
        match t {
            FTerm::Inst(i) => truths[i],
            FTerm::Sub(f) => self.eval_node(f, truths),
        }
    }
}

/// A candidate entry: a node together with its validity tag.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// The node (document-order id).
    pub node: u32,
    /// Its validity formula.
    pub tag: Tag,
}

/// The Cans auxiliary structure: candidates pending predicate resolution.
#[derive(Default, Debug)]
pub struct Cans {
    entries: Vec<Candidate>,
}

impl Cans {
    /// Creates an empty Cans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a candidate.
    pub fn push(&mut self, node: u32, tag: Tag) {
        self.entries.push(Candidate { node, tag });
    }

    /// Number of pending candidates (the paper's "|Cans| ≪ |T|" metric).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no candidate is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The single final pass: keeps candidates whose formulas hold.
    ///
    /// # Panics
    /// Panics if any referenced instance is unresolved — by construction
    /// every instance resolves by the end of the traversal, so this
    /// indicates an evaluator bug.
    pub fn resolve(&self, arena: &FormulaArena, truths: &[Option<bool>]) -> Vec<u32> {
        self.entries
            .iter()
            .filter(|c| {
                arena
                    .eval(c.tag, truths)
                    .expect("all instances resolved after traversal")
            })
            .map(|c| c.node)
            .collect()
    }

    /// Iterates over pending candidates (for visualization).
    pub fn iter(&self) -> impl Iterator<Item = &Candidate> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_inst_builds_conjunction() {
        let mut a = FormulaArena::new();
        let t = a.and_inst(Tag::True, 0);
        let t2 = a.and_inst(t, 1);
        // inst0=true, inst1=true => true
        assert_eq!(a.eval(t2, &[Some(true), Some(true)]), Some(true));
        assert_eq!(a.eval(t2, &[Some(true), Some(false)]), Some(false));
        assert_eq!(a.eval(t2, &[Some(false), Some(true)]), Some(false));
    }

    #[test]
    fn or_tags_combines() {
        let mut a = FormulaArena::new();
        let f1 = match a.and_inst(Tag::True, 0) {
            Tag::Formula(f) => f,
            _ => unreachable!(),
        };
        let f2 = match a.and_inst(Tag::True, 1) {
            Tag::Formula(f) => f,
            _ => unreachable!(),
        };
        let set: BTreeSet<FId> = [f1, f2].into_iter().collect();
        let or = a.or_tags(&set, false).unwrap();
        assert_eq!(a.eval(or, &[Some(false), Some(true)]), Some(true));
        assert_eq!(a.eval(or, &[Some(false), Some(false)]), Some(false));
    }

    #[test]
    fn any_true_short_circuits() {
        let mut a = FormulaArena::new();
        let set = BTreeSet::new();
        assert_eq!(a.or_tags(&set, true), Some(Tag::True));
        assert_eq!(a.or_tags(&set, false), None);
        assert!(a.is_empty());
    }

    #[test]
    fn eval_defers_on_unresolved() {
        let mut a = FormulaArena::new();
        let t = a.and_inst(Tag::True, 0);
        assert_eq!(a.eval(t, &[None]), None);
        // Short-circuit: And with a false leg is false even if another is
        // unresolved.
        let t2 = a.and_inst(t, 1);
        assert_eq!(a.eval(t2, &[None, Some(false)]), Some(false));
    }

    #[test]
    fn cans_resolution_filters() {
        let mut a = FormulaArena::new();
        let mut cans = Cans::new();
        let t0 = a.and_inst(Tag::True, 0);
        let t1 = a.and_inst(Tag::True, 1);
        cans.push(10, t0);
        cans.push(20, t1);
        cans.push(30, Tag::True);
        let kept = cans.resolve(&a, &[Some(true), Some(false)]);
        assert_eq!(kept, vec![10, 30]);
        assert_eq!(cans.len(), 3);
    }
}
