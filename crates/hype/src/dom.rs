//! HyPE in DOM mode: evaluate an MFA over an in-memory [`Document`].
//!
//! One explicit-stack depth-first traversal; `text()='c'` predicates
//! resolve eagerly against the tree, so text nodes are never visited.
//! Subtrees are skipped when every automaton run dies on their label, and
//! — when a TAX index is supplied — when the index proves that no required
//! label occurs below (paper §3, "Indexer").

use crate::budget::{EvalInterrupt, WorkBudget};
use crate::machine::{ExecMode, Machine, Preview, VIRTUAL_NODE};
use crate::observer::{EvalObserver, NoopObserver, PruneReason};
use crate::stats::EvalStats;
use smoqe_automata::compile::CompiledMfa;
use smoqe_automata::Mfa;
use smoqe_rxpath::NodeSet;
use smoqe_tax::TaxIndex;
use smoqe_xml::{Document, NodeId};
use std::borrow::Cow;

/// Options for DOM evaluation.
#[derive(Default)]
pub struct DomOptions<'t> {
    /// TAX index over the same document, enabling subtree pruning.
    pub tax: Option<&'t TaxIndex>,
}

/// Evaluates `mfa` over `doc` with default options (compiling the plan on
/// the fly; hot paths should precompile and use [`evaluate_mfa_plan`]).
pub fn evaluate_mfa(doc: &Document, mfa: &Mfa) -> (NodeSet, EvalStats) {
    evaluate_mfa_with(doc, mfa, &DomOptions::default(), &mut NoopObserver)
}

/// Evaluates `mfa` over `doc` with options and an observer.
pub fn evaluate_mfa_with(
    doc: &Document,
    mfa: &Mfa,
    options: &DomOptions<'_>,
    observer: &mut dyn EvalObserver,
) -> (NodeSet, EvalStats) {
    let plan = CompiledMfa::compile(mfa);
    evaluate_mfa_plan(doc, &plan, options, ExecMode::Compiled, observer)
}

/// Evaluates a precompiled plan over `doc` — the engine's DOM path. The
/// plan is compiled once (and cached engine-wide); `mode` selects the
/// dense-table executor, the per-event interpreter, or the jump scan.
///
/// [`ExecMode::Jump`] engages for DFA plans — exact DFAs for the
/// guard-free fragment, guard-stripped DFAs with exact per-candidate
/// re-verification for predicated plans — given a positional label index
/// on `options.tax` and a no-op observer (a jump produces no per-node
/// event stream); anything else falls back to the compiled scan, with
/// identical answers.
pub fn evaluate_mfa_plan(
    doc: &Document,
    plan: &CompiledMfa,
    options: &DomOptions<'_>,
    mode: ExecMode,
    observer: &mut dyn EvalObserver,
) -> (NodeSet, EvalStats) {
    match evaluate_mfa_plan_budgeted(doc, plan, options, mode, observer, &WorkBudget::unlimited()) {
        Ok(result) => result,
        Err(_) => unreachable!("an unlimited budget never interrupts"),
    }
}

/// [`evaluate_mfa_plan`] under a [`WorkBudget`]: the traversal checks the
/// budget once per stack pop and abandons with the partial counters when
/// the deadline passes or the cancel token flips. Abandonment only drops
/// evaluator-local state (the machine, the stack) — the document snapshot
/// is immutable and shared structures are untouched.
pub fn evaluate_mfa_plan_budgeted(
    doc: &Document,
    plan: &CompiledMfa,
    options: &DomOptions<'_>,
    mode: ExecMode,
    observer: &mut dyn EvalObserver,
    budget: &WorkBudget,
) -> Result<(NodeSet, EvalStats), EvalInterrupt> {
    debug_assert!(
        doc.vocabulary().same_as(plan.mfa().vocabulary()),
        "document and query must share a vocabulary"
    );
    let mode = if mode == ExecMode::Jump {
        if observer.is_noop() {
            if let Some(tax) = options.tax {
                if let Some(result) = crate::jump::evaluate_jump_budgeted(doc, plan, tax, budget) {
                    return result;
                }
            }
        }
        ExecMode::Compiled
    } else {
        mode
    };
    // `text() = 'c'` compares the node's direct text; the virtual
    // document node has none.
    let resolver = |n: u32| -> Cow<'_, str> {
        if n == VIRTUAL_NODE {
            Cow::Borrowed("")
        } else {
            doc.direct_text_cow(NodeId(n))
        }
    };
    let mut meter = budget.meter();
    let mut machine = Machine::with_mode(plan, Some(&resolver), mode);
    machine.begin(observer);

    // Explicit stack: (node, entered?).
    let mut stack: Vec<(NodeId, bool)> = vec![(doc.root(), false)];
    // Pre-enter check for the root too (its label may already kill all
    // runs, e.g. a query starting with a different root name).
    while let Some((node, entered)) = stack.pop() {
        if let Some(kind) = meter.tick() {
            return Err(EvalInterrupt {
                kind,
                stats: *machine.stats_mut(),
            });
        }
        if entered {
            machine.leave(observer);
            continue;
        }
        let label = doc.label(node).expect("only elements are scheduled");
        match machine.preview(label, options.tax.map(|t| t.descendant_labels(node))) {
            Preview::NoMatch => {
                machine.stats_mut().subtrees_skipped_dead += 1;
                observer.subtree_pruned(node.0, label, PruneReason::DeadRuns);
                continue;
            }
            Preview::Pruned => {
                machine.stats_mut().subtrees_pruned_tax += 1;
                observer.subtree_pruned(node.0, label, PruneReason::TaxIndex);
                continue;
            }
            Preview::Progress => {}
        }
        stack.push((node, true));
        let alive = machine.enter(label, node.0, observer);
        if !alive {
            continue; // nothing below can match and no text is awaited
        }
        // Push children, then reverse the pushed slice in place so they
        // are visited in document order (no per-node allocation).
        let mark = stack.len();
        for c in doc.child_elements(node) {
            stack.push((c, false));
        }
        stack[mark..].reverse();
    }

    let (answers, stats) = machine.end(observer);
    Ok((
        NodeSet::from_sorted(answers.into_iter().map(NodeId).collect()),
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_automata::compile;
    use smoqe_rxpath::{evaluate as naive, parse_path};
    use smoqe_xml::Vocabulary;

    fn check(xml: &str, query: &str) -> (NodeSet, EvalStats) {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(xml, &vocab).unwrap();
        let path = parse_path(query, &vocab).unwrap();
        let mfa = compile(&path, &vocab);
        let (got, stats) = evaluate_mfa(&doc, &mfa);
        let want = naive(&doc, &path);
        assert_eq!(got, want, "query `{query}` on `{xml}`");
        (got, stats)
    }

    #[test]
    fn agrees_with_naive_on_steps() {
        check("<a><b>1</b><c>2</c><b>3</b></a>", "a/b");
        check("<a><b/><c/></a>", "a/*");
        check("<a><b/></a>", "a/zzz");
        check("<a><b/></a>", "zzz");
    }

    #[test]
    fn agrees_on_descendants_and_closures() {
        check("<a><b><c>x</c></b><c>y</c></a>", "//c");
        check("<a><b><a><b><a/></b></a></b></a>", "a/(b/a)*");
        check("<a><b><a><b><a/></b></a></b></a>", "(a/b)*/a");
    }

    #[test]
    fn agrees_on_qualifiers() {
        let doc = "<a><b><c>yes</c></b><b><d/></b><b><c>no</c></b></a>";
        check(doc, "a/b[c]");
        check(doc, "a/b[c = 'yes']");
        check(doc, "a/b[not(c)]");
        check(doc, "a/b[c and d]");
        check(doc, "a/b[c or d]");
        check(doc, "a/b[text() = 'yes']");
    }

    #[test]
    fn agrees_on_nested_qualifiers() {
        let doc = "<a><b><c><d>v</d></c></b><b><c><e/></c></b></a>";
        check(doc, "a/b[c[d]]");
        check(doc, "a/b[c[not(d)]]");
        check(doc, "a/b[c/d = 'v']");
        check(doc, "//b[c[d = 'v' or e]]");
    }

    #[test]
    fn candidate_discovered_before_predicate_witness() {
        // The answer node (x) appears before the predicate witness (w)
        // in document order: candidates must park in Cans.
        let doc = "<a><b><x/><w/></b><b><x/></b></a>";
        let (res, stats) = check(doc, "a/b[w]/x");
        assert_eq!(res.len(), 1);
        assert!(stats.cans_size >= 1, "expected unresolved candidates");
    }

    #[test]
    fn immediate_answers_skip_cans() {
        let (res, stats) = check("<a><b/><b/></a>", "a/b");
        assert_eq!(res.len(), 2);
        assert_eq!(stats.cans_size, 0);
        assert_eq!(stats.immediate_answers, 2);
    }

    #[test]
    fn dead_subtrees_are_skipped() {
        // Query a/b; the <z> subtree can never match below the root.
        let (_, stats) = check("<a><z><b/><b/><b/></z><b/></a>", "a/b");
        assert!(stats.subtrees_skipped_dead >= 1);
        // The b-nodes inside z were never visited.
        assert!(stats.nodes_visited <= 3);
    }

    #[test]
    fn paper_q0() {
        let xml = "<hospital>\
               <patient><pname>Ann</pname>\
                 <visit><treatment><test>blood</test></treatment><date>d1</date></visit>\
                 <visit><treatment><medication>headache</medication></treatment><date>d2</date></visit>\
               </patient>\
               <patient><pname>Bob</pname>\
                 <visit><treatment><medication>headache</medication></treatment><date>d3</date></visit>\
               </patient>\
               <patient><pname>Cat</pname>\
                 <parent><patient><pname>Dan</pname>\
                   <visit><treatment><test>x-ray</test></treatment><date>d4</date></visit>\
                 </patient></parent>\
                 <visit><treatment><medication>headache</medication></treatment><date>d5</date></visit>\
               </patient>\
             </hospital>";
        check(
            xml,
            "hospital/patient[(parent/patient)*/visit/treatment/test and \
             visit/treatment[medication/text() = 'headache']]/pname",
        );
    }

    #[test]
    fn union_and_mixed_shapes() {
        let doc = "<a><b><c/></b><d><c/></d><e/></a>";
        check(doc, "a/(b | d)/c");
        check(doc, "a/(b/c | d/c | e)");
        check(doc, "(a | a/b)*");
    }

    #[test]
    fn empty_path_returns_nothing_from_virtual() {
        // `.` selects the virtual context node, which is not an element
        // answer.
        check("<a/>", ".");
    }

    #[test]
    fn expired_deadline_abandons_within_one_check_interval() {
        use crate::budget::{Interrupt, WorkBudget};
        use std::time::{Duration, Instant};
        let body: String = (0..500).map(|i| format!("<b><c>{i}</c></b>")).collect();
        let xml = format!("<a>{body}</a>");
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(&xml, &vocab).unwrap();
        let plan = CompiledMfa::compile(&compile(&parse_path("//c", &vocab).unwrap(), &vocab));
        let budget = WorkBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            cancel: None,
            check_interval: 32,
        };
        let interrupt = evaluate_mfa_plan_budgeted(
            &doc,
            &plan,
            &DomOptions::default(),
            ExecMode::Compiled,
            &mut NoopObserver,
            &budget,
        )
        .expect_err("an already-expired deadline must interrupt");
        assert_eq!(interrupt.kind, Interrupt::DeadlineExceeded);
        // The meter ticks once per stack pop and node visits are a subset
        // of pops, so post-expiry work is bounded by one check interval.
        assert!(
            interrupt.stats.nodes_visited <= 32,
            "visited {} nodes past an expired deadline",
            interrupt.stats.nodes_visited
        );
    }

    #[test]
    fn cancel_token_aborts_mid_scan() {
        use crate::budget::{Interrupt, WorkBudget};
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let xml = "<a><b><c>x</c></b><b><c>y</c></b></a>";
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(xml, &vocab).unwrap();
        let plan = CompiledMfa::compile(&compile(&parse_path("//c", &vocab).unwrap(), &vocab));
        let cancel = Arc::new(AtomicBool::new(false));
        cancel.store(true, Ordering::Relaxed);
        let budget = WorkBudget {
            deadline: None,
            cancel: Some(cancel),
            check_interval: 1,
        };
        let interrupt = evaluate_mfa_plan_budgeted(
            &doc,
            &plan,
            &DomOptions::default(),
            ExecMode::Compiled,
            &mut NoopObserver,
            &budget,
        )
        .expect_err("a set cancel token must interrupt");
        assert_eq!(interrupt.kind, Interrupt::Cancelled);
    }

    #[test]
    fn armed_but_generous_budget_changes_nothing() {
        use crate::budget::WorkBudget;
        use std::time::{Duration, Instant};
        let xml = "<a><b><c>yes</c></b><b><d/></b><b><c>no</c></b></a>";
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(xml, &vocab).unwrap();
        let plan = CompiledMfa::compile(&compile(&parse_path("a/b[c]", &vocab).unwrap(), &vocab));
        let options = DomOptions::default();
        let plain = evaluate_mfa_plan(&doc, &plan, &options, ExecMode::Compiled, &mut NoopObserver);
        let budget = WorkBudget::with_deadline(Instant::now() + Duration::from_secs(3600));
        let budgeted = evaluate_mfa_plan_budgeted(
            &doc,
            &plan,
            &options,
            ExecMode::Compiled,
            &mut NoopObserver,
            &budget,
        )
        .expect("a generous deadline never fires");
        assert_eq!(plain.0, budgeted.0);
        assert_eq!(plain.1.nodes_visited, budgeted.1.nodes_visited);
    }

    #[test]
    fn qualifier_on_closure() {
        let doc = "<a><b><a><b/></a></b><b><c/></b></a>";
        check(doc, "(a/b)*[c]");
        check(doc, "a/(b[c])*");
        check(doc, "a/(b[not(c)]/a)*");
    }
}
