//! The shared HyPE evaluation core.
//!
//! HyPE (Hybrid Pass Evaluation, paper §3) performs **one** top-down
//! depth-first traversal during which it simultaneously (a) advances the
//! selection NFA, (b) instantiates and resolves predicates (the AFA layer),
//! and (c) collects potential answers into `Cans`; a single post-pass over
//! `Cans` then selects the answer. The same core drives both the DOM
//! walker and the StAX stream evaluator — the only differences are how
//! `text() = 'c'` tests are resolved (eagerly via the tree vs. by
//! accumulation) and whether subtrees can be skipped (random access vs.
//! sequential scan).
//!
//! ## Compiled vs. interpreted execution
//!
//! The machine executes a [`CompiledMfa`] — the dense-table form of the
//! plan (see `smoqe_automata::compile`) — in one of two modes:
//!
//! * [`ExecMode::Compiled`] (the default): guard-free NFAs run as
//!   subset-construction **DFAs** — one `u32` per open tree level, one
//!   dense-row lookup per event. Guarded NFAs step through precomputed
//!   CSR rows instead of scanning transition lists, the per-node predicate
//!   spawn cache is an epoch-marked array (no hashing), and the guard-aware
//!   closure uses a dense epoch-marked builder. Nothing in the per-event
//!   path touches a `HashMap` or allocates beyond pooled scratch.
//! * [`ExecMode::Interpreted`]: the original per-event NFA interpretation
//!   (linear transition scans, map-based closure builder). Kept for
//!   differential testing and the `ablation` bench; answers and skip
//!   decisions are identical by construction.
//!
//! ## Runs, tags and instances
//!
//! * A **run** is a live simulation of one NFA: the selection NFA (the
//!   "top" run, alive for the whole traversal) or a `HasPath` predicate
//!   automaton rooted at the node that instantiated it. A run maintains a
//!   stack of *active sets*, one per open tree level: pairs of
//!   `(state, validity tag)` — or, for DFA-kind NFAs, a single dense state
//!   id per level.
//! * A **validity tag** ([`Tag`]) says under which predicate instances the
//!   state assignment is valid. Guard-free regions keep the constant
//!   `True` and allocate nothing.
//! * A **predicate instance** is a predicate pinned to the node where a
//!   guarded ε-edge was traversed. `HasPath` instances own a run;
//!   `text()='c'` instances either resolve eagerly (DOM) or accumulate
//!   text (StAX); `not/and/or` combine sub-instances. Every instance
//!   resolves no later than when the traversal leaves its origin node, so
//!   the final Cans pass sees only resolved instances.

use crate::cans::{Cans, FId, FormulaArena, InstId, Tag};
use crate::observer::EvalObserver;
use crate::stats::EvalStats;
use smoqe_automata::compile::{CompiledMfa, DEAD};
use smoqe_automata::{Mfa, NfaId, Pred, PredId, StateId};
use smoqe_xml::{Label, LabelSet};
use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap};

/// Sentinel node id for the virtual document node above the root.
pub const VIRTUAL_NODE: u32 = u32::MAX;

/// How the machine executes its plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Dense-table execution (DFA fast path, CSR rows, epoch arenas).
    #[default]
    Compiled,
    /// Per-event NFA interpretation (the pre-compilation evaluator),
    /// retained for differential testing and ablation benchmarks.
    Interpreted,
    /// Jump-scan evaluation (DOM mode only): predicate-free DFA plans
    /// skip between candidate subtrees through the positional label index
    /// instead of walking the tree (see [`crate::jump`]). Drivers that
    /// cannot jump — streaming, guarded plans, no index — silently fall
    /// back to [`ExecMode::Compiled`]; answers are identical either way.
    Jump,
}

/// Eager `text()='c'` resolution callback (DOM mode). Returning
/// [`Cow::Borrowed`] for the common single-text-child case keeps the
/// per-check path allocation-free.
pub type TextResolver<'a> = dyn Fn(u32) -> Cow<'a, str> + 'a;

/// How far a child's label lets the automata advance (pre-enter check used
/// for subtree skipping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preview {
    /// No live run has a transition matching the label: the subtree is
    /// invisible to the query.
    NoMatch,
    /// Some run advances, but the TAX index proves no accepting
    /// continuation fits in the subtree.
    Pruned,
    /// The subtree must be visited.
    Progress,
}

#[derive(Clone, Copy, Debug)]
enum InstRef {
    Resolved(bool),
    Pending(InstId),
}

#[derive(Debug)]
enum InstKind {
    TextEq {
        /// Accumulated text, capped at `target.len() + 1` bytes.
        buf: String,
        target: String,
        /// Frame depth of the origin element: only its *direct* text
        /// counts (`text() = 'c'` compares direct text content).
        depth: usize,
    },
    HasPath {
        /// Validity tags of accept events collected by the run.
        accepts: Vec<Tag>,
    },
    Not {
        sub: InstId,
    },
    And {
        subs: Vec<InstId>,
    },
    Or {
        subs: Vec<InstId>,
    },
}

#[derive(Debug)]
struct Instance {
    kind: InstKind,
}

type RunId = usize;

/// `(state, validity)` pairs; states unique, sorted by id (lookups scan,
/// sets are small).
type ActiveSet = Vec<(StateId, Tag)>;

/// Per-run stack of active levels: dense DFA states for guard-free NFAs
/// in compiled mode, tagged state sets otherwise.
#[derive(Debug)]
enum RunStack {
    Dfa(Vec<u32>),
    Sets(Vec<ActiveSet>),
}

impl RunStack {
    fn clear(&mut self) {
        match self {
            RunStack::Dfa(v) => v.clear(),
            RunStack::Sets(v) => v.clear(),
        }
    }
}

#[derive(Debug)]
struct Run {
    nfa: NfaId,
    /// Owning instance; `None` for the top (selection) run.
    inst: Option<InstId>,
    dead: bool,
    stack: RunStack,
}

struct Frame {
    node: u32,
    /// Runs whose stacks we pushed at this level (popped symmetric).
    stepped: Vec<RunId>,
    /// Runs spawned at this node (finalized when it closes).
    spawned_runs: Vec<RunId>,
    /// Instances spawned at this node (resolved when it closes).
    opened: Vec<InstId>,
    /// Runs children should step.
    live: Vec<RunId>,
}

/// Epoch-marked dense builder for the guard-aware closure (compiled mode).
/// One builder per closure invocation; recursive `HasPath` spawns take a
/// fresh builder from the machine's pool, so arrays are never shared
/// across nesting levels.
#[derive(Default)]
struct ClosureBuilder {
    /// Epoch per state; entries from older epochs are logically absent.
    mark: Vec<u32>,
    epoch: u32,
    known_true: Vec<bool>,
    /// Sorted, deduplicated formula parts per state.
    parts: Vec<Vec<FId>>,
    /// States touched this epoch (each exactly once).
    touched: Vec<StateId>,
    work: Vec<StateId>,
}

impl ClosureBuilder {
    fn begin(&mut self, states: usize) {
        if self.mark.len() < states {
            self.mark.resize(states, 0);
            self.known_true.resize(states, false);
            self.parts.resize_with(states, Vec::new);
        }
        self.epoch += 1;
        self.touched.clear();
        self.work.clear();
    }

    /// Merges `tag` into state `s`, returning whether anything changed.
    fn merge(&mut self, s: StateId, tag: Tag) -> bool {
        let i = s.index();
        if self.mark[i] != self.epoch {
            self.mark[i] = self.epoch;
            self.known_true[i] = false;
            self.parts[i].clear();
            self.touched.push(s);
        }
        match tag {
            Tag::True => {
                let changed = !self.known_true[i];
                self.known_true[i] = true;
                changed
            }
            Tag::Formula(f) => {
                if self.known_true[i] {
                    false
                } else {
                    match self.parts[i].binary_search(&f) {
                        Ok(_) => false,
                        Err(pos) => {
                            self.parts[i].insert(pos, f);
                            true
                        }
                    }
                }
            }
        }
    }
}

/// The evaluation machine. Drivers feed `begin`/`enter`/`text`/`leave`/
/// `end` in document order.
pub struct Machine<'a> {
    plan: &'a CompiledMfa,
    mfa: &'a Mfa,
    mode: ExecMode,
    /// Epoch-marked scratch for closure merging (index = state id).
    scratch: Vec<u32>,
    scratch_epoch: u32,
    /// Pool of dense closure builders (compiled slow path).
    builder_pool: Vec<ClosureBuilder>,
    /// Recycled frames and active sets (per-node allocation avoidance).
    frame_pool: Vec<Frame>,
    set_pool: Vec<ActiveSet>,
    seed_buf: Vec<(StateId, Tag)>,
    runs: Vec<Run>,
    insts: Vec<Instance>,
    truths: Vec<Option<bool>>,
    arena: FormulaArena,
    cans: Cans,
    immediate: Vec<u32>,
    frames: Vec<Frame>,
    open_texteq: Vec<InstId>,
    /// Per-node spawn cache, compiled mode: epoch-marked arrays indexed by
    /// predicate id — one instance per (pred, node), no hashing.
    spawn_mark: Vec<u32>,
    spawn_val: Vec<InstRef>,
    spawn_epoch: u32,
    /// Per-node spawn cache, interpreted mode.
    spawn_cache: HashMap<PredId, InstRef>,
    /// Eager `text()='c'` resolution (DOM mode): node id -> string value.
    text_resolver: Option<&'a TextResolver<'a>>,
    /// Candidate discovered by the most recent `enter` (for stream
    /// recorders).
    last_candidate: Option<(u32, bool)>,
    /// Whether the observer wants events (cached at `begin`; skipping the
    /// per-event virtual dispatch for `NoopObserver` is measurable).
    observe: bool,
    /// The whole-plan DFA, present when the plan has **no predicates** and
    /// the top NFA compiled to a dense table: exactly one run, every tag
    /// `True`, nothing ever spawns. Such plans bypass the frame/run
    /// machinery entirely — one `u32` per level and one table read per
    /// event ([`Machine::enter_simple`]).
    simple_dfa: Option<&'a smoqe_automata::compile::DfaTable>,
    /// `simple_dfa` engaged for this traversal (disabled when an observer
    /// wants the full event stream, which the lean path does not produce).
    simple_active: bool,
    /// Per-level DFA states of the lean path ([`DEAD`] = dormant level).
    simple_stack: Vec<u32>,
    stats: EvalStats,
}

impl<'a> Machine<'a> {
    /// Creates a compiled-mode machine for `plan`. `text_resolver` enables
    /// eager `text()='c'` resolution (DOM mode); without it, text is
    /// accumulated from `text` events (StAX mode).
    pub fn new(plan: &'a CompiledMfa, text_resolver: Option<&'a TextResolver<'a>>) -> Self {
        Machine::with_mode(plan, text_resolver, ExecMode::Compiled)
    }

    /// Creates a machine with an explicit execution mode.
    pub fn with_mode(
        plan: &'a CompiledMfa,
        text_resolver: Option<&'a TextResolver<'a>>,
        mode: ExecMode,
    ) -> Self {
        // Jumping is a driver-level strategy (`crate::jump`), not a
        // machine one: a machine asked for it executes the compiled
        // tables, which is what the jump driver falls back to.
        let mode = match mode {
            ExecMode::Jump => ExecMode::Compiled,
            m => m,
        };
        let pred_count = plan.mfa().pred_count();
        let simple_dfa = if mode == ExecMode::Compiled && pred_count == 0 {
            plan.nfa(plan.mfa().top()).dfa()
        } else {
            None
        };
        Machine {
            plan,
            mfa: plan.mfa(),
            mode,
            simple_dfa,
            simple_active: false,
            simple_stack: Vec::new(),
            scratch: vec![0; plan.max_states()],
            scratch_epoch: 0,
            builder_pool: Vec::new(),
            frame_pool: Vec::new(),
            set_pool: Vec::new(),
            seed_buf: Vec::new(),
            runs: Vec::new(),
            insts: Vec::new(),
            truths: Vec::new(),
            arena: FormulaArena::new(),
            cans: Cans::new(),
            immediate: Vec::new(),
            frames: Vec::new(),
            open_texteq: Vec::new(),
            spawn_mark: vec![0; pred_count],
            spawn_val: vec![InstRef::Resolved(false); pred_count],
            spawn_epoch: 0,
            spawn_cache: HashMap::new(),
            text_resolver,
            last_candidate: None,
            observe: true,
            stats: EvalStats {
                tree_passes: 1,
                ..Default::default()
            },
        }
    }

    /// Whether any `text()='c'` instance is still accumulating (stream
    /// drivers must keep feeding text while this holds).
    pub fn has_open_texteq(&self) -> bool {
        !self.open_texteq.is_empty()
    }

    /// Candidate discovered by the most recent `enter`, if any.
    pub fn take_last_candidate(&mut self) -> Option<(u32, bool)> {
        self.last_candidate.take()
    }

    /// Mutable access to the statistics (drivers add prune counters).
    pub fn stats_mut(&mut self) -> &mut EvalStats {
        &mut self.stats
    }

    /// Whether `nfa` executes as a dense-table DFA in this machine.
    #[inline]
    fn dfa_kind(&self, nfa: NfaId) -> bool {
        self.mode == ExecMode::Compiled && self.plan.nfa(nfa).dfa().is_some()
    }

    /// Starts a fresh per-node spawn-cache window.
    fn reset_spawn_cache(&mut self) {
        self.spawn_epoch = self.spawn_epoch.wrapping_add(1);
        if self.mode == ExecMode::Interpreted {
            self.spawn_cache.clear();
        }
    }

    fn spawn_lookup(&self, pred: PredId) -> Option<InstRef> {
        match self.mode {
            ExecMode::Interpreted => self.spawn_cache.get(&pred).copied(),
            _ => {
                if self.spawn_mark[pred.index()] == self.spawn_epoch && self.spawn_epoch != 0 {
                    Some(self.spawn_val[pred.index()])
                } else {
                    None
                }
            }
        }
    }

    fn spawn_store(&mut self, pred: PredId, r: InstRef) {
        match self.mode {
            ExecMode::Interpreted => {
                self.spawn_cache.insert(pred, r);
            }
            _ => {
                self.spawn_mark[pred.index()] = self.spawn_epoch;
                self.spawn_val[pred.index()] = r;
            }
        }
    }

    fn take_frame(&mut self, node: u32) -> Frame {
        match self.frame_pool.pop() {
            Some(mut f) => {
                f.node = node;
                f
            }
            None => Frame {
                node,
                stepped: Vec::new(),
                spawned_runs: Vec::new(),
                opened: Vec::new(),
                live: Vec::new(),
            },
        }
    }

    fn recycle_frame(&mut self, mut frame: Frame) {
        frame.stepped.clear();
        frame.spawned_runs.clear();
        frame.opened.clear();
        frame.live.clear();
        self.frame_pool.push(frame);
    }

    fn take_set(&mut self) -> ActiveSet {
        self.set_pool.pop().unwrap_or_default()
    }

    /// Starts the traversal: pushes the virtual document frame and seeds
    /// the selection run.
    pub fn begin(&mut self, observer: &mut dyn EvalObserver) {
        assert!(
            self.frames.is_empty() && self.simple_stack.is_empty(),
            "begin called twice"
        );
        self.observe = !observer.is_noop();
        // Predicate-free DFA plans take the lean path unless an observer
        // wants the full event stream.
        if !self.observe {
            if let Some(dfa) = self.simple_dfa {
                self.simple_active = true;
                // Accepts at the virtual node are dropped, as below.
                self.simple_stack.push(dfa.start());
                return;
            }
        }
        let frame = self.take_frame(VIRTUAL_NODE);
        self.frames.push(frame);
        let top = self.mfa.top();
        self.reset_spawn_cache();
        if self.dfa_kind(top) {
            // An accept at the virtual node would select the document
            // node, which is not an element answer — dropped, matching
            // the reference evaluator.
            let start = self.plan.nfa(top).dfa().expect("dfa kind").start();
            self.runs.push(Run {
                nfa: top,
                inst: None,
                dead: false,
                stack: RunStack::Dfa(vec![start]),
            });
            let frame = self.frames.last_mut().expect("virtual frame");
            frame.live = vec![0];
            return;
        }
        self.runs.push(Run {
            nfa: top,
            inst: None,
            dead: false,
            stack: RunStack::Sets(Vec::new()),
        });
        let mut new_runs = Vec::new();
        let start = self.mfa.nfa(top).start();
        let set = self.closure(
            top,
            &[(start, Tag::True)],
            VIRTUAL_NODE,
            &mut new_runs,
            observer,
        );
        // Top-run accepts at the virtual node are dropped (see above).
        match &mut self.runs[0].stack {
            RunStack::Sets(stack) => stack.push(set),
            RunStack::Dfa(_) => unreachable!("top run built as Sets"),
        }
        let mut live = vec![0];
        live.extend(new_runs.iter().copied().filter(|&r| !self.runs[r].dead));
        let frame = self.frames.last_mut().expect("virtual frame");
        frame.spawned_runs = new_runs;
        frame.live = live;
    }

    /// Pre-enter check: can any live run make progress in a subtree whose
    /// root has `label` and whose descendants offer `available` labels?
    /// Pass `None` for `available` when no index is present (pure
    /// automaton check).
    pub fn preview(&self, label: Label, available: Option<&LabelSet>) -> Preview {
        if self.simple_active {
            let dfa = self.simple_dfa.expect("simple mode has a dfa");
            let cur = *self.simple_stack.last().expect("preview outside traversal");
            if cur == DEAD {
                return Preview::NoMatch;
            }
            let col = self.plan.col(label);
            if dfa.step(cur, col) == DEAD {
                return Preview::NoMatch;
            }
            return match available {
                None => Preview::Progress,
                Some(avail) => {
                    let compiled = self.plan.nfa(self.mfa.top());
                    let req = compiled.required();
                    let satisfiable = dfa.members(cur).iter().any(|&s| {
                        compiled
                            .row(s, col)
                            .iter()
                            .any(|&t| req[t.index()].satisfiable_within(avail))
                    });
                    if satisfiable {
                        Preview::Progress
                    } else {
                        Preview::Pruned
                    }
                }
            };
        }
        let frame = self.frames.last().expect("preview outside traversal");
        let plan = self.plan;
        let col = plan.col(label);
        let mut any_match = false;
        for &r in &frame.live {
            let run = &self.runs[r];
            if run.dead {
                continue;
            }
            let compiled = plan.nfa(run.nfa);
            let req = compiled.required();
            match &run.stack {
                RunStack::Dfa(stack) => {
                    let cur = *stack.last().expect("live dfa run has a state");
                    let dfa = compiled.dfa().expect("dfa-kind run");
                    let next = dfa.step(cur, col);
                    if next == DEAD {
                        continue;
                    }
                    any_match = true;
                    match available {
                        None => return Preview::Progress,
                        Some(avail) => {
                            // Parity with the interpreter: check the
                            // *pre-closure* transition targets of the
                            // subset members.
                            for &s in dfa.members(cur) {
                                for &t in compiled.row(s, col) {
                                    if req[t.index()].satisfiable_within(avail) {
                                        return Preview::Progress;
                                    }
                                }
                            }
                        }
                    }
                }
                RunStack::Sets(stack) => {
                    let Some(top) = stack.last() else {
                        continue;
                    };
                    match self.mode {
                        ExecMode::Interpreted => {
                            let nfa = self.mfa.nfa(run.nfa);
                            for &(s, _) in top {
                                for t in nfa.transitions(s) {
                                    if !t.test.matches(label) {
                                        continue;
                                    }
                                    any_match = true;
                                    match available {
                                        None => return Preview::Progress,
                                        Some(avail) => {
                                            if req[t.target.index()].satisfiable_within(avail) {
                                                return Preview::Progress;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        _ => {
                            for &(s, _) in top {
                                for &t in compiled.row(s, col) {
                                    any_match = true;
                                    match available {
                                        None => return Preview::Progress,
                                        Some(avail) => {
                                            if req[t.index()].satisfiable_within(avail) {
                                                return Preview::Progress;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if any_match {
            Preview::Pruned
        } else {
            Preview::NoMatch
        }
    }

    /// Enters an element node. Returns whether any run is still live (if
    /// not, the subtree can be skipped by the driver — nothing below can
    /// match, and no predicate instance is waiting for its text unless
    /// [`Machine::has_open_texteq`] holds).
    pub fn enter(&mut self, label: Label, node: u32, observer: &mut dyn EvalObserver) -> bool {
        if self.simple_active {
            return self.enter_simple(label, node);
        }
        let depth = self.frames.len();
        self.stats.nodes_visited += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        self.last_candidate = None;
        self.reset_spawn_cache();
        if self.observe {
            observer.enter_node(node, label, depth);
        }
        let plan = self.plan;
        let col = plan.col(label);
        // Move the parent's live list out to iterate it without cloning;
        // restored before returning.
        let parent_live =
            std::mem::take(&mut self.frames.last_mut().expect("enter before begin").live);
        let frame = self.take_frame(node);
        self.frames.push(frame);
        let mut new_runs = Vec::new();
        for &r in &parent_live {
            if self.runs[r].dead {
                continue;
            }
            let nfa_id = self.runs[r].nfa;
            match &self.runs[r].stack {
                RunStack::Dfa(stack) => {
                    // Dense fast path: one table read steps the whole
                    // (ε-closed) state set.
                    let cur = *stack.last().expect("live dfa run has a state");
                    let dfa = plan.nfa(nfa_id).dfa().expect("dfa-kind run");
                    let next = dfa.step(cur, col);
                    if next == DEAD {
                        continue; // dormant below this node
                    }
                    if dfa.accept(next) {
                        self.accept_true(r, node, observer);
                    }
                    match &mut self.runs[r].stack {
                        RunStack::Dfa(stack) => stack.push(next),
                        RunStack::Sets(_) => unreachable!("run kind is fixed"),
                    }
                }
                RunStack::Sets(stack) => {
                    // Step on the label through the precomputed rows
                    // (compiled) or a transition scan (interpreted).
                    let top = stack.last().expect("live run has a set");
                    let mut seed = std::mem::take(&mut self.seed_buf);
                    seed.clear();
                    match self.mode {
                        ExecMode::Interpreted => {
                            let nfa = self.mfa.nfa(nfa_id);
                            for &(s, tag) in top {
                                for t in nfa.transitions(s) {
                                    if t.test.matches(label) {
                                        seed.push((t.target, tag));
                                    }
                                }
                            }
                        }
                        _ => {
                            let compiled = plan.nfa(nfa_id);
                            for &(s, tag) in top {
                                for &t in compiled.row(s, col) {
                                    seed.push((t, tag));
                                }
                            }
                        }
                    }
                    if seed.is_empty() {
                        self.seed_buf = seed;
                        continue; // dormant below this node
                    }
                    let set = self.closure(nfa_id, &seed, node, &mut new_runs, observer);
                    self.seed_buf = seed;
                    self.process_accept(r, &set, node, observer);
                    match &mut self.runs[r].stack {
                        RunStack::Sets(stack) => stack.push(set),
                        RunStack::Dfa(_) => unreachable!("run kind is fixed"),
                    }
                }
            }
            let frame = self.frames.last_mut().expect("frame just pushed");
            frame.stepped.push(r);
            if !self.runs[r].dead {
                frame.live.push(r);
            }
        }
        // Restore the parent's live list.
        let depth_frames = self.frames.len();
        self.frames[depth_frames - 2].live = parent_live;
        let live_new: Vec<RunId> = new_runs
            .iter()
            .copied()
            .filter(|&r| !self.runs[r].dead)
            .collect();
        let frame = self.frames.last_mut().expect("frame just pushed");
        frame.spawned_runs = new_runs;
        frame.live.extend(live_new);
        !frame.live.is_empty()
    }

    /// The lean `enter`: one table read, no frames, no run lists. Only
    /// reachable for predicate-free DFA plans with a no-op observer, where
    /// every per-node structure the general path maintains is provably
    /// empty.
    #[inline]
    fn enter_simple(&mut self, label: Label, node: u32) -> bool {
        let depth = self.simple_stack.len();
        self.stats.nodes_visited += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        self.last_candidate = None;
        let dfa = self.simple_dfa.expect("simple mode has a dfa");
        let cur = *self.simple_stack.last().expect("enter after begin");
        let next = if cur == DEAD {
            DEAD
        } else {
            dfa.step(cur, self.plan.col(label))
        };
        self.simple_stack.push(next);
        if next == DEAD {
            return false; // dormant below this node
        }
        if dfa.accept(next) {
            self.immediate.push(node);
            self.stats.immediate_answers += 1;
            self.last_candidate = Some((node, true));
        }
        true
    }

    /// Records an unconditional accept for run `r` at `node` (DFA runs
    /// carry no tags: every accept is `Tag::True`).
    fn accept_true(&mut self, r: RunId, node: u32, observer: &mut dyn EvalObserver) {
        match self.runs[r].inst {
            None => {
                if node == VIRTUAL_NODE {
                    return;
                }
                self.immediate.push(node);
                self.stats.immediate_answers += 1;
                self.last_candidate = Some((node, true));
                if self.observe {
                    observer.candidate(node, true);
                }
            }
            Some(inst) => {
                if self.truths[inst].is_some() {
                    return; // already resolved (true)
                }
                self.resolve_instance(inst, true, observer);
                self.runs[r].dead = true;
            }
        }
    }

    /// Records an accept (if present in `set`) for run `r` at `node`.
    fn process_accept(
        &mut self,
        r: RunId,
        set: &ActiveSet,
        node: u32,
        observer: &mut dyn EvalObserver,
    ) {
        let accept = self.mfa.nfa(self.runs[r].nfa).accept();
        let Some(&(_, tag)) = set.iter().find(|(s, _)| *s == accept) else {
            return;
        };
        match self.runs[r].inst {
            None => {
                // Top run: candidate answer.
                if node == VIRTUAL_NODE {
                    return;
                }
                match tag {
                    Tag::True => {
                        self.immediate.push(node);
                        self.stats.immediate_answers += 1;
                        self.last_candidate = Some((node, true));
                        observer.candidate(node, true);
                    }
                    Tag::Formula(_) => {
                        self.cans.push(node, tag);
                        self.last_candidate = Some((node, false));
                        observer.candidate(node, false);
                    }
                }
            }
            Some(inst) => {
                if self.truths[inst].is_some() {
                    return; // already resolved (true)
                }
                match tag {
                    Tag::True => {
                        self.resolve_instance(inst, true, observer);
                        self.runs[r].dead = true;
                    }
                    Tag::Formula(_) => {
                        if let InstKind::HasPath { accepts } = &mut self.insts[inst].kind {
                            accepts.push(tag);
                        }
                    }
                }
            }
        }
    }

    /// Feeds character data (stream mode; DOM drivers may skip text nodes
    /// entirely since `text()='c'` resolves eagerly there).
    pub fn text(&mut self, content: &str) {
        if self.open_texteq.is_empty() {
            return;
        }
        let here = self.frames.len();
        // Iterate by index: resolution never happens here, only appends.
        for idx in 0..self.open_texteq.len() {
            let inst = self.open_texteq[idx];
            if let InstKind::TextEq { buf, target, depth } = &mut self.insts[inst].kind {
                if *depth != here {
                    continue; // not direct text of the origin element
                }
                let cap = target.len() + 1;
                if buf.len() < cap {
                    let room = cap - buf.len();
                    let take = content
                        .char_indices()
                        .map(|(i, c)| i + c.len_utf8())
                        .take_while(|&end| end <= room)
                        .last()
                        .unwrap_or(0);
                    buf.push_str(&content[..take]);
                    if take < content.len() && buf.len() < cap {
                        // Remaining content overflows the cap: mark by
                        // exceeding the target length with a placeholder.
                        buf.push('\u{0}');
                    }
                }
            }
        }
    }

    /// Leaves the current element node, resolving everything rooted there.
    pub fn leave(&mut self, observer: &mut dyn EvalObserver) {
        if self.simple_active {
            self.simple_stack.pop().expect("leave without enter");
            return;
        }
        let frame = self.frames.pop().expect("leave without enter");
        if self.observe {
            observer.leave_node(frame.node);
        }
        for &r in &frame.stepped {
            match &mut self.runs[r].stack {
                RunStack::Dfa(stack) => {
                    stack.pop();
                }
                RunStack::Sets(stack) => {
                    if let Some(set) = stack.pop() {
                        let mut set = set;
                        set.clear();
                        self.set_pool.push(set);
                    }
                }
            }
        }
        self.resolve_opened(&frame.opened, observer);
        for &r in &frame.spawned_runs {
            self.runs[r].stack.clear();
            self.runs[r].dead = true;
        }
        self.recycle_frame(frame);
    }

    /// Resolves all instances opened at the closing node. Dependencies are
    /// all within the now-closed subtree, so a fixpoint over the opened
    /// list terminates.
    fn resolve_opened(&mut self, opened: &[InstId], observer: &mut dyn EvalObserver) {
        let mut pending: Vec<InstId> = opened
            .iter()
            .copied()
            .filter(|&i| self.truths[i].is_none())
            .collect();
        while !pending.is_empty() {
            let mut progressed = false;
            let mut still: Vec<InstId> = Vec::new();
            for &i in &pending {
                if self.truths[i].is_some() {
                    progressed = true;
                    continue;
                }
                let value = match &self.insts[i].kind {
                    InstKind::TextEq { buf, target, .. } => Some(buf == target),
                    InstKind::HasPath { accepts } => {
                        let mut verdict = Some(false);
                        for &tag in accepts {
                            match self.arena.eval(tag, &self.truths) {
                                Some(true) => {
                                    verdict = Some(true);
                                    break;
                                }
                                Some(false) => {}
                                None => verdict = None,
                            }
                        }
                        verdict
                    }
                    InstKind::Not { sub } => self.truths[*sub].map(|b| !b),
                    InstKind::And { subs } => {
                        let mut verdict = Some(true);
                        for &s in subs {
                            match self.truths[s] {
                                Some(false) => {
                                    verdict = Some(false);
                                    break;
                                }
                                Some(true) => {}
                                None => verdict = None,
                            }
                        }
                        verdict
                    }
                    InstKind::Or { subs } => {
                        let mut verdict = Some(false);
                        for &s in subs {
                            match self.truths[s] {
                                Some(true) => {
                                    verdict = Some(true);
                                    break;
                                }
                                Some(false) => {}
                                None => verdict = None,
                            }
                        }
                        verdict
                    }
                };
                match value {
                    Some(v) => {
                        self.resolve_instance(i, v, observer);
                        progressed = true;
                    }
                    None => still.push(i),
                }
            }
            assert!(
                progressed || still.is_empty(),
                "instance dependency cycle (evaluator bug)"
            );
            pending = still;
        }
    }

    fn resolve_instance(&mut self, inst: InstId, value: bool, observer: &mut dyn EvalObserver) {
        if self.truths[inst].is_some() {
            return;
        }
        self.truths[inst] = Some(value);
        observer.instance_resolved(inst, value);
        if matches!(self.insts[inst].kind, InstKind::TextEq { .. }) {
            if let Some(pos) = self.open_texteq.iter().position(|&x| x == inst) {
                self.open_texteq.swap_remove(pos);
            }
        }
    }

    /// Finishes the traversal: closes the virtual frame, runs the Cans
    /// pass, and returns the answer node ids in document order.
    pub fn end(mut self, observer: &mut dyn EvalObserver) -> (Vec<u32>, EvalStats) {
        if self.simple_active {
            self.simple_stack.pop().expect("virtual level");
            assert!(self.simple_stack.is_empty(), "unbalanced enter/leave");
            let mut answers = self.immediate;
            answers.sort_unstable();
            answers.dedup();
            self.stats.answers = answers.len();
            return (answers, self.stats);
        }
        self.leave(observer); // virtual frame
        assert!(self.frames.is_empty(), "unbalanced enter/leave");
        self.stats.cans_size = self.cans.len();
        self.stats.formula_nodes = self.arena.len();
        let mut answers = self.immediate.clone();
        for c in self.cans.iter() {
            let kept = self
                .arena
                .eval(c.tag, &self.truths)
                .expect("all instances resolved after traversal");
            observer.candidate_resolved(c.node, kept);
            if kept {
                answers.push(c.node);
            }
        }
        answers.sort_unstable();
        answers.dedup();
        self.stats.answers = answers.len();
        (answers, self.stats)
    }

    // -- closure with guard pickup -----------------------------------------

    /// Guard-aware ε-closure of `seed` at `node`. Spawns predicate
    /// instances for guards it crosses; newly created `HasPath` runs are
    /// appended to `new_runs`.
    fn closure(
        &mut self,
        nfa_id: NfaId,
        seed: &[(StateId, Tag)],
        node: u32,
        new_runs: &mut Vec<RunId>,
        observer: &mut dyn EvalObserver,
    ) -> ActiveSet {
        // Fast path: all-True seeds whose closures cross no guard edge.
        // This covers every guard-free region of every query and avoids
        // the formula machinery entirely.
        let plan = self.plan;
        let compiled = plan.nfa(nfa_id);
        if seed
            .iter()
            .all(|&(s, t)| t == Tag::True && !compiled.closure(s).guarded)
        {
            self.scratch_epoch += 1;
            let epoch = self.scratch_epoch;
            let mut out: ActiveSet = self.take_set();
            for &(s, _) in seed {
                for &t in &compiled.closure(s).states {
                    if self.scratch[t.index()] != epoch {
                        self.scratch[t.index()] = epoch;
                        out.push((t, Tag::True));
                    }
                }
            }
            out.sort_unstable_by_key(|&(s, _)| s);
            return out;
        }
        match self.mode {
            ExecMode::Interpreted => self.closure_slow_map(nfa_id, seed, node, new_runs, observer),
            _ => self.closure_slow_dense(nfa_id, seed, node, new_runs, observer),
        }
    }

    /// Compiled slow path: dense epoch-marked builder, no hashing.
    fn closure_slow_dense(
        &mut self,
        nfa_id: NfaId,
        seed: &[(StateId, Tag)],
        node: u32,
        new_runs: &mut Vec<RunId>,
        observer: &mut dyn EvalObserver,
    ) -> ActiveSet {
        let mfa: &'a Mfa = self.mfa;
        let nfa = mfa.nfa(nfa_id);
        let mut b = self.builder_pool.pop().unwrap_or_default();
        b.begin(self.plan.max_states());
        for &(s, tag) in seed {
            if b.merge(s, tag) {
                b.work.push(s);
            }
        }
        while let Some(s) = b.work.pop() {
            let cur = if b.known_true[s.index()] {
                Tag::True
            } else {
                match self.arena.or_sorted(&b.parts[s.index()]) {
                    Some(t) => t,
                    None => continue, // no valid way to be here
                }
            };
            for e in nfa.eps_edges(s) {
                let tag = match e.guard {
                    None => cur,
                    Some(g) => match self.spawn(g, node, new_runs, observer) {
                        InstRef::Resolved(true) => cur,
                        InstRef::Resolved(false) => continue,
                        InstRef::Pending(i) => self.arena.and_inst(cur, i),
                    },
                };
                if b.merge(e.target, tag) {
                    b.work.push(e.target);
                }
            }
        }
        let mut out: ActiveSet = self.take_set();
        for &s in &b.touched {
            let tag = if b.known_true[s.index()] {
                Tag::True
            } else {
                match self.arena.or_sorted(&b.parts[s.index()]) {
                    Some(t) => t,
                    None => continue,
                }
            };
            out.push((s, tag));
        }
        out.sort_unstable_by_key(|&(s, _)| s);
        self.builder_pool.push(b);
        out
    }

    /// Interpreted slow path: the original map-based builder.
    fn closure_slow_map(
        &mut self,
        nfa_id: NfaId,
        seed: &[(StateId, Tag)],
        node: u32,
        new_runs: &mut Vec<RunId>,
        observer: &mut dyn EvalObserver,
    ) -> ActiveSet {
        let mfa: &'a Mfa = self.mfa;
        let nfa = mfa.nfa(nfa_id);
        #[derive(Default, Clone)]
        struct Build {
            known_true: bool,
            parts: BTreeSet<FId>,
        }
        let mut builds: HashMap<StateId, Build> = HashMap::new();
        let mut work: Vec<StateId> = Vec::new();
        let merge = |builds: &mut HashMap<StateId, Build>,
                     work: &mut Vec<StateId>,
                     s: StateId,
                     tag: Tag| {
            let b = builds.entry(s).or_default();
            let changed = match tag {
                Tag::True => {
                    let c = !b.known_true;
                    b.known_true = true;
                    c
                }
                Tag::Formula(f) => {
                    if b.known_true {
                        false
                    } else {
                        b.parts.insert(f)
                    }
                }
            };
            if changed {
                work.push(s);
            }
        };
        for &(s, tag) in seed {
            merge(&mut builds, &mut work, s, tag);
        }
        while let Some(s) = work.pop() {
            let cur = {
                let b = &builds[&s];
                if b.known_true {
                    Tag::True
                } else {
                    match self.arena.or_tags(&b.parts, false) {
                        Some(t) => t,
                        None => continue, // no valid way to be here
                    }
                }
            };
            for e in nfa.eps_edges(s) {
                let tag = match e.guard {
                    None => cur,
                    Some(g) => match self.spawn(g, node, new_runs, observer) {
                        InstRef::Resolved(true) => cur,
                        InstRef::Resolved(false) => continue,
                        InstRef::Pending(i) => self.arena.and_inst(cur, i),
                    },
                };
                merge(&mut builds, &mut work, e.target, tag);
            }
        }
        let mut out: ActiveSet = Vec::with_capacity(builds.len());
        for (s, b) in builds {
            let tag = if b.known_true {
                Tag::True
            } else {
                match self.arena.or_tags(&b.parts, false) {
                    Some(t) => t,
                    None => continue,
                }
            };
            out.push((s, tag));
        }
        out.sort_unstable_by_key(|(s, _)| *s);
        out
    }

    /// Instantiates predicate `pred` at `node` (cached per node).
    fn spawn(
        &mut self,
        pred: PredId,
        node: u32,
        new_runs: &mut Vec<RunId>,
        observer: &mut dyn EvalObserver,
    ) -> InstRef {
        if let Some(r) = self.spawn_lookup(pred) {
            return r;
        }
        let result = match self.mfa.pred(pred) {
            Pred::True => InstRef::Resolved(true),
            Pred::TextEq(target) => {
                if let Some(resolver) = self.text_resolver {
                    InstRef::Resolved(resolver(node).as_ref() == target.as_str())
                } else {
                    let depth = self.frames.len();
                    let i = self.new_instance(
                        InstKind::TextEq {
                            buf: String::new(),
                            target: target.clone(),
                            depth,
                        },
                        node,
                        observer,
                    );
                    self.open_texteq.push(i);
                    InstRef::Pending(i)
                }
            }
            Pred::HasPath(sub_nfa) => {
                let sub_nfa = *sub_nfa;
                let i = self.new_instance(
                    InstKind::HasPath {
                        accepts: Vec::new(),
                    },
                    node,
                    observer,
                );
                let run_id = self.runs.len();
                self.stats.runs_spawned += 1;
                // Cache before the recursive closure so diamond-shaped
                // sharing reuses the same instance.
                self.spawn_store(pred, InstRef::Pending(i));
                if self.dfa_kind(sub_nfa) {
                    let plan = self.plan;
                    let dfa = plan.nfa(sub_nfa).dfa().expect("dfa kind");
                    let start = dfa.start();
                    let accepting = dfa.accept(start);
                    self.runs.push(Run {
                        nfa: sub_nfa,
                        inst: Some(i),
                        dead: false,
                        stack: RunStack::Dfa(vec![start]),
                    });
                    if accepting {
                        // Accept at the spawn node resolves on the spot.
                        self.accept_true(run_id, node, observer);
                    }
                } else {
                    self.runs.push(Run {
                        nfa: sub_nfa,
                        inst: Some(i),
                        dead: false,
                        stack: RunStack::Sets(Vec::new()),
                    });
                    let start = self.mfa.nfa(sub_nfa).start();
                    let set =
                        self.closure(sub_nfa, &[(start, Tag::True)], node, new_runs, observer);
                    self.process_accept(run_id, &set, node, observer);
                    match &mut self.runs[run_id].stack {
                        RunStack::Sets(stack) => stack.push(set),
                        RunStack::Dfa(_) => unreachable!("run kind is fixed"),
                    }
                }
                new_runs.push(run_id);
                if let Some(v) = self.truths[i] {
                    // Accept with a constant-true tag resolved it on the
                    // spot.
                    let r = InstRef::Resolved(v);
                    self.spawn_store(pred, r);
                    return r;
                }
                return InstRef::Pending(i);
            }
            Pred::Not(sub) => {
                let sub = *sub;
                match self.spawn(sub, node, new_runs, observer) {
                    InstRef::Resolved(b) => InstRef::Resolved(!b),
                    InstRef::Pending(si) => InstRef::Pending(self.new_instance(
                        InstKind::Not { sub: si },
                        node,
                        observer,
                    )),
                }
            }
            Pred::And(subs) => {
                let subs = subs.clone();
                let mut pending = Vec::new();
                let mut value = Some(true);
                for s in subs {
                    match self.spawn(s, node, new_runs, observer) {
                        InstRef::Resolved(false) => {
                            value = Some(false);
                            break;
                        }
                        InstRef::Resolved(true) => {}
                        InstRef::Pending(i) => pending.push(i),
                    }
                }
                match (value, pending.is_empty()) {
                    (Some(false), _) => InstRef::Resolved(false),
                    (_, true) => InstRef::Resolved(true),
                    _ => InstRef::Pending(self.new_instance(
                        InstKind::And { subs: pending },
                        node,
                        observer,
                    )),
                }
            }
            Pred::Or(subs) => {
                let subs = subs.clone();
                let mut pending = Vec::new();
                let mut value = Some(false);
                for s in subs {
                    match self.spawn(s, node, new_runs, observer) {
                        InstRef::Resolved(true) => {
                            value = Some(true);
                            break;
                        }
                        InstRef::Resolved(false) => {}
                        InstRef::Pending(i) => pending.push(i),
                    }
                }
                match (value, pending.is_empty()) {
                    (Some(true), _) => InstRef::Resolved(true),
                    (_, true) => InstRef::Resolved(false),
                    _ => InstRef::Pending(self.new_instance(
                        InstKind::Or { subs: pending },
                        node,
                        observer,
                    )),
                }
            }
        };
        self.spawn_store(pred, result);
        result
    }

    fn new_instance(
        &mut self,
        kind: InstKind,
        node: u32,
        observer: &mut dyn EvalObserver,
    ) -> InstId {
        let id = self.insts.len();
        self.insts.push(Instance { kind });
        self.truths.push(None);
        self.stats.pred_instances += 1;
        observer.instance_spawned(id, node);
        self.frames
            .last_mut()
            .expect("spawn inside a frame")
            .opened
            .push(id);
        id
    }
}
